#![warn(missing_docs)]
//! # vne — Plan-Based Scalable Online Virtual Network Embedding
//!
//! Umbrella crate for the OLIVE reproduction (ICDCS 2025,
//! arXiv:2507.00237): re-exports the workspace crates and provides a
//! one-stop [`prelude`].
//!
//! * [`model`] — substrates, virtual networks, requests, embeddings;
//! * [`lp`] — the LP/MILP solver substrate (bounded-variable revised
//!   simplex + branch-and-bound, replacing CPLEX);
//! * [`topology`] — the four evaluation topologies with Table II tiering;
//! * [`workload`] — MMPP/Zipf/CAIDA-like traces and bootstrap statistics;
//! * [`olive`] — time-aggregation, PLAN-VNE, OLIVE and the baselines;
//! * [`sim`] — the streaming event-driven simulator: engine, observers,
//!   algorithm registry, metrics and multi-seed runner;
//! * [`serve`] — the embedding-as-a-service daemon: engine actor, line
//!   protocol, TCP server, durable serving state;
//! * [`shard`] — partitioned substrates: per-shard planning and
//!   admission behind a cross-shard coordinator;
//! * [`audit`] — the workspace determinism/robustness lint pass behind
//!   the `vne-audit` CI gate.
//!
//! ## Quickstart
//!
//! ```
//! use vne::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small real topology and the paper's application mix.
//! let substrate = vne::topology::zoo::citta_studi()?;
//! let mut rng = SeededRng::new(7);
//! let apps = paper_mix(&AppGenConfig::default(), &mut rng);
//!
//! // History → plan → online embedding at 100% edge utilization.
//! let mut config = ScenarioConfig::small(1.0);
//! config.history_slots = 150;
//! config.test_slots = 60;
//! config.measure_window = (10, 50);
//! let scenario = Scenario::new(substrate, apps, config);
//! let outcome = scenario.run(Algorithm::Olive);
//! assert!(outcome.summary.rejection_rate <= 1.0);
//! # Ok(())
//! # }
//! ```

pub use vne_audit as audit;
pub use vne_lp as lp;
pub use vne_model as model;
pub use vne_olive as olive;
pub use vne_serve as serve;
pub use vne_shard as shard;
pub use vne_sim as sim;
pub use vne_topology as topology;
pub use vne_workload as workload;

/// Commonly used types, re-exported for one-line imports.
pub mod prelude {
    pub use vne_model::prelude::*;
    pub use vne_olive::aggregate::{AggregateDemand, AggregationConfig};
    pub use vne_olive::algorithm::{OnlineAlgorithm, SlotOutcome};
    pub use vne_olive::colgen::{solve_plan, PlanVneConfig};
    pub use vne_olive::olive::{Olive, OliveConfig};
    pub use vne_olive::plan::Plan;
    pub use vne_shard::{ShardCoordinator, SpanningStats};
    pub use vne_sim::engine::{PipelineConfig, PipelineSafe, SimControl, SimObserver, StreamStats};
    pub use vne_sim::observe::{NullObserver, Recorder, WindowSummary};
    pub use vne_sim::registry::{AlgorithmRegistry, AlgorithmSpec, BuildContext, BuiltAlgorithm};
    pub use vne_sim::runner::{
        default_apps, run_seeds, run_seeds_in, run_seeds_with, SweepContext, Utilization,
    };
    pub use vne_sim::scenario::{Algorithm, Outcome, Scenario, ScenarioBuilder, ScenarioConfig};
    pub use vne_topology::partition::{GreedyEdgeCut, Partitioner, RegionGrow};
    pub use vne_workload::appgen::{paper_mix, AppGenConfig};
    pub use vne_workload::rng::SeededRng;
    pub use vne_workload::tracegen::TraceConfig;
}
