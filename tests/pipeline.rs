//! End-to-end integration tests: the full history → plan → online
//! pipeline across crates, on every paper topology.

use vne::prelude::*;

fn tiny_config(utilization: f64, seed: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::small(utilization).with_seed(seed);
    c.history_slots = 200;
    c.test_slots = 80;
    c.measure_window = (10, 70);
    c.aggregation.bootstrap_replicates = 20;
    c
}

#[test]
fn pipeline_runs_on_every_paper_topology() {
    for substrate in vne::topology::paper_topologies().unwrap() {
        let apps = default_apps(3);
        let scenario = Scenario::new(substrate.clone(), apps, tiny_config(1.0, 3));
        let outcome = scenario.run(Algorithm::Olive);
        assert!(
            outcome.summary.arrivals > 0,
            "{}: no arrivals",
            substrate.name()
        );
        assert!(
            (0.0..=1.0).contains(&outcome.summary.rejection_rate),
            "{}: bad rate",
            substrate.name()
        );
        let plan = outcome.plan.expect("OLIVE builds a plan");
        assert!(!plan.is_empty(), "{}: empty plan", substrate.name());
    }
}

#[test]
fn all_four_algorithms_agree_on_arrival_counts() {
    let substrate = vne::topology::zoo::citta_studi().unwrap();
    let apps = default_apps(5);
    let scenario = Scenario::new(substrate, apps, tiny_config(1.0, 5));
    let counts: Vec<usize> = [
        Algorithm::Olive,
        Algorithm::Quickg,
        Algorithm::Fullg,
        Algorithm::SlotOff,
    ]
    .into_iter()
    .map(|alg| scenario.run(alg).summary.arrivals)
    .collect();
    assert!(counts.iter().all(|&c| c == counts[0]), "counts {counts:?}");
}

#[test]
fn olive_no_worse_than_quickg_on_reference_scenarios() {
    // The paper's summary claim: "the rejection rate of OLIVE is never
    // worse than that of QUICKG, and usually is significantly lower."
    // (within noise at tiny scale; allow a small tolerance).
    let substrate = vne::topology::zoo::iris().unwrap();
    for seed in [1u64, 2] {
        let apps = default_apps(seed);
        let scenario = Scenario::new(substrate.clone(), apps, tiny_config(1.2, seed));
        let olive = scenario.run(Algorithm::Olive).summary.rejection_rate;
        let quickg = scenario.run(Algorithm::Quickg).summary.rejection_rate;
        assert!(
            olive <= quickg + 0.03,
            "seed {seed}: OLIVE {olive} vs QUICKG {quickg}"
        );
    }
}

#[test]
fn accepted_plus_denied_equals_arrivals() {
    let substrate = vne::topology::zoo::citta_studi().unwrap();
    let apps = default_apps(7);
    let config = tiny_config(1.4, 7);
    let (from, to) = config.measure_window;
    let scenario = Scenario::new(substrate, apps, config);
    for alg in [Algorithm::Olive, Algorithm::Quickg, Algorithm::SlotOff] {
        let out = scenario.run(alg);
        let denied = out.summary.rejected + out.summary.preempted;
        let accepted_in_window = out
            .result
            .requests
            .iter()
            .filter(|r| r.arrival >= from && r.arrival < to && !r.status.is_denied())
            .count();
        assert_eq!(
            accepted_in_window + denied,
            out.summary.arrivals,
            "{}: accepted {accepted_in_window} + denied {denied} != arrivals {}",
            out.result.algorithm,
            out.summary.arrivals
        );
        // Every request has exactly one outcome entry.
        let mut ids: Vec<_> = out.result.requests.iter().map(|r| r.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), out.result.requests.len());
    }
}

#[test]
fn loads_never_exceed_capacity_throughout_a_run() {
    // Drive OLIVE manually and check ledger invariants every slot.
    let substrate = vne::topology::zoo::citta_studi().unwrap();
    let apps = default_apps(9);
    let scenario = Scenario::new(substrate.clone(), apps.clone(), tiny_config(1.4, 9));
    let (plan, _) = scenario.build_plan();
    let mut olive = Olive::new(
        substrate.clone(),
        apps,
        PlacementPolicy::default(),
        plan,
        OliveConfig::default(),
    );
    let trace = scenario.online_trace();
    let result = vne::sim::engine::run(&mut olive, &substrate, &trace, 80, |_, alg| {
        assert!(alg.loads().check_invariants());
    });
    assert!(!result.requests.is_empty());
}

#[test]
fn deterministic_across_identical_scenarios() {
    let substrate = vne::topology::zoo::citta_studi().unwrap();
    let run = || {
        let apps = default_apps(11);
        let scenario = Scenario::new(substrate.clone(), apps, tiny_config(1.0, 11));
        scenario.run(Algorithm::Olive).summary
    };
    let a = run();
    let b = run();
    assert_eq!(a.rejection_rate, b.rejection_rate);
    assert_eq!(a.total_cost, b.total_cost);
    assert_eq!(a.balance_index, b.balance_index);
}

#[test]
fn plan_guarantees_respected_under_conforming_demand() {
    // At genuinely low utilization the plan covers everything: OLIVE
    // serves almost every request. (Note: Zipf(α=1) popularity over 22
    // edge nodes sends ~27% of all traffic to one node, whose single
    // uplink runs at ~3× the average — only ≤15% average utilization
    // leaves the hottest node unsaturated through MMPP bursts.)
    let substrate = vne::topology::zoo::citta_studi().unwrap();
    let apps = default_apps(13);
    let scenario = Scenario::new(substrate, apps, tiny_config(0.15, 13));
    let outcome = scenario.run(Algorithm::Olive);
    assert!(
        outcome.summary.rejection_rate < 0.02,
        "rate {}",
        outcome.summary.rejection_rate
    );
}
