//! Reproducibility regression: the whole history → plan → online
//! pipeline must be bit-deterministic for a fixed seed, so that future
//! parallelism or solver changes cannot silently break replayability.

use vne::prelude::*;
use vne_sim::Summary;

fn tiny_config(seed: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::small(1.0).with_seed(seed);
    c.history_slots = 150;
    c.test_slots = 60;
    c.measure_window = (10, 50);
    c.aggregation.bootstrap_replicates = 20;
    c
}

/// Deterministic fields of two summaries must match exactly (only
/// `online_secs` is wall-clock and exempt).
fn assert_identical(a: &Summary, b: &Summary) {
    assert_eq!(a.arrivals, b.arrivals, "arrivals differ");
    assert_eq!(a.rejected, b.rejected, "rejected differ");
    assert_eq!(a.preempted, b.preempted, "preempted differ");
    assert_eq!(
        a.rejection_rate.to_bits(),
        b.rejection_rate.to_bits(),
        "rejection_rate differs: {} vs {}",
        a.rejection_rate,
        b.rejection_rate
    );
    assert_eq!(
        a.resource_cost.to_bits(),
        b.resource_cost.to_bits(),
        "resource_cost differs: {} vs {}",
        a.resource_cost,
        b.resource_cost
    );
    assert_eq!(
        a.rejection_cost.to_bits(),
        b.rejection_cost.to_bits(),
        "rejection_cost differs: {} vs {}",
        a.rejection_cost,
        b.rejection_cost
    );
    assert_eq!(
        a.total_cost.to_bits(),
        b.total_cost.to_bits(),
        "total_cost differs: {} vs {}",
        a.total_cost,
        b.total_cost
    );
    assert_eq!(
        a.balance_index.to_bits(),
        b.balance_index.to_bits(),
        "balance_index differs: {} vs {}",
        a.balance_index,
        b.balance_index
    );
}

#[test]
fn same_seed_reproduces_olive_run_exactly() {
    let seed = 42;
    let run = || {
        let substrate = vne::topology::zoo::citta_studi().unwrap();
        let mut rng = SeededRng::new(seed).derive(0xA995);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        let scenario = Scenario::new(substrate, apps, tiny_config(seed));
        scenario.run(Algorithm::Olive)
    };
    let first = run();
    let second = run();
    assert!(first.summary.arrivals > 0, "no arrivals in the window");
    assert_identical(&first.summary, &second.summary);
}

#[test]
fn different_seeds_change_the_trace() {
    let substrate = vne::topology::zoo::citta_studi().unwrap();
    let apps = default_apps(1);
    let a = Scenario::new(substrate.clone(), apps.clone(), tiny_config(1)).run(Algorithm::Quickg);
    let b = Scenario::new(substrate, apps, tiny_config(2)).run(Algorithm::Quickg);
    // Different seeds must not replay the identical workload.
    assert!(
        a.summary.arrivals != b.summary.arrivals
            || a.summary.resource_cost.to_bits() != b.summary.resource_cost.to_bits(),
        "seeds 1 and 2 produced identical runs"
    );
}
