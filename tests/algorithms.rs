//! Cross-algorithm smoke test: every `Algorithm` variant must complete
//! a small scenario end to end with sane headline metrics.
//!
//! The substrate is deliberately tiny (4 nodes) so the expensive exact
//! baselines (FULLG's per-request ILPs, SLOTOFF's per-slot re-plans)
//! stay fast in debug builds.

use vne::model::app::{shapes, AppSet, AppShape};
use vne::model::substrate::{SubstrateNetwork, Tier};
use vne::prelude::*;

fn tiny_world() -> (SubstrateNetwork, AppSet) {
    let mut s = SubstrateNetwork::new("tiny");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 900.0, 10.0).unwrap();
    let c = s.add_node("c", Tier::Core, 2700.0, 1.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(e1, t, 1500.0, 1.0).unwrap();
    s.add_link(t, c, 4500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps.push(
        "tree",
        AppShape::Tree,
        shapes::two_branch_tree(3, 6.0, 2.0).unwrap(),
    )
    .unwrap();
    (s, apps)
}

#[test]
fn every_algorithm_completes_a_tiny_scenario() {
    let algorithms = [
        Algorithm::Olive,
        Algorithm::Quickg,
        Algorithm::Fullg,
        Algorithm::SlotOff,
    ];
    for algorithm in algorithms {
        let (substrate, apps) = tiny_world();
        let mut config = ScenarioConfig::small(1.0).with_seed(11);
        config.history_slots = 60;
        config.test_slots = 20;
        config.measure_window = (2, 18);
        config.aggregation.bootstrap_replicates = 10;
        let outcome = Scenario::new(substrate, apps, config).run(algorithm);
        let s = &outcome.summary;
        assert!(s.arrivals > 0, "{}: no arrivals", algorithm.label());
        assert!(
            (0.0..=1.0).contains(&s.rejection_rate),
            "{}: rejection rate {} outside [0, 1]",
            algorithm.label(),
            s.rejection_rate
        );
        assert!(
            s.rejected + s.preempted <= s.arrivals,
            "{}: denied {} + preempted {} exceeds arrivals {}",
            algorithm.label(),
            s.rejected,
            s.preempted,
            s.arrivals
        );
        assert!(
            s.total_cost.is_finite() && s.total_cost >= 0.0,
            "{}: bad total cost {}",
            algorithm.label(),
            s.total_cost
        );
        assert!(
            (0.0..=1.0 + 1e-9).contains(&s.balance_index),
            "{}: balance index {} outside [0, 1]",
            algorithm.label(),
            s.balance_index
        );
    }
}
