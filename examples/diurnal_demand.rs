//! Time-varying plans (the paper's §VI future-work extension).
//!
//! A diurnal workload alternates its hot spot between two halves of the
//! edge (think residential vs business districts). A single static plan
//! must reserve for the *union* of both phases; the time-varying plan
//! solves PLAN-VNE per phase and swaps plans at period boundaries,
//! following the demand.
//!
//! Run with: `cargo run --release --example diurnal_demand`

use vne::prelude::*;
use vne_model::ids::RequestId;
use vne_model::request::Request;
use vne_olive::timeplan::{TimeVaryingPlan, TimedOlive};
use vne_workload::dist::{Exponential, Normal, Poisson};

use rand::Rng;

const PERIOD: u32 = 50;
const HISTORY_SLOTS: u32 = 800;
const TEST_SLOTS: u32 = 200;

/// Alternating-hotspot trace: even periods load the first half of the
/// edge nodes, odd periods the second half.
fn diurnal_trace(
    substrate: &vne::model::substrate::SubstrateNetwork,
    apps: &AppSet,
    slots: u32,
    rate_hot: f64,
    rng: &mut SeededRng,
) -> Vec<Request> {
    let edge = substrate.edge_nodes();
    let half = edge.len() / 2;
    let demand = Normal::new(10.0, 2.0);
    let duration = Exponential::new(8.0);
    let mut requests = Vec::new();
    let mut id = 0u64;
    for t in 0..slots {
        let phase = (t / PERIOD) % 2;
        let (hot, cold): (&[_], &[_]) = if phase == 0 {
            (&edge[..half], &edge[half..])
        } else {
            (&edge[half..], &edge[..half])
        };
        for (nodes, rate) in [(hot, rate_hot), (cold, rate_hot * 0.1)] {
            for &node in nodes {
                let k = Poisson::new(rate).sample(rng);
                for _ in 0..k {
                    requests.push(Request {
                        id: RequestId(id),
                        arrival: t,
                        duration: duration.sample(rng).round().max(1.0) as u32,
                        ingress: node,
                        app: vne::model::ids::AppId::from_index(rng.gen_range(0..apps.len())),
                        demand: demand.sample_truncated(rng, 0.5),
                    });
                    id += 1;
                }
            }
        }
    }
    requests
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let substrate = vne::topology::zoo::citta_studi()?;
    let mut rng = SeededRng::new(17);
    let apps = paper_mix(&AppGenConfig::default(), &mut rng);
    let policy = PlacementPolicy::default();
    let penalty = RejectionPenalty::conservative(&apps, &substrate);
    let plan_config = PlanVneConfig::new(penalty.max_psi());
    let aggregation = AggregationConfig {
        alpha: 80.0,
        bootstrap_replicates: 40,
    };

    let history = diurnal_trace(&substrate, &apps, HISTORY_SLOTS, 14.0, &mut rng);
    let online = diurnal_trace(&substrate, &apps, TEST_SLOTS, 14.0, &mut rng);
    println!(
        "diurnal workload: {} history / {} online requests, period {PERIOD} slots",
        history.len(),
        online.len()
    );

    // Static plan: one aggregate over the whole history.
    let mut agg_rng = SeededRng::new(18);
    let aggregate =
        AggregateDemand::from_history(&history, HISTORY_SLOTS, &aggregation, &mut agg_rng);
    let (static_plan, _) = solve_plan(&substrate, &apps, &policy, &aggregate, &plan_config);

    // Time-varying plan: one PLAN-VNE solution per phase.
    let schedule = TimeVaryingPlan::from_history(
        &substrate,
        &apps,
        &policy,
        &history,
        HISTORY_SLOTS,
        PERIOD,
        2,
        &plan_config,
        &aggregation,
        &mut agg_rng,
    );

    let mut static_olive = Olive::new(
        substrate.clone(),
        apps.clone(),
        policy.clone(),
        static_plan,
        OliveConfig::default(),
    );
    let mut timed_olive = TimedOlive::new(
        substrate.clone(),
        apps.clone(),
        policy.clone(),
        schedule,
        OliveConfig::default(),
    );

    let static_result = vne::sim::engine::run(
        &mut static_olive,
        &substrate,
        &online,
        TEST_SLOTS,
        |_, _| {},
    );
    let timed_result =
        vne::sim::engine::run(&mut timed_olive, &substrate, &online, TEST_SLOTS, |_, _| {});

    println!("\n{:<10} {:>10} {:>14}", "plan", "rejection", "total cost");
    for result in [&static_result, &timed_result] {
        let summary = vne::sim::metrics::summarize(result, &penalty, (20, TEST_SLOTS - 20));
        println!(
            "{:<10} {:>9.2}% {:>14.3e}",
            result.algorithm,
            summary.rejection_rate * 100.0,
            summary.total_cost
        );
    }
    Ok(())
}
