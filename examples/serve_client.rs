//! A minimal client for the `vne-serve` daemon: submit → decision →
//! depart over the line protocol.
//!
//! Start a daemon first (the wall-clock tick decides submissions
//! without any manual `ADVANCE`):
//!
//! ```text
//! cargo run --release --bin vne-serve -- --addr 127.0.0.1:7700 --tick-ms 25
//! ```
//!
//! then run the client against it:
//!
//! ```text
//! cargo run --release --example serve_client -- 127.0.0.1:7700
//! ```
//!
//! Pass `--shutdown` as the final argument to also drain the daemon
//! gracefully at the end (what the CI smoke test does).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use vne::serve::protocol::{parse_reply, Command, Reply};
use vne_model::ids::{AppId, NodeId};

fn send(reader: &mut BufReader<TcpStream>, command: &Command) -> Reply {
    let mut line = command.encode();
    println!(">> {line}");
    line.push('\n');
    reader
        .get_mut()
        .write_all(line.as_bytes())
        .expect("write command");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    let reply = parse_reply(&reply).expect("daemon reply parses");
    println!("<< {}", reply.encode());
    reply
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let shutdown = args.last().is_some_and(|a| a == "--shutdown");
    if shutdown {
        args.pop();
    }
    let addr = args
        .first()
        .map_or("127.0.0.1:7700".to_string(), Clone::clone);

    let stream = TcpStream::connect(&addr)?;
    stream.set_nodelay(true)?;
    let mut conn = BufReader::new(stream);
    println!("connected to vne-serve at {addr}");

    // Where are we? (slots served so far, acceptance counters, the
    // run fingerprint.)
    send(&mut conn, &Command::Stats);

    // Submit one request: ingress datacenter 0, application 0 of the
    // daemon's catalogue, demand 5.0, holding resources for 3 slots.
    // The call blocks until the daemon's current slot closes — under
    // `--tick-ms` that is at most one tick away.
    let submit = Command::Submit {
        ingress: NodeId(0),
        app: AppId(0),
        demand: 5.0,
        duration: 3,
    };
    let id = match send(&mut conn, &submit) {
        Reply::Submitted { id, slot, decision } => {
            println!("decision: {decision} (request {} in slot {slot})", id.0);
            Some(id)
        }
        Reply::Shed => {
            println!("the daemon is overloaded and shed the submission");
            None
        }
        other => return Err(format!("unexpected reply {other:?}").into()),
    };

    // Probe the request's lifetime: it holds resources (if accepted)
    // until its 3-slot duration elapses.
    if let Some(id) = id {
        match send(&mut conn, &Command::Depart { id }) {
            Reply::Departure { active, .. } => {
                println!(
                    "request {} is {}",
                    id.0,
                    if active { "active" } else { "departed" }
                );
            }
            other => return Err(format!("unexpected reply {other:?}").into()),
        }
    }

    // Counters after the decision.
    send(&mut conn, &Command::Stats);

    if shutdown {
        match send(&mut conn, &Command::Shutdown) {
            Reply::Bye => println!("daemon drained (final checkpoint written if configured)"),
            other => return Err(format!("unexpected reply {other:?}").into()),
        }
    }
    Ok(())
}
