//! Burst compensation: OLIVE's borrowing and preemption in action
//! (the dynamics behind the paper's Figs. 8 and 12).
//!
//! Runs OLIVE through a bursty MMPP online phase and prints, for the
//! busiest edge datacenter, the per-slot demand served inside the
//! guaranteed plan share vs the demand served by borrowing unused
//! capacity of other classes, alongside OLIVE's service-mode counters.
//!
//! Run with: `cargo run --release --example burst_compensation`

use vne::prelude::*;
use vne_model::ids::ClassId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let substrate = vne::topology::zoo::citta_studi()?;
    let mut rng = SeededRng::new(3);
    let apps = paper_mix(&AppGenConfig::default(), &mut rng);
    let app_ids: Vec<_> = apps.ids().collect();

    let mut config = ScenarioConfig::small(1.4).with_seed(3);
    config.history_slots = 600;
    config.test_slots = 120;
    config.measure_window = (20, 100);
    let scenario = Scenario::new(substrate.clone(), apps, config);

    // Find the busiest edge node from the online trace.
    let online = scenario.online_trace();
    let mut per_node = std::collections::HashMap::new();
    for r in &online {
        *per_node.entry(r.ingress).or_insert(0usize) += 1;
    }
    let (&hot, &count) = per_node.iter().max_by_key(|(_, &c)| c).expect("non-empty");
    println!(
        "busiest edge datacenter: {} ({}) with {count} arrivals",
        substrate.node(hot).name,
        hot
    );

    // Run OLIVE, sampling the per-class split at the hot node each slot.
    let mut rows = Vec::new();
    let outcome = scenario.run_with_inspector(Algorithm::Olive, |t, olive| {
        let mut planned = 0.0;
        let mut borrowed = 0.0;
        for &a in &app_ids {
            let (p, b) = olive.active_demand_by_class(ClassId::new(a, hot));
            planned += p;
            borrowed += b;
        }
        rows.push((t, planned, borrowed));
    });

    let plan = outcome.plan.as_ref().expect("plan exists");
    let guaranteed: f64 = app_ids
        .iter()
        .filter_map(|&a| plan.class(ClassId::new(a, hot)))
        .map(|cp| cp.guaranteed_demand())
        .sum();
    println!("guaranteed (planned) demand at this node: {guaranteed:.1}\n");

    println!(
        "{:>5} {:>12} {:>12}   burst?",
        "slot", "planned", "borrowed"
    );
    for (t, planned, borrowed) in rows.iter().skip(20).take(40) {
        let marker = if *borrowed > 0.2 * guaranteed.max(1.0) {
            " <== borrowing"
        } else {
            ""
        };
        println!("{t:>5} {planned:>12.1} {borrowed:>12.1}{marker}");
    }

    println!(
        "\nsummary: {:.2}% rejected; resource cost {:.3e}, rejection cost {:.3e}",
        outcome.summary.rejection_rate * 100.0,
        outcome.summary.resource_cost,
        outcome.summary.rejection_cost
    );
    Ok(())
}
