//! GPU placement scenario (the paper's Fig. 10 setting).
//!
//! Applications are chains with one GPU VNF that may only run on GPU
//! datacenters; GPU datacenters in turn accept no other VNFs. The
//! collocation heuristic (QUICKG) is structurally unable to serve these
//! applications, while OLIVE's plan routes each VNF to an admissible
//! datacenter.
//!
//! Run with: `cargo run --release --example gpu_placement`

use vne::prelude::*;
use vne_topology::gpu::gpu_variant;
use vne_workload::appgen::gpu_set;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Iris with GPU sites: half the core datacenters + 4 random edges.
    let base = vne::topology::zoo::iris()?;
    let substrate = gpu_variant(&base, 2024);
    let gpu_sites = substrate
        .nodes()
        .filter(|(_, n)| n.gpu)
        .map(|(id, n)| format!("{} ({})", n.name, id))
        .collect::<Vec<_>>();
    println!("GPU datacenters: {}", gpu_sites.join(", "));

    // Four GPU-chain applications.
    let mut rng = SeededRng::new(7);
    let apps = gpu_set(&AppGenConfig::default(), &mut rng);

    let mut config = ScenarioConfig::small(1.0).with_seed(7);
    config.history_slots = 600;
    config.test_slots = 200;
    config.measure_window = (30, 170);
    let scenario = Scenario::new(substrate, apps, config);

    println!("\n{:<8} {:>10} {:>14}", "alg", "rejection", "total cost");
    for alg in [Algorithm::Olive, Algorithm::SlotOff, Algorithm::Fullg] {
        let out = scenario.run(alg);
        println!(
            "{:<8} {:>9.2}% {:>14.3e}",
            out.result.algorithm,
            out.summary.rejection_rate * 100.0,
            out.summary.total_cost
        );
    }

    // QUICKG cannot collocate a GPU VNF with standard VNFs: every request
    // falls through to rejection.
    let quickg = scenario.run(Algorithm::Quickg);
    println!(
        "{:<8} {:>9.2}%   (collocation infeasible for GPU chains, as the paper notes)",
        quickg.result.algorithm,
        quickg.summary.rejection_rate * 100.0
    );
    assert!(quickg.summary.rejection_rate > 0.99);
    Ok(())
}
