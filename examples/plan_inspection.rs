//! Plan inspection: what PLAN-VNE actually computes.
//!
//! Builds the plan for a bursty edge workload and prints, per request
//! class, the expected demand, the guaranteed share, the rejected
//! fraction (the quantile water-filling at work) and the embedding
//! columns with their budgets — then cross-checks the column-generation
//! objective against the paper's direct arc LP (Fig. 4) on a reduced
//! instance.
//!
//! Run with: `cargo run --release --example plan_inspection`

use vne::prelude::*;
use vne_olive::planvne::solve_arc_lp;
use vne_workload::history::ClassDemandSeries;
use vne_workload::tracegen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let substrate = vne::topology::zoo::citta_studi()?;
    let mut rng = SeededRng::new(11);
    let apps = paper_mix(&AppGenConfig::default(), &mut rng);

    // History at 140% utilization → aggregated expected demand (P̂80).
    let mut tc = TraceConfig::default().at_utilization(1.4, &substrate, &apps);
    tc.slots = 600;
    let history = tracegen::generate(&substrate, &apps, &tc, &mut rng);
    let series = ClassDemandSeries::from_requests(&history, 600);
    println!(
        "history: {} requests, {} classes",
        history.len(),
        series.class_count()
    );
    let aggregate =
        AggregateDemand::from_history(&history, 600, &AggregationConfig::default(), &mut rng);

    // PLAN-VNE via column generation.
    let penalty = RejectionPenalty::conservative(&apps, &substrate);
    let config = PlanVneConfig::new(penalty.max_psi());
    let (plan, stats) = solve_plan(
        &substrate,
        &apps,
        &PlacementPolicy::default(),
        &aggregate,
        &config,
    );
    println!(
        "plan: objective {:.4e}, {} columns in {} pricing rounds ({} simplex iterations)",
        stats.objective, stats.columns, stats.rounds, stats.simplex_iterations
    );
    println!(
        "plan-level rejected fraction: {:.2}%\n",
        plan.planned_rejection_fraction() * 100.0
    );

    // The five most-loaded classes in detail.
    let mut classes: Vec<_> = plan.iter().collect();
    classes.sort_by(|a, b| b.expected_demand.total_cmp(&a.expected_demand));
    println!(
        "{:<10} {:>10} {:>11} {:>9}  columns (share → budget)",
        "class", "demand", "guaranteed", "rejected"
    );
    for cp in classes.iter().take(5) {
        let cols = cp
            .columns
            .iter()
            .map(|c| format!("{:.0}%→{:.0}", c.share * 100.0, c.budget))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{:<10} {:>10.1} {:>11.1} {:>8.1}%  [{}]",
            cp.class.to_string(),
            cp.expected_demand,
            cp.guaranteed_demand(),
            cp.rejected_fraction * 100.0,
            cols
        );
    }

    // Cross-check against the faithful Fig. 4 arc LP on a reduced
    // aggregate (the arc LP scales only to small instances).
    let reduced = AggregateDemand::from_demands(
        &aggregate
            .requests()
            .iter()
            .take(6)
            .map(|r| (r.class, r.demand))
            .collect(),
    );
    let (_, colgen_stats) = solve_plan(
        &substrate,
        &apps,
        &PlacementPolicy::default(),
        &reduced,
        &config,
    );
    let arc = solve_arc_lp(
        &substrate,
        &apps,
        &PlacementPolicy::default(),
        &reduced,
        &config,
    );
    println!(
        "\ncross-check on 6 classes: column generation {:.6e} vs arc LP {:.6e} (diff {:.2e})",
        colgen_stats.objective,
        arc.objective,
        (colgen_stats.objective - arc.objective).abs()
    );
    assert!(
        (colgen_stats.objective - arc.objective).abs() / arc.objective.max(1.0) < 1e-4,
        "the two PLAN-VNE solvers must agree"
    );
    Ok(())
}
