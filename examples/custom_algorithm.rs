//! A third-party online algorithm registered by name — without touching
//! `vne-sim`.
//!
//! This is the acceptance demo for the open algorithm registry: the
//! whole algorithm lives in this one file. `EDGEFIRST` is a deliberately
//! naive baseline that only ever embeds a request collocated at its
//! ingress edge datacenter (no routing into the core at all), so it
//! saturates hot edge nodes quickly — a useful lower bound against
//! QUICKG, whose Dijkstra search may haul demand to any feasible node.
//!
//! Run with `cargo run --release --example custom_algorithm`.

use std::collections::HashMap;

use vne::olive::algorithm::{OnlineAlgorithm, SlotOutcome};
use vne::prelude::*;
use vne::sim::registry::BuiltAlgorithm;
use vne::sim::runner::default_apps;

/// Embeds every request collocated at its ingress node, or rejects it.
struct EdgeFirst {
    substrate: SubstrateNetwork,
    apps: AppSet,
    policy: PlacementPolicy,
    loads: LoadLedger,
    /// Footprints of active requests, released on departure.
    active: HashMap<RequestId, (f64, Footprint)>,
}

impl EdgeFirst {
    fn new(substrate: SubstrateNetwork, apps: AppSet, policy: PlacementPolicy) -> Self {
        let loads = LoadLedger::new(&substrate);
        Self {
            substrate,
            apps,
            policy,
            loads,
            active: HashMap::new(),
        }
    }
}

impl OnlineAlgorithm for EdgeFirst {
    fn name(&self) -> &str {
        "EDGEFIRST"
    }

    fn process_slot(
        &mut self,
        _t: Slot,
        departures: &[Request],
        arrivals: &[Request],
    ) -> SlotOutcome {
        let mut outcome = SlotOutcome::default();
        for d in departures {
            if let Some((demand, footprint)) = self.active.remove(&d.id) {
                self.loads.remove(&footprint, demand);
            }
        }
        for r in arrivals {
            let vnet = self.apps.vnet(r.app);
            let host = self.substrate.node(r.ingress);
            // All VNFs collocated on the ingress itself: no substrate
            // links are used (path length 0), only node capacity.
            let mut per_unit = 0.0;
            let mut placeable = true;
            for (_, vnf) in vnet.vnodes() {
                if vnf.beta == 0.0 {
                    continue;
                }
                match self.policy.node_eta(vnf, host) {
                    Some(eta) => per_unit += vnf.beta * eta,
                    None => placeable = false,
                }
            }
            let footprint = Footprint::from_parts(vec![(r.ingress, per_unit)], vec![]);
            if placeable && self.loads.fits(&footprint, r.demand) {
                self.loads.apply(&footprint, r.demand);
                self.active.insert(r.id, (r.demand, footprint));
                outcome.accepted.push(r.id);
            } else {
                outcome.rejected.push(r.id);
            }
        }
        outcome
    }

    fn loads(&self) -> &LoadLedger {
        &self.loads
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let substrate = vne::topology::zoo::iris()?;
    let seed = 7;
    let mut config = ScenarioConfig::small(1.0).with_seed(seed);
    config.history_slots = 150;

    // Register EDGEFIRST by name next to the four builtins.
    let scenario = Scenario::builder(substrate)
        .apps(default_apps(seed))
        .config(config)
        .algorithm("edgefirst", |ctx| {
            BuiltAlgorithm::plain(EdgeFirst::new(
                ctx.substrate().clone(),
                ctx.apps().clone(),
                ctx.policy().clone(),
            ))
        })
        .build();

    println!("registered algorithms: {:?}\n", scenario.registry().names());
    println!(
        "{:<10} {:>10} {:>12} {:>9}",
        "algorithm", "rejection", "total cost", "arrivals"
    );
    for name in ["EDGEFIRST", "QUICKG", "OLIVE"] {
        let outcome = scenario.run(name);
        println!(
            "{:<10} {:>9.2}% {:>12.3e} {:>9}",
            name,
            outcome.summary.rejection_rate * 100.0,
            outcome.summary.total_cost,
            outcome.summary.arrivals,
        );
    }
    Ok(())
}
