//! Quickstart: the full OLIVE pipeline on a real topology in ~40 lines.
//!
//! Builds the Iris substrate, draws the paper's application mix,
//! generates a bursty MMPP trace, aggregates the history into a plan
//! (PLAN-VNE) and serves the online phase with OLIVE — then compares
//! against the QUICKG greedy baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use vne::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Substrate: Iris (50 datacenters, 64 links, 3 tiers).
    let substrate = vne::topology::zoo::iris()?;
    println!(
        "substrate: {} ({} nodes, {} edge datacenters)",
        substrate.name(),
        substrate.node_count(),
        substrate.edge_nodes().len()
    );

    // 2. Applications: two chains, a tree and an accelerator chain with
    //    randomly drawn sizes (Table III).
    let mut rng = SeededRng::new(42);
    let apps = paper_mix(&AppGenConfig::default(), &mut rng);
    for app in apps.iter() {
        println!(
            "app {:8} ({}): {} VNFs, total size {:.0}",
            app.name,
            app.shape,
            app.vnet.vnf_count(),
            app.vnet.total_node_size()
        );
    }

    // 3. Scenario at 120% edge utilization: 600 planning slots feed the
    //    plan, 200 online slots are served.
    let mut config = ScenarioConfig::small(1.2).with_seed(42);
    config.history_slots = 600;
    config.test_slots = 200;
    config.measure_window = (30, 170);
    let scenario = Scenario::new(substrate, apps, config);

    // 4. OLIVE vs QUICKG.
    let olive = scenario.run(Algorithm::Olive);
    let quickg = scenario.run(Algorithm::Quickg);

    let plan = olive.plan.as_ref().expect("OLIVE builds a plan");
    println!(
        "\nplan: {} classes, {} embedding columns, {:.1}% of expected demand rejected up front",
        plan.len(),
        plan.total_columns(),
        plan.planned_rejection_fraction() * 100.0
    );
    println!("plan built in {:.2}s", olive.plan_secs);

    println!(
        "\n{:<8} {:>10} {:>14} {:>12}",
        "alg", "rejection", "total cost", "online[s]"
    );
    for out in [&olive, &quickg] {
        println!(
            "{:<8} {:>9.2}% {:>14.3e} {:>12.3}",
            out.result.algorithm,
            out.summary.rejection_rate * 100.0,
            out.summary.total_cost,
            out.summary.online_secs
        );
    }
    println!(
        "\nOLIVE rejected {:.1}% fewer requests than QUICKG",
        (quickg.summary.rejection_rate - olive.summary.rejection_rate) * 100.0
    );
    Ok(())
}
