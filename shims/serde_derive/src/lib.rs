//! Vendored no-op replacement for `serde_derive`.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing:
//! the workspace only tags types as serializable for future use and
//! never serializes through the shim. Swapping the real `serde` back in
//! (root `[workspace.dependencies]`) restores full codegen without any
//! source change.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
