//! Vendored, API-compatible shim for the `criterion` benchmark harness.
//!
//! Implements the surface the workspace benches use — `Criterion`,
//! benchmark groups with `sample_size`/`throughput`/`bench_with_input`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `Throughput`,
//! `BatchSize`, [`black_box`] and the [`criterion_group!`]/
//! [`criterion_main!`] macros. Measurement is a plain wall-clock
//! mean/min/max over the configured sample count (no outlier analysis,
//! no HTML reports); results print one line per benchmark. Under
//! `cargo test`/`--test` the binaries exit immediately so bench targets
//! stay cheap in test runs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (sizing hints are accepted for
/// API compatibility; the shim runs one setup per measured batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch upstream.
    SmallInput,
    /// Large inputs: one iteration per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (function name plus optional parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Measures `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

fn report(group: &str, label: &str, throughput: Option<Throughput>, durations: &[Duration]) {
    if durations.is_empty() {
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().expect("non-empty");
    let max = durations.iter().max().expect("non-empty");
    let name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name:<50} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  \
         [{} samples]{rate}",
        durations.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the measurement time budget (accepted for compatibility;
    /// the shim always runs exactly `sample_size` samples).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.samples);
        routine(&mut bencher);
        report(&self.name, &id.label, self.throughput, &bencher.durations);
        self
    }

    /// Benchmarks `routine` against a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.samples);
        routine(&mut bencher, input);
        report(&self.name, &id.label, self.throughput, &bencher.durations);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this only consumes the group).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.default_samples);
        routine(&mut bencher);
        report("", &id.label, None, &bencher.durations);
        self
    }
}

/// True when invoked by `cargo test` (libtest passes `--test`), in
/// which case bench mains exit immediately.
#[doc(hidden)]
pub fn invoked_as_test() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list")
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::invoked_as_test() {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_measure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.bench_function(BenchmarkId::from_parameter("batched"), |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
