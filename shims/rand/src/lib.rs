//! Vendored, API-compatible shim for the `rand` crate (0.8 surface).
//!
//! Implements exactly the slice of the `rand` API this workspace uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`, [`rngs::StdRng`] (a xoshiro256++
//! generator with SplitMix64 seeding), [`seq::SliceRandom`] and
//! [`Error`]. Streams are deterministic and replayable but do **not**
//! bit-match upstream `rand`'s ChaCha12-based `StdRng`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type returned by fallible RNG methods.
///
/// The shimmed generators are infallible, so this is never produced,
/// but the type is needed for `RngCore::try_fill_bytes` signatures.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fills `dest` with random bytes, reporting failure (never fails
    /// for the shimmed generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for the shimmed RNGs).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly as upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let mixed = splitmix64(&mut state);
            let bytes = mixed.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types sampleable uniformly from a generator's raw output (the
/// `Standard` distribution in upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching upstream's conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (the `SampleRange` trait in
/// upstream `rand`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream behavior.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = u128::sample_standard(rng) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = u128::sample_standard(rng) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = <$t>::sample_standard(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let f = <$t>::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (fast, 256-bit state).
    ///
    /// Deterministic per seed, but not bit-compatible with upstream
    /// `rand`'s ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[allow(clippy::cast_possible_truncation)]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            Self { s }
        }
    }
}

/// Random selection and shuffling on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(0..=4u8);
            assert!(i <= 4);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_samples_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!([1u32, 2, 3].choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}
