//! Vendored API-surface shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and
//! derive-macro namespaces so `use serde::{Deserialize, Serialize};`
//! plus `#[derive(Serialize, Deserialize)]` compile unchanged. The
//! derives expand to nothing (see `serde_derive`); the traits are empty
//! markers. Replace the `path` dependency with the registry crate to
//! restore real serialization.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
