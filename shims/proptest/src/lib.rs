//! Vendored, API-compatible shim for the `proptest` crate.
//!
//! Implements the slice of proptest this workspace uses: the
//! [`proptest!`] macro with optional `#![proptest_config(..)]`,
//! [`prop_assert!`]/[`prop_assert_eq!`], the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`, numeric range and tuple
//! strategies, [`any`], [`collection::vec`] and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (FNV of the test path) so failures are reproducible,
//! and there is **no shrinking** — on failure the case index and seed
//! are printed instead of a minimized input.

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Test configuration and the deterministic RNG behind the shim.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases — smaller than upstream's 256 to keep the heavier
        /// pipeline properties fast; override per block with
        /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ///
        /// Like upstream, the `PROPTEST_CASES` environment variable
        /// overrides the default count (explicit `with_cases` configs
        /// are untouched) — the scheduled CI property job runs the
        /// default-config suites at 1024 cases this way.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|&c| c > 0)
                .unwrap_or(64);
            Self { cases }
        }
    }

    /// Deterministic SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one test case.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Stable per-test base seed (FNV-1a of the test path).
        pub fn seed_for(name: &str) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, span)` (`span > 0`).
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % span
        }
    }

    /// Prints a reproduction hint if a property body panics.
    pub struct PanicReporter {
        /// Full test path.
        pub name: &'static str,
        /// Index of the running case.
        pub case: u32,
        /// Base seed of the test.
        pub seed: u64,
    }

    impl Drop for PanicReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest shim: property `{}` failed at case {} (base seed {:#x}); \
                     cases are deterministic per test path, rerun to reproduce",
                    self.name, self.case, self.seed
                );
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates an intermediate value and uses it to pick a
        /// follow-up strategy (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(S0.0);
    tuple_strategy!(S0.0, S1.1);
    tuple_strategy!(S0.0, S1.1, S2.2);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
}

/// The [`Arbitrary`](arbitrary::Arbitrary) trait behind [`any`].
pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Uniform in `[0, 1)` (upstream explores edge cases; the shim
        /// keeps values benign since no property here relies on them).
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }
}

/// Strategy for [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (full-range for integers).
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        #[allow(clippy::cast_possible_truncation)]
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy generating vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-line import of the macro + strategy surface.
pub mod prelude {
    pub use crate::any;
    pub use crate::arbitrary::Arbitrary;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property holds, with optional format arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg(<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let seed = $crate::test_runner::TestRng::seed_for(test_path);
            for case in 0..config.cases {
                let _reporter = $crate::test_runner::PanicReporter {
                    name: test_path,
                    case,
                    seed,
                };
                let mut rng =
                    $crate::test_runner::TestRng::new(seed.wrapping_add(u64::from(case)));
                let ( $($p,)* ) = (
                    $( $crate::strategy::Strategy::generate(&($s), &mut rng) ,)*
                );
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..8).prop_flat_map(|n| (Just(n), collection::vec(0.0f64..1.0, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn flat_map_links_sizes((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let seed = crate::test_runner::TestRng::seed_for("a::b");
        let mut r1 = crate::test_runner::TestRng::new(seed);
        let mut r2 = crate::test_runner::TestRng::new(seed);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}
