//! Property-based tests for the OLIVE core: solver agreement, plan
//! feasibility, and online-algorithm invariants over random traces.

use std::collections::BTreeMap;

use proptest::prelude::*;
use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::ids::{AppId, ClassId, NodeId, RequestId};
use vne_model::policy::PlacementPolicy;
use vne_model::request::Request;
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::aggregate::AggregateDemand;
use vne_olive::algorithm::OnlineAlgorithm;
use vne_olive::colgen::{solve_plan, PlanVneConfig};
use vne_olive::olive::{Olive, OliveConfig};
use vne_olive::planvne::solve_arc_lp;
use vne_olive::pricing::{min_cost_embedding, ElementCosts};

/// A small random tiered substrate (path backbone + extras), always
/// connected.
fn arb_substrate() -> impl Strategy<Value = SubstrateNetwork> {
    (
        4usize..9,
        proptest::collection::vec((0usize..9, 0usize..9), 0..6),
        1.0f64..100.0,
    )
        .prop_map(|(n, extras, cap_scale)| {
            let mut s = SubstrateNetwork::new("prop");
            for i in 0..n {
                let tier = match i % 3 {
                    0 => Tier::Edge,
                    1 => Tier::Transport,
                    _ => Tier::Core,
                };
                let (cap, cost) = match tier {
                    Tier::Edge => (200.0 * cap_scale, 50.0),
                    Tier::Transport => (600.0 * cap_scale, 10.0),
                    Tier::Core => (1800.0 * cap_scale, 1.0),
                };
                s.add_node(format!("n{i}"), tier, cap, cost).unwrap();
            }
            for i in 1..n {
                s.add_link(
                    NodeId::from_index(i - 1),
                    NodeId::from_index(i),
                    300.0 * cap_scale,
                    1.0,
                )
                .unwrap();
            }
            for (a, b) in extras {
                let (a, b) = (a % n, b % n);
                if a != b {
                    let (x, y) = (NodeId::from_index(a), NodeId::from_index(b));
                    if s.link_between(x, y).is_none() {
                        s.add_link(x, y, 300.0 * cap_scale, 1.0).unwrap();
                    }
                }
            }
            s
        })
}

fn small_apps() -> AppSet {
    let mut apps = AppSet::new();
    apps.push(
        "c2",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps.push(
        "t3",
        AppShape::Tree,
        shapes::two_branch_tree(3, 8.0, 2.0).unwrap(),
    )
    .unwrap();
    apps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two PLAN-VNE solvers must agree on the optimal objective.
    #[test]
    fn colgen_agrees_with_arc_lp(
        s in arb_substrate(),
        demands in proptest::collection::vec(1.0f64..60.0, 1..4),
    ) {
        let apps = small_apps();
        let policy = PlacementPolicy::default();
        let edge = s.edge_nodes();
        let mut m = BTreeMap::new();
        for (i, d) in demands.iter().enumerate() {
            let class = ClassId::new(
                AppId((i % 2) as u32),
                edge[i % edge.len()],
            );
            *m.entry(class).or_insert(0.0) += *d;
        }
        let aggregate = AggregateDemand::from_demands(&m);
        let config = PlanVneConfig::new(1e4);
        let (_, stats) = solve_plan(&s, &apps, &policy, &aggregate, &config);
        let arc = solve_arc_lp(&s, &apps, &policy, &aggregate, &config);
        let denom = arc.objective.abs().max(1.0);
        prop_assert!(
            (stats.objective - arc.objective).abs() / denom < 1e-4,
            "colgen {} vs arc {}", stats.objective, arc.objective
        );
    }

    /// Plans never overload any substrate element.
    #[test]
    fn plans_respect_capacities(
        s in arb_substrate(),
        demand in 10.0f64..400.0,
    ) {
        let apps = small_apps();
        let policy = PlacementPolicy::default();
        let edge = s.edge_nodes();
        let mut m = BTreeMap::new();
        for (i, &e) in edge.iter().enumerate() {
            m.insert(ClassId::new(AppId((i % 2) as u32), e), demand);
        }
        let aggregate = AggregateDemand::from_demands(&m);
        let (plan, _) = solve_plan(&s, &apps, &policy, &aggregate, &PlanVneConfig::new(1e4));
        let mut node_load = vec![0.0; s.node_count()];
        let mut link_load = vec![0.0; s.link_count()];
        for cp in plan.iter() {
            // Shares are a sub-convex combination.
            let total: f64 = cp.columns.iter().map(|c| c.share).sum();
            prop_assert!(total <= 1.0 + 1e-6);
            prop_assert!(cp.rejected_fraction >= -1e-9 && cp.rejected_fraction <= 1.0 + 1e-9);
            prop_assert!((total + cp.rejected_fraction - 1.0).abs() < 1e-5);
            for col in &cp.columns {
                for &(n, x) in col.footprint.nodes() {
                    node_load[n.index()] += x * col.budget;
                }
                for &(l, x) in col.footprint.links() {
                    link_load[l.index()] += x * col.budget;
                }
            }
        }
        for (id, n) in s.nodes() {
            prop_assert!(node_load[id.index()] <= n.capacity * (1.0 + 1e-6));
        }
        for (id, l) in s.links() {
            prop_assert!(link_load[id.index()] <= l.capacity * (1.0 + 1e-6));
        }
    }

    /// The pricing DP returns embeddings whose claimed cost matches the
    /// footprint, and never returns a worse collocated solution than the
    /// explicit collocated search.
    #[test]
    fn pricing_cost_is_consistent(s in arb_substrate(), ingress_pick in any::<u16>()) {
        let apps = small_apps();
        let policy = PlacementPolicy::default();
        let edge = s.edge_nodes();
        let ingress = edge[ingress_pick as usize % edge.len()];
        let costs = ElementCosts::from_substrate(&s);
        for app in apps.iter() {
            let got = min_cost_embedding(&s, &app.vnet, &policy, ingress, &costs, None);
            prop_assert!(got.is_some());
            let (emb, cost) = got.unwrap();
            prop_assert!(emb.validate(&app.vnet, &s, &policy).is_ok());
            let fp_cost = emb.unit_cost(&app.vnet, &s, &policy);
            prop_assert!((fp_cost - cost).abs() < 1e-9);
            // DP optimum ≤ best collocated solution.
            let ledger = vne_model::load::LoadLedger::new(&s);
            if let Some((_, colo_cost)) = vne_olive::greedy::collocated_embed(
                &s, &app.vnet, &policy, ingress, &ledger, 1.0,
            ) {
                prop_assert!(cost <= colo_cost + 1e-9, "dp {cost} > colo {colo_cost}");
            }
        }
    }

    /// OLIVE never violates capacities, never double-books plan budgets,
    /// and accounts every arrival exactly once — over random traces.
    #[test]
    fn olive_invariants_over_random_traces(
        s in arb_substrate(),
        raw in proptest::collection::vec(
            (0u8..20, 1u8..8, 0u16..1000, 0.5f64..20.0, 0u8..2),
            1..60,
        ),
    ) {
        let apps = small_apps();
        let policy = PlacementPolicy::default();
        let edge = s.edge_nodes();
        // Random plan from a moderate aggregate.
        let mut m = BTreeMap::new();
        for &e in &edge {
            m.insert(ClassId::new(AppId(0), e), 40.0);
            m.insert(ClassId::new(AppId(1), e), 40.0);
        }
        let aggregate = AggregateDemand::from_demands(&m);
        let (plan, _) = solve_plan(&s, &apps, &policy, &aggregate, &PlanVneConfig::new(1e4));
        let mut olive = Olive::new(
            s.clone(), apps, policy, plan, OliveConfig::default(),
        );

        // Random requests sorted into slots.
        let mut requests: Vec<Request> = raw
            .iter()
            .enumerate()
            .map(|(i, &(t, dur, node_pick, demand, app))| Request {
                id: RequestId(i as u64),
                arrival: u32::from(t),
                duration: u32::from(dur),
                ingress: edge[node_pick as usize % edge.len()],
                app: AppId(u32::from(app)),
                demand,
            })
            .collect();
        requests.sort_by_key(|r| r.arrival);

        let mut accepted = 0usize;
        let mut denied = 0usize;
        let mut active: Vec<Request> = Vec::new();
        for t in 0..30u32 {
            let departures: Vec<Request> = active
                .iter()
                .filter(|r| r.departure() == t)
                .cloned()
                .collect();
            active.retain(|r| r.departure() != t);
            let arrivals: Vec<Request> = requests
                .iter()
                .filter(|r| r.arrival == t)
                .cloned()
                .collect();
            let out = olive.process_slot(t, &departures, &arrivals);
            prop_assert!(olive.loads().check_invariants());
            prop_assert!(olive.plan_ledger().check_invariants());
            accepted += out.accepted.len();
            denied += out.rejected.len();
            for r in &arrivals {
                if out.accepted.contains(&r.id) {
                    active.push(r.clone());
                }
            }
            for p in &out.preempted {
                active.retain(|r| r.id != *p);
                denied += 1;
                accepted -= 1;
            }
        }
        prop_assert_eq!(accepted + denied, requests.len());
    }
}
