//! The direct arc formulation of PLAN-VNE (Fig. 4 of the paper).
//!
//! This is the LP exactly as published: per class, fractional placement
//! variables `y_v^i`, directed per-arc flow variables `y_{uv}^{ij}` with
//! flow conservation (14), root pinning (11)/(13), rejection quantiles
//! (12), and shared capacity rows (15). It scales to small instances only
//! (the row count grows with `|classes| · |G_a| · |V_S|`), so production
//! code uses [`crate::colgen`]; this module exists as the faithful
//! reference implementation and cross-validation oracle — both solvers
//! must agree on the optimal objective.

use std::collections::HashMap;

use vne_lp::problem::{Problem, Relation, VarId};
use vne_lp::simplex::{Simplex, SimplexOptions};
use vne_lp::solution::SolveStatus;
use vne_model::app::AppSet;
use vne_model::ids::{ClassId, LinkId, NodeId, VlinkId, VnodeId};
use vne_model::policy::PlacementPolicy;
use vne_model::substrate::SubstrateNetwork;
use vne_model::vnet::VirtualNetwork;

use crate::aggregate::AggregateDemand;
use crate::colgen::PlanVneConfig;

/// The fractional solution of one class in arc form.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcClassSolution {
    /// The class.
    pub class: ClassId,
    /// Expected demand `d(r̃)`.
    pub demand: f64,
    /// `node_fracs[i][v]` = `y_v^i`: fraction of the class demand placing
    /// virtual node `i` on substrate node `v`.
    pub node_fracs: Vec<Vec<f64>>,
    /// `arc_flows[e]`: directed flow of virtual link `e` per `(u, v)`
    /// substrate node pair (over an existing link).
    pub arc_flows: Vec<HashMap<(NodeId, NodeId), f64>>,
    /// Rejected fraction `Σ_p y_p`.
    pub rejected: f64,
}

/// The full arc-form PLAN-VNE solution.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcPlanSolution {
    /// Objective value (resource cost + quantile rejection cost).
    pub objective: f64,
    /// Per-class fractional solutions.
    pub classes: Vec<ArcClassSolution>,
}

/// Solves the Fig. 4 LP directly.
///
/// # Panics
///
/// Panics if the LP solver fails to prove optimality (the LP is always
/// feasible: full rejection satisfies every row).
pub fn solve_arc_lp(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    policy: &PlacementPolicy,
    aggregate: &AggregateDemand,
    config: &PlanVneConfig,
) -> ArcPlanSolution {
    let mut p = Problem::new();
    let n_sub = substrate.node_count();

    // Shared capacity rows (15).
    let node_rows: Vec<_> = substrate
        .nodes()
        .map(|(id, n)| p.add_row(format!("cap-{id}"), Relation::Le, n.capacity))
        .collect();
    let link_rows: Vec<_> = substrate
        .links()
        .map(|(id, l)| p.add_row(format!("cap-{id}"), Relation::Le, l.capacity))
        .collect();

    struct ClassVars {
        node_vars: Vec<Vec<Option<VarId>>>,
        // arc vars per vlink: (link, forward a→b?) → var
        arc_vars: Vec<Vec<(LinkId, bool, VarId)>>,
        quantile_vars: Vec<VarId>,
    }
    let mut class_vars: Vec<ClassVars> = Vec::new();

    for agg in aggregate.requests() {
        let vnet = apps.vnet(agg.class.app);
        let d = agg.demand;
        let ingress = agg.class.ingress;
        let cname = agg.class.to_string();

        // Placement variables (10) with (11): θ only at the ingress.
        let mut node_vars: Vec<Vec<Option<VarId>>> = vec![vec![None; n_sub]; vnet.node_count()];
        for (i, vnf) in vnet.vnodes() {
            for (v, snode) in substrate.nodes() {
                if i == VirtualNetwork::ROOT && v != ingress {
                    continue;
                }
                let Some(eta) = policy.node_eta(vnf, snode) else {
                    continue;
                };
                let load = d * vnf.beta * eta;
                let var = p.add_var(format!("y-{cname}-{i}-{v}"), load * snode.cost, 0.0, 1.0);
                if load > 0.0 {
                    p.set_coeff(node_rows[v.index()], var, load);
                }
                node_vars[i.index()][v.index()] = Some(var);
            }
        }

        // Arc flow variables, two directions per substrate link.
        let mut arc_vars: Vec<Vec<(LinkId, bool, VarId)>> = vec![Vec::new(); vnet.link_count()];
        for (e, vlink) in vnet.vlinks() {
            for (l, slink) in substrate.links() {
                let Some(eta) = policy.link_eta(vlink, slink) else {
                    continue;
                };
                let load = d * vlink.beta * eta;
                for forward in [true, false] {
                    let var = p.add_var(
                        format!("f-{cname}-{e}-{l}-{}", if forward { "f" } else { "b" }),
                        load * slink.cost,
                        0.0,
                        f64::INFINITY,
                    );
                    if load > 0.0 {
                        p.set_coeff(link_rows[l.index()], var, load);
                    }
                    arc_vars[e.index()].push((l, forward, var));
                }
            }
        }

        // Quantiles (12) and the root convexity row (13).
        let quantile_vars: Vec<VarId> = (1..=config.quantiles)
            .map(|q| {
                p.add_var(
                    format!("rej-{cname}-q{q}"),
                    config.psi * d * q as f64,
                    0.0,
                    1.0 / config.quantiles as f64,
                )
            })
            .collect();
        let root_row = p.add_row(format!("root-{cname}"), Relation::Eq, 1.0);
        if let Some(theta) = node_vars[VirtualNetwork::ROOT.index()][ingress.index()] {
            p.set_coeff(root_row, theta, 1.0);
        }
        for &qv in &quantile_vars {
            p.set_coeff(root_row, qv, 1.0);
        }

        // Flow conservation (14): y_v^j − y_v^i − inflow(v) + outflow(v) = 0.
        for (e, vlink) in vnet.vlinks() {
            for v in substrate.node_ids() {
                let row = p.add_row(format!("cons-{cname}-{e}-{v}"), Relation::Eq, 0.0);
                if let Some(yj) = node_vars[vlink.to.index()][v.index()] {
                    p.set_coeff(row, yj, 1.0);
                }
                if let Some(yi) = node_vars[vlink.from.index()][v.index()] {
                    p.set_coeff(row, yi, -1.0);
                }
                for &(l, forward, var) in &arc_vars[e.index()] {
                    let slink = substrate.link(l);
                    let (from, to) = if forward {
                        (slink.a, slink.b)
                    } else {
                        (slink.b, slink.a)
                    };
                    if to == v {
                        p.set_coeff(row, var, -1.0); // inflow
                    }
                    if from == v {
                        p.set_coeff(row, var, 1.0); // outflow
                    }
                }
            }
        }

        class_vars.push(ClassVars {
            node_vars,
            arc_vars,
            quantile_vars,
        });
    }

    let mut simplex = Simplex::with_options(&p, SimplexOptions::default());
    let sol = simplex.solve();
    assert_eq!(
        sol.status,
        SolveStatus::Optimal,
        "arc PLAN-VNE must solve to optimality"
    );

    let mut classes = Vec::new();
    for (agg, vars) in aggregate.requests().iter().zip(&class_vars) {
        let vnet = apps.vnet(agg.class.app);
        let node_fracs: Vec<Vec<f64>> = vars
            .node_vars
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| v.map(|id| sol.x[id.0]).unwrap_or(0.0))
                    .collect()
            })
            .collect();
        let mut arc_flows = vec![HashMap::new(); vnet.link_count()];
        for (e, flows) in vars.arc_vars.iter().enumerate() {
            for &(l, forward, var) in flows {
                let x = sol.x[var.0];
                if x > 1e-9 {
                    let slink = substrate.link(l);
                    let key = if forward {
                        (slink.a, slink.b)
                    } else {
                        (slink.b, slink.a)
                    };
                    *arc_flows[e].entry(key).or_insert(0.0) += x;
                }
            }
        }
        let rejected: f64 = vars.quantile_vars.iter().map(|v| sol.x[v.0]).sum();
        classes.push(ArcClassSolution {
            class: agg.class,
            demand: agg.demand,
            node_fracs,
            arc_flows,
            rejected,
        });
    }
    ArcPlanSolution {
        objective: sol.objective,
        classes,
    }
}

/// Helpers for inspecting arc solutions in tests.
impl ArcClassSolution {
    /// The allocated fraction (`y^θ` at the ingress).
    pub fn allocated(&self) -> f64 {
        1.0 - self.rejected
    }

    /// Total fraction of virtual node `i` placed anywhere.
    pub fn placement_total(&self, i: VnodeId) -> f64 {
        self.node_fracs[i.index()].iter().sum()
    }

    /// Flow value of virtual link `e` over the directed pair `(u, v)`.
    pub fn flow(&self, e: VlinkId, u: NodeId, v: NodeId) -> f64 {
        self.arc_flows[e.index()]
            .get(&(u, v))
            .copied()
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colgen::solve_plan;
    use std::collections::BTreeMap;
    use vne_model::app::{shapes, AppShape};
    use vne_model::ids::AppId;
    use vne_model::substrate::Tier;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let t = s.add_node("t1", Tier::Transport, 300.0, 10.0).unwrap();
        let c = s.add_node("c2", Tier::Core, 900.0, 1.0).unwrap();
        s.add_link(e, t, 200.0, 1.0).unwrap();
        s.add_link(t, c, 600.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(2, 10.0, 2.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn agg(demand: f64) -> AggregateDemand {
        let mut m = BTreeMap::new();
        m.insert(ClassId::new(AppId(0), NodeId(0)), demand);
        AggregateDemand::from_demands(&m)
    }

    #[test]
    fn arc_lp_fully_allocates_when_feasible() {
        let (s, apps) = world();
        let sol = solve_arc_lp(
            &s,
            &apps,
            &PlacementPolicy::default(),
            &agg(5.0),
            &PlanVneConfig::new(1e4),
        );
        let c = &sol.classes[0];
        assert!(c.rejected < 1e-6);
        assert!((c.allocated() - 1.0).abs() < 1e-6);
        // Flow conservation implies every virtual node is fully placed.
        assert!((c.placement_total(VnodeId(1)) - 1.0).abs() < 1e-6);
        assert!((c.placement_total(VnodeId(2)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn arc_lp_matches_column_generation_objective() {
        let (s, apps) = world();
        let policy = PlacementPolicy::default();
        for demand in [5.0, 40.0, 100.0] {
            let config = PlanVneConfig::new(1e4);
            let arc = solve_arc_lp(&s, &apps, &policy, &agg(demand), &config);
            let (plan, stats) = solve_plan(&s, &apps, &policy, &agg(demand), &config);
            assert!(
                (arc.objective - stats.objective).abs() / arc.objective.max(1.0) < 1e-5,
                "demand {demand}: arc {} vs colgen {}",
                arc.objective,
                stats.objective
            );
            let _ = plan;
        }
    }

    #[test]
    fn arc_lp_two_classes_balance() {
        let (s, apps) = world();
        let policy = PlacementPolicy::default();
        let mut m = BTreeMap::new();
        m.insert(ClassId::new(AppId(0), NodeId(0)), 70.0);
        m.insert(ClassId::new(AppId(0), NodeId(1)), 70.0);
        let aggregate = AggregateDemand::from_demands(&m);
        let sol = solve_arc_lp(&s, &apps, &policy, &aggregate, &PlanVneConfig::new(1e4));
        let r0 = sol.classes[0].rejected;
        let r1 = sol.classes[1].rejected;
        assert!((r0 - r1).abs() < 0.2, "r0 {r0} r1 {r1}");
        // And cross-check against column generation.
        let (_, stats) = solve_plan(&s, &apps, &policy, &aggregate, &PlanVneConfig::new(1e4));
        assert!(
            (sol.objective - stats.objective).abs() / sol.objective < 1e-5,
            "arc {} colgen {}",
            sol.objective,
            stats.objective
        );
    }

    #[test]
    fn gpu_class_rejected_in_arc_form() {
        let (s, _) = world();
        let mut apps = AppSet::new();
        apps.push(
            "gpu",
            AppShape::Gpu,
            shapes::gpu_chain(2, 10.0, 2.0, 0).unwrap(),
        )
        .unwrap();
        let sol = solve_arc_lp(
            &s,
            &apps,
            &PlacementPolicy::default(),
            &agg(5.0),
            &PlanVneConfig::new(1e4),
        );
        assert!((sol.classes[0].rejected - 1.0).abs() < 1e-6);
    }
}
