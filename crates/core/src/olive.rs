//! OLIVE: plan-based online embedding (Algorithm 2 of the paper).
//!
//! OLIVE processes arrivals in order, trying in turn:
//!
//! 1. **Planned embedding** (`PLAN EMBED`, full fit): serve the request
//!    out of a plan column with enough residual budget (Eq. 19). If the
//!    substrate lacks capacity — because non-planned requests "borrowed"
//!    it — OLIVE **preempts** non-planned active requests to restore the
//!    guaranteed share (Alg. 2 l. 8–9).
//! 2. **Borrowing** (partial fit, l. 27–29): follow a plan column whose
//!    budget is only partially available, taking unused substrate
//!    capacity; such allocations are *not* planned — they do not consume
//!    plan budget (Eq. 17 counts `R_PLAN` only) and are themselves
//!    preemptible later.
//! 3. **Greedy fallback** (`GREEDY EMBED`): cheapest collocated
//!    embedding under residual capacities.
//! 4. Otherwise the request is rejected.
//!
//! With an empty plan and no preemption this machinery *is* the QUICKG
//! baseline (constructed by [`Olive::quickg`]).

use std::collections::{BTreeMap, HashMap};

use vne_model::app::AppSet;
use vne_model::embedding::Footprint;
use vne_model::ids::{ClassId, RequestId};
use vne_model::load::LoadLedger;
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot};
use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};
use vne_model::substrate::SubstrateNetwork;

use crate::algorithm::{OnlineAlgorithm, SlotOutcome};
use crate::greedy::collocated_embed;
use crate::plan::{Plan, PlanLedger};

/// Feature switches for OLIVE (all on by default; ablations turn
/// individual mechanisms off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OliveConfig {
    /// Allow partial-fit "borrowing" of unused planned capacity.
    pub borrowing: bool,
    /// Allow preemption of non-planned requests for planned ones.
    pub preemption: bool,
    /// Allow the greedy collocated fallback.
    pub greedy_fallback: bool,
    /// QUICKG's fast path: reject immediately when all datacenters are
    /// full (§IV-B "Runtime").
    pub quickg_fast_reject: bool,
}

impl Default for OliveConfig {
    fn default() -> Self {
        Self {
            borrowing: true,
            preemption: true,
            greedy_fallback: true,
            quickg_fast_reject: false,
        }
    }
}

#[derive(Debug, Clone)]
struct ActiveAlloc {
    request: Request,
    footprint: Footprint,
    planned: bool,
    plan_column: Option<(ClassId, usize)>,
}

/// The OLIVE online algorithm (and, with an empty plan, QUICKG).
#[derive(Debug, Clone)]
pub struct Olive {
    name: String,
    substrate: SubstrateNetwork,
    apps: AppSet,
    policy: PlacementPolicy,
    plan: Plan,
    plan_ledger: PlanLedger,
    loads: LoadLedger,
    active: BTreeMap<RequestId, ActiveAlloc>,
    config: OliveConfig,
    stats: OliveStats,
}

/// Counters describing how requests were served (Fig. 12 categories).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OliveStats {
    /// Requests served inside their guaranteed plan budget.
    pub planned: usize,
    /// Requests served by borrowing (partial plan fit).
    pub borrowed: usize,
    /// Requests served by the greedy fallback.
    pub greedy: usize,
    /// Requests rejected on arrival.
    pub rejected: usize,
    /// Active requests preempted to restore planned capacity.
    pub preempted: usize,
}

impl Olive {
    /// Creates OLIVE with a plan.
    pub fn new(
        substrate: SubstrateNetwork,
        apps: AppSet,
        policy: PlacementPolicy,
        plan: Plan,
        config: OliveConfig,
    ) -> Self {
        let loads = LoadLedger::new(&substrate);
        let plan_ledger = PlanLedger::new(&plan);
        Self {
            name: "OLIVE".to_string(),
            substrate,
            apps,
            policy,
            plan,
            plan_ledger,
            loads,
            active: BTreeMap::new(),
            config,
            stats: OliveStats::default(),
        }
    }

    /// Creates the QUICKG baseline: OLIVE with an empty plan, greedily
    /// allocating each request with the collocation heuristic.
    pub fn quickg(substrate: SubstrateNetwork, apps: AppSet, policy: PlacementPolicy) -> Self {
        let mut q = Self::new(
            substrate,
            apps,
            policy,
            Plan::empty(),
            OliveConfig {
                borrowing: false,
                preemption: false,
                greedy_fallback: true,
                quickg_fast_reject: true,
            },
        );
        q.name = "QUICKG".to_string();
        q
    }

    /// Service-mode counters.
    pub fn stats(&self) -> OliveStats {
        self.stats
    }

    /// The plan this instance runs with.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Residual plan ledger (for tests and inspection).
    pub fn plan_ledger(&self) -> &PlanLedger {
        &self.plan_ledger
    }

    /// Whether a request is currently allocated.
    pub fn is_active(&self, id: RequestId) -> bool {
        self.active.contains_key(&id)
    }

    /// Whether an active request is planned (inside its guaranteed share).
    pub fn is_planned(&self, id: RequestId) -> bool {
        self.active.get(&id).map(|a| a.planned).unwrap_or(false)
    }

    /// Replaces the plan with a fresh one (used by time-varying plans,
    /// the paper's §VI extension). Active allocations are kept but
    /// demoted to non-planned: the new plan's guarantees start from full
    /// budgets, and carried-over requests become preemptible borrowers
    /// of the new plan's capacity.
    pub fn adopt_plan(&mut self, plan: Plan) {
        self.plan_ledger = PlanLedger::new(&plan);
        self.plan = plan;
        for alloc in self.active.values_mut() {
            alloc.planned = false;
            alloc.plan_column = None;
        }
    }

    /// Active demand of a class split into `(planned, non-planned)` —
    /// the green/blue split of the paper's Fig. 12.
    pub fn active_demand_by_class(&self, class: ClassId) -> (f64, f64) {
        let mut planned = 0.0;
        let mut borrowed = 0.0;
        for a in self.active.values() {
            if a.request.class() == class {
                if a.planned {
                    planned += a.request.demand;
                } else {
                    borrowed += a.request.demand;
                }
            }
        }
        (planned, borrowed)
    }

    fn release(&mut self, id: RequestId) {
        if let Some(alloc) = self.active.remove(&id) {
            self.loads.remove(&alloc.footprint, alloc.request.demand);
            if let Some((class, col)) = alloc.plan_column {
                self.plan_ledger.release(class, col, alloc.request.demand);
            }
        }
    }

    fn allocate(
        &mut self,
        r: &Request,
        footprint: Footprint,
        planned: bool,
        plan_column: Option<(ClassId, usize)>,
    ) {
        self.loads.apply(&footprint, r.demand);
        if let (true, Some((class, col))) = (planned, plan_column) {
            self.plan_ledger.consume(class, col, r.demand);
        }
        self.active.insert(
            r.id,
            ActiveAlloc {
                request: r.clone(),
                footprint,
                planned,
                plan_column: if planned { plan_column } else { None },
            },
        );
    }

    /// Finds non-planned victims whose eviction frees the deficit of
    /// `footprint · demand`. Victims are only committed if they suffice
    /// (`PREEMPT`, Alg. 2 l. 35–38); returns `None` otherwise.
    fn select_victims(&self, footprint: &Footprint, demand: f64) -> Option<Vec<RequestId>> {
        // Per-element deficits.
        let mut node_deficit: HashMap<usize, f64> = HashMap::new();
        let mut link_deficit: HashMap<usize, f64> = HashMap::new();
        for &(n, x) in footprint.nodes() {
            let need = x * demand - self.loads.node_residual(n);
            if need > 1e-9 {
                node_deficit.insert(n.index(), need);
            }
        }
        for &(l, x) in footprint.links() {
            let need = x * demand - self.loads.link_residual(l);
            if need > 1e-9 {
                link_deficit.insert(l.index(), need);
            }
        }
        if node_deficit.is_empty() && link_deficit.is_empty() {
            return Some(Vec::new());
        }

        // Candidates: non-planned active requests that touch a deficit
        // element, most recently arrived first (undo the borrowing that
        // displaced the plan), larger overlap first on ties.
        let mut candidates: Vec<(&RequestId, &ActiveAlloc, f64)> = self
            .active
            .iter()
            .filter(|(_, a)| !a.planned)
            .filter_map(|(id, a)| {
                let mut overlap = 0.0;
                for &(n, x) in a.footprint.nodes() {
                    if let Some(d) = node_deficit.get(&n.index()) {
                        overlap += (x * a.request.demand).min(*d);
                    }
                }
                for &(l, x) in a.footprint.links() {
                    if let Some(d) = link_deficit.get(&l.index()) {
                        overlap += (x * a.request.demand).min(*d);
                    }
                }
                (overlap > 0.0).then_some((id, a, overlap))
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.1.request
                .arrival
                .cmp(&a.1.request.arrival)
                .then_with(|| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| b.0.cmp(a.0))
        });

        let mut victims = Vec::new();
        for (id, alloc, _) in candidates {
            if node_deficit.is_empty() && link_deficit.is_empty() {
                break;
            }
            let mut helped = false;
            for &(n, x) in alloc.footprint.nodes() {
                if let Some(d) = node_deficit.get_mut(&n.index()) {
                    *d -= x * alloc.request.demand;
                    helped = true;
                    if *d <= 1e-9 {
                        node_deficit.remove(&n.index());
                    }
                }
            }
            for &(l, x) in alloc.footprint.links() {
                if let Some(d) = link_deficit.get_mut(&l.index()) {
                    *d -= x * alloc.request.demand;
                    helped = true;
                    if *d <= 1e-9 {
                        link_deficit.remove(&l.index());
                    }
                }
            }
            if helped {
                victims.push(*id);
            }
        }
        if node_deficit.is_empty() && link_deficit.is_empty() {
            Some(victims)
        } else {
            None
        }
    }

    /// Handles one arrival; returns accepted flag plus any preempted ids.
    fn handle_arrival(&mut self, r: &Request) -> (bool, Vec<RequestId>) {
        let class = r.class();
        let vnet = self.apps.vnet(r.app).clone();

        // QUICKG fast reject: all datacenters full.
        if self.config.quickg_fast_reject && self.loads.all_nodes_loaded_above(1.0) {
            self.stats.rejected += 1;
            return (false, Vec::new());
        }

        // --- PLAN EMBED: full fit inside the residual plan.
        if let Some(class_plan) = self.plan.class(class) {
            if let Some(col) = self.plan_ledger.full_fit(class, r.demand) {
                let footprint = class_plan.columns[col].footprint.clone();
                if self.loads.fits(&footprint, r.demand) {
                    self.allocate(r, footprint, true, Some((class, col)));
                    self.stats.planned += 1;
                    return (true, Vec::new());
                }
                // Planned but the substrate is occupied by borrowers:
                // preempt them (l. 8–9).
                if self.config.preemption {
                    if let Some(victims) = self.select_victims(&footprint, r.demand) {
                        for &v in &victims {
                            self.release(v);
                            self.stats.preempted += 1;
                        }
                        if self.loads.fits(&footprint, r.demand) {
                            self.allocate(r, footprint, true, Some((class, col)));
                            self.stats.planned += 1;
                            return (true, victims);
                        }
                        // Deficit estimation fell short (shared elements);
                        // fall through with the preemptions committed —
                        // the freed capacity still helps the paths below.
                        return self.post_plan_paths(r, &vnet, class, victims);
                    }
                }
            }
            // --- Partial fit: borrow through a partially available column.
            if self.config.borrowing {
                if let Some(outcome) = self.try_borrow(r, class) {
                    return outcome;
                }
            }
        }

        self.post_plan_paths(r, &vnet, class, Vec::new())
    }

    fn try_borrow(&mut self, r: &Request, class: ClassId) -> Option<(bool, Vec<RequestId>)> {
        let class_plan = self.plan.class(class)?;
        for col in self.plan_ledger.partial_candidates(class) {
            let footprint = class_plan.columns[col].footprint.clone();
            if self.loads.fits(&footprint, r.demand) {
                self.allocate(r, footprint, false, None);
                self.stats.borrowed += 1;
                return Some((true, Vec::new()));
            }
        }
        None
    }

    /// Borrowing (if not yet tried via plan) failed or was skipped:
    /// the greedy fallback and rejection.
    fn post_plan_paths(
        &mut self,
        r: &Request,
        vnet: &vne_model::vnet::VirtualNetwork,
        _class: ClassId,
        preempted: Vec<RequestId>,
    ) -> (bool, Vec<RequestId>) {
        if self.config.greedy_fallback {
            if let Some((embedding, _)) = collocated_embed(
                &self.substrate,
                vnet,
                &self.policy,
                r.ingress,
                &self.loads,
                r.demand,
            ) {
                let footprint = embedding.footprint(vnet, &self.substrate, &self.policy);
                if self.loads.fits(&footprint, r.demand) {
                    self.allocate(r, footprint, false, None);
                    self.stats.greedy += 1;
                    return (true, preempted);
                }
            }
        }
        self.stats.rejected += 1;
        (false, preempted)
    }
}

/// Checkpointing: the mutable state is the load ledger, the residual
/// plan ledger, the active allocations and the service-mode counters.
/// The plan itself, substrate, applications and config are construction
/// inputs — restore into an instance built with the same ones (the
/// simulation pipeline rebuilds them deterministically per seed). The
/// instance name (`OLIVE` vs `QUICKG`) is validated so a QUICKG blob
/// cannot silently restore into an OLIVE run.
impl Snapshot for Olive {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_str(&self.name);
        w.write_blob(&self.loads.snapshot());
        w.write_blob(&self.plan_ledger.snapshot());
        // Ordered by request id (BTreeMap iteration order).
        w.write_usize(self.active.len());
        for alloc in self.active.values() {
            w.write(&alloc.request);
            w.write(&alloc.footprint);
            w.write_bool(alloc.planned);
            w.write(&alloc.plan_column);
        }
        for count in [
            self.stats.planned,
            self.stats.borrowed,
            self.stats.greedy,
            self.stats.rejected,
            self.stats.preempted,
        ] {
            w.write_usize(count);
        }
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let name = r.read_str()?;
        if name != self.name {
            return Err(StateError::Mismatch {
                expected: format!("algorithm {}", self.name),
                found: format!("algorithm {name}"),
            });
        }
        let loads_blob = r.read_blob()?;
        let ledger_blob = r.read_blob()?;
        let count = r.read_usize()?;
        let mut active = BTreeMap::new();
        for _ in 0..count {
            let request: Request = r.read()?;
            let footprint = r.read()?;
            let planned = r.read_bool()?;
            let plan_column: Option<(ClassId, usize)> = r.read()?;
            active.insert(
                request.id,
                ActiveAlloc {
                    request,
                    footprint,
                    planned,
                    plan_column,
                },
            );
        }
        let stats = OliveStats {
            planned: r.read_usize()?,
            borrowed: r.read_usize()?,
            greedy: r.read_usize()?,
            rejected: r.read_usize()?,
            preempted: r.read_usize()?,
        };
        r.finish()?;
        self.loads.restore(&loads_blob)?;
        self.plan_ledger.restore(&ledger_blob)?;
        self.active = active;
        self.stats = stats;
        Ok(())
    }
}

impl OnlineAlgorithm for Olive {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self) -> Option<StateBlob> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        Snapshot::restore(self, blob)
    }

    fn process_slot(
        &mut self,
        _t: Slot,
        departures: &[Request],
        arrivals: &[Request],
    ) -> SlotOutcome {
        let mut outcome = SlotOutcome::default();
        for d in departures {
            self.release(d.id);
        }
        for r in arrivals {
            let (accepted, preempted) = self.handle_arrival(r);
            if accepted {
                outcome.accepted.push(r.id);
            } else {
                outcome.rejected.push(r.id);
            }
            outcome.preempted.extend(preempted);
        }
        debug_assert!(self.loads.check_invariants());
        debug_assert!(self.plan_ledger.check_invariants());
        outcome
    }

    fn loads(&self) -> &LoadLedger {
        &self.loads
    }

    fn apply_churn(&mut self, effective: &vne_model::churn::EffectiveCapacities) {
        self.loads.set_capacities(&effective.node, &effective.link);
    }

    fn footprint_of(&self, id: RequestId) -> Option<&Footprint> {
        self.active.get(&id).map(|a| &a.footprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ClassPlan, PlannedColumn};
    use vne_model::app::{shapes, AppShape};
    use vne_model::embedding::Embedding;
    use vne_model::ids::{AppId, LinkId, NodeId};
    use vne_model::substrate::Tier;

    /// e0(100) - t1(300) - c2(900); link caps 600/600.
    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let t = s.add_node("t1", Tier::Transport, 300.0, 10.0).unwrap();
        let c = s.add_node("c2", Tier::Core, 900.0, 1.0).unwrap();
        s.add_link(e, t, 600.0, 1.0).unwrap();
        s.add_link(t, c, 600.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        // One VNF of size 10, root link of size 2.
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(1, 10.0, 2.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    /// A hand-built plan: class (app0, e0) with one column hosting the
    /// VNF on c2, budget `budget` demand units.
    fn plan_on_core(s: &SubstrateNetwork, apps: &AppSet, budget: f64) -> Plan {
        let class = ClassId::new(AppId(0), NodeId(0));
        let vnet = apps.vnet(AppId(0));
        let embedding =
            Embedding::new(vec![NodeId(0), NodeId(2)], vec![vec![LinkId(0), LinkId(1)]]);
        let policy = PlacementPolicy::default();
        assert!(embedding.validate(vnet, s, &policy).is_ok());
        let footprint = embedding.footprint(vnet, s, &policy);
        let unit_cost = footprint.cost(s);
        let mut plan = Plan::empty();
        plan.insert(ClassPlan {
            class,
            expected_demand: budget,
            rejected_fraction: 0.0,
            columns: vec![PlannedColumn {
                embedding,
                footprint,
                share: 1.0,
                budget,
                unit_cost,
            }],
        });
        plan
    }

    fn req(id: u64, t: Slot, dur: Slot, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival: t,
            duration: dur,
            ingress: NodeId(0),
            app: AppId(0),
            demand,
        }
    }

    #[test]
    fn planned_requests_follow_the_plan() {
        let (s, apps) = world();
        let plan = plan_on_core(&s, &apps, 10.0);
        let mut olive = Olive::new(
            s.clone(),
            apps,
            PlacementPolicy::default(),
            plan,
            OliveConfig::default(),
        );
        let out = olive.process_slot(0, &[], &[req(0, 0, 5, 4.0)]);
        assert_eq!(out.accepted.len(), 1);
        assert!(olive.is_planned(RequestId(0)));
        // Load lands on c2 per the plan column (4 demand × β 10).
        assert_eq!(olive.loads().node_load(NodeId(2)), 40.0);
        assert_eq!(olive.loads().node_load(NodeId(0)), 0.0);
        assert_eq!(olive.stats().planned, 1);
    }

    #[test]
    fn departure_restores_plan_budget() {
        let (s, apps) = world();
        let plan = plan_on_core(&s, &apps, 10.0);
        let mut olive = Olive::new(
            s,
            apps,
            PlacementPolicy::default(),
            plan,
            OliveConfig::default(),
        );
        let r = req(0, 0, 2, 8.0);
        olive.process_slot(0, &[], std::slice::from_ref(&r));
        let class = ClassId::new(AppId(0), NodeId(0));
        assert!((olive.plan_ledger().residual(class, 0) - 2.0).abs() < 1e-9);
        olive.process_slot(2, &[r], &[]);
        assert!((olive.plan_ledger().residual(class, 0) - 10.0).abs() < 1e-9);
        assert_eq!(olive.loads().node_load(NodeId(2)), 0.0);
    }

    #[test]
    fn exhausted_budget_falls_to_borrowing() {
        let (s, apps) = world();
        let plan = plan_on_core(&s, &apps, 10.0);
        let mut olive = Olive::new(
            s,
            apps,
            PlacementPolicy::default(),
            plan,
            OliveConfig::default(),
        );
        // First request eats 8 of 10 budget; second (demand 6) cannot
        // fully fit the plan but borrows (substrate has room).
        let out = olive.process_slot(0, &[], &[req(0, 0, 5, 8.0), req(1, 0, 5, 6.0)]);
        assert_eq!(out.accepted.len(), 2);
        assert!(olive.is_planned(RequestId(0)));
        assert!(!olive.is_planned(RequestId(1)));
        assert_eq!(olive.stats().borrowed, 1);
        // Borrowing does not consume plan budget.
        let class = ClassId::new(AppId(0), NodeId(0));
        assert!((olive.plan_ledger().residual(class, 0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn preemption_restores_guaranteed_share() {
        let (s, apps) = world();
        // Plan guarantees 80 demand units on c2 (β 10 ⇒ 800 of 900 CU).
        let plan = plan_on_core(&s, &apps, 80.0);
        let mut olive = Olive::new(
            s,
            apps,
            PlacementPolicy::default(),
            plan,
            OliveConfig::default(),
        );
        // Borrower: planned budget 80 exceeded by r0 (demand 85 > 80 →
        // partial fit, borrows 850 CU of c2).
        let out0 = olive.process_slot(0, &[], &[req(0, 0, 9, 85.0)]);
        assert_eq!(out0.accepted.len(), 1);
        assert!(!olive.is_planned(RequestId(0)));
        // Planned arrival (demand 20 → 200 CU on c2; only 50 CU left):
        // must preempt the borrower.
        let out1 = olive.process_slot(1, &[], &[req(1, 1, 9, 20.0)]);
        assert_eq!(out1.accepted, vec![RequestId(1)]);
        assert_eq!(out1.preempted, vec![RequestId(0)]);
        assert!(olive.is_planned(RequestId(1)));
        assert!(!olive.is_active(RequestId(0)));
        assert_eq!(olive.stats().preempted, 1);
    }

    #[test]
    fn planned_requests_are_never_preempted() {
        let (s, apps) = world();
        let plan = plan_on_core(&s, &apps, 80.0);
        let mut olive = Olive::new(
            s,
            apps,
            PlacementPolicy::default(),
            plan,
            OliveConfig::default(),
        );
        // Two planned allocations exhausting the budget and c2 capacity.
        let out = olive.process_slot(0, &[], &[req(0, 0, 9, 40.0), req(1, 0, 9, 40.0)]);
        assert_eq!(out.accepted.len(), 2);
        // A third planned-class request (no budget, c2 nearly full):
        // cannot preempt planned requests; greedy must find another host
        // or reject. Either way, the planned requests stay.
        let out2 = olive.process_slot(1, &[], &[req(2, 1, 9, 40.0)]);
        assert!(out2.preempted.is_empty());
        assert!(olive.is_active(RequestId(0)));
        assert!(olive.is_active(RequestId(1)));
    }

    #[test]
    fn greedy_fallback_when_no_plan() {
        let (s, apps) = world();
        let mut olive = Olive::new(
            s,
            apps,
            PlacementPolicy::default(),
            Plan::empty(),
            OliveConfig::default(),
        );
        let out = olive.process_slot(0, &[], &[req(0, 0, 5, 3.0)]);
        assert_eq!(out.accepted.len(), 1);
        assert!(!olive.is_planned(RequestId(0)));
        assert_eq!(olive.stats().greedy, 1);
    }

    #[test]
    fn rejection_when_capacity_exhausted() {
        let (s, apps) = world();
        let mut quickg = Olive::quickg(s, apps, PlacementPolicy::default());
        // Total node capacity 1300 CU; each request needs demand·10 CU.
        // 13 requests of demand 10 = 1300 CU fill everything.
        let arrivals: Vec<Request> = (0..20).map(|i| req(i, 0, 50, 10.0)).collect();
        let out = quickg.process_slot(0, &[], &arrivals);
        assert!(out.accepted.len() <= 13);
        assert!(!out.rejected.is_empty());
        assert!(quickg.loads().check_invariants());
    }

    #[test]
    fn quickg_has_no_plan_and_no_preemption() {
        let (s, apps) = world();
        let mut quickg = Olive::quickg(s, apps, PlacementPolicy::default());
        assert_eq!(quickg.name(), "QUICKG");
        assert!(quickg.plan().is_empty());
        let out = quickg.process_slot(0, &[], &[req(0, 0, 5, 3.0)]);
        assert_eq!(out.accepted.len(), 1);
        assert!(out.preempted.is_empty());
        assert_eq!(quickg.stats().planned, 0);
    }

    #[test]
    fn borrowing_disabled_ablation() {
        let (s, apps) = world();
        let plan = plan_on_core(&s, &apps, 10.0);
        let mut olive = Olive::new(
            s,
            apps,
            PlacementPolicy::default(),
            plan,
            OliveConfig {
                borrowing: false,
                ..OliveConfig::default()
            },
        );
        // Budget 10; request demand 12 cannot borrow — greedy picks the
        // cheapest feasible host instead.
        let out = olive.process_slot(0, &[], &[req(0, 0, 5, 12.0)]);
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(olive.stats().borrowed, 0);
        assert_eq!(olive.stats().greedy, 1);
    }

    #[test]
    fn duplicate_departures_are_harmless() {
        let (s, apps) = world();
        let mut olive = Olive::new(
            s,
            apps,
            PlacementPolicy::default(),
            Plan::empty(),
            OliveConfig::default(),
        );
        let r = req(0, 0, 2, 3.0);
        olive.process_slot(0, &[], std::slice::from_ref(&r));
        olive.process_slot(2, std::slice::from_ref(&r), &[]);
        olive.process_slot(3, &[r], &[]); // double departure: no-op
        assert!(olive.loads().check_invariants());
        assert_eq!(olive.loads().node_load(NodeId(2)), 0.0);
    }
}
