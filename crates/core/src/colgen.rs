//! PLAN-VNE solved by Dantzig-Wolfe column generation (§III-B).
//!
//! The arc formulation of Fig. 4 decomposes per class: constraints
//! (10)–(14) describe, for each aggregated request, the convex hull of
//! integral tree embeddings (plus the rejection quantiles). The master LP
//! therefore only needs the coupling capacity rows (15) and one convexity
//! row per class:
//!
//! ```text
//!   min  Σ_k d_k Σ_e cost_e λ_{k,e}  +  ψ Σ_k d_k Σ_p p · y_{k,p}
//!   s.t. Σ_k d_k Σ_e usage_e(s) λ_{k,e} ≤ cap(s)      ∀ element s
//!        Σ_e λ_{k,e} + Σ_p y_{k,p} = 1                 ∀ class k
//!        0 ≤ y_{k,p} ≤ 1/P,   λ ≥ 0
//! ```
//!
//! The pricing problem — a cheapest embedding under dual-adjusted element
//! costs `cost(s) − π_s` — is solved exactly by the tree-DP of
//! [`crate::pricing`]. The solution arrives directly as integral
//! embedding columns with weights: exactly the [`Plan`] OLIVE consumes.
//! The rejection quantiles implement the paper's water-filling: each
//! extra `1/P` of rejected demand costs progressively more (`p·ψ`), so
//! the optimizer spreads rejection evenly across classes instead of
//! starving one of them.

use std::collections::HashMap;

use vne_lp::problem::{Problem, Relation, RowId};
use vne_lp::simplex::{Simplex, SimplexOptions};
use vne_lp::solution::SolveStatus;
use vne_model::app::AppSet;
use vne_model::embedding::Embedding;
use vne_model::ids::ClassId;
use vne_model::policy::PlacementPolicy;
use vne_model::substrate::SubstrateNetwork;

use crate::aggregate::AggregateDemand;
use crate::plan::{ClassPlan, Plan, PlannedColumn};
use crate::pricing::{min_cost_embedding, ElementCosts};

/// Parameters of the PLAN-VNE solver.
#[derive(Debug, Clone)]
pub struct PlanVneConfig {
    /// Number of rejection quantiles `P` (the paper settles on 10).
    pub quantiles: usize,
    /// Base rejection penalty factor ψ.
    pub psi: f64,
    /// Maximum column-generation rounds.
    pub max_rounds: usize,
    /// Reduced-cost tolerance for accepting new columns.
    pub reduced_cost_tol: f64,
    /// Simplex options for the master LP.
    pub simplex: SimplexOptions,
}

impl PlanVneConfig {
    /// Default configuration with an explicit rejection penalty.
    pub fn new(psi: f64) -> Self {
        Self {
            quantiles: 10,
            psi,
            max_rounds: 200,
            reduced_cost_tol: 1e-6,
            simplex: SimplexOptions::default(),
        }
    }

    /// Overrides the quantile count (the Fig. 11 sensitivity study).
    pub fn with_quantiles(mut self, p: usize) -> Self {
        assert!(p >= 1, "need at least one quantile");
        self.quantiles = p;
        self
    }
}

/// Diagnostics of a PLAN-VNE solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSolveStats {
    /// Column-generation rounds executed.
    pub rounds: usize,
    /// Total embedding columns generated.
    pub columns: usize,
    /// Final master objective.
    pub objective: f64,
    /// Total simplex iterations across master solves.
    pub simplex_iterations: usize,
}

/// Solves PLAN-VNE and returns the plan.
///
/// Classes for which no feasible embedding exists (e.g. GPU applications
/// on a substrate without GPU sites) end up fully rejected: their
/// convexity is satisfied by the quantile variables alone.
pub fn solve_plan(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    policy: &PlacementPolicy,
    aggregate: &AggregateDemand,
    config: &PlanVneConfig,
) -> (Plan, PlanSolveStats) {
    solve_plan_with_columns(substrate, apps, policy, aggregate, config, &[])
}

/// [`solve_plan`] with warm-start columns (used by SLOTOFF, which
/// re-optimizes every slot and reuses the previous slot's embeddings to
/// cut pricing rounds).
pub fn solve_plan_with_columns(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    policy: &PlacementPolicy,
    aggregate: &AggregateDemand,
    config: &PlanVneConfig,
    warm: &[(ClassId, Embedding)],
) -> (Plan, PlanSolveStats) {
    let n_nodes = substrate.node_count();
    let n_links = substrate.link_count();
    let classes = aggregate.requests();
    let mut stats = PlanSolveStats {
        rounds: 0,
        columns: 0,
        objective: 0.0,
        simplex_iterations: 0,
    };
    if classes.is_empty() {
        return (Plan::empty(), stats);
    }
    assert!(config.quantiles >= 1, "need at least one quantile");

    // ---- Master problem skeleton: capacity rows + convexity rows +
    // quantile variables.
    let mut master = Problem::new();
    let node_rows: Vec<RowId> = substrate
        .nodes()
        .map(|(id, n)| master.add_row(format!("cap-{id}"), Relation::Le, n.capacity))
        .collect();
    let link_rows: Vec<RowId> = substrate
        .links()
        .map(|(id, l)| master.add_row(format!("cap-{id}"), Relation::Le, l.capacity))
        .collect();
    let conv_rows: Vec<RowId> = classes
        .iter()
        .map(|r| master.add_row(format!("conv-{}", r.class), Relation::Eq, 1.0))
        .collect();
    let p = config.quantiles;
    for (k, agg) in classes.iter().enumerate() {
        for q in 1..=p {
            let obj = config.psi * agg.demand * q as f64;
            let v = master.add_var(
                format!("rej-{}-q{}", agg.class, q),
                obj,
                0.0,
                1.0 / p as f64,
            );
            master.set_coeff(conv_rows[k], v, 1.0);
        }
    }
    let n_quantile_vars = classes.len() * p;

    // Registry of generated columns: structural index → (class idx, data).
    struct ColumnInfo {
        class_idx: usize,
        embedding: Embedding,
        unit_cost: f64,
    }
    let mut registry: Vec<ColumnInfo> = Vec::new();
    let mut seen: HashMap<(usize, Embedding), ()> = HashMap::new();

    // Warm-start columns go straight into the master before the first
    // solve (deduplicated, invalid classes skipped).
    let class_index: HashMap<ClassId, usize> = classes
        .iter()
        .enumerate()
        .map(|(k, r)| (r.class, k))
        .collect();
    for (class, embedding) in warm {
        let Some(&k) = class_index.get(class) else {
            continue;
        };
        if seen.contains_key(&(k, embedding.clone())) {
            continue;
        }
        let agg = &classes[k];
        let vnet = apps.vnet(agg.class.app);
        if embedding.validate(vnet, substrate, policy).is_err() {
            continue;
        }
        let footprint = embedding.footprint(vnet, substrate, policy);
        let unit_cost = footprint.cost(substrate);
        let mut coeffs: Vec<(RowId, f64)> = Vec::new();
        for &(node, x) in footprint.nodes() {
            coeffs.push((node_rows[node.index()], agg.demand * x));
        }
        for &(link, x) in footprint.links() {
            coeffs.push((link_rows[link.index()], agg.demand * x));
        }
        coeffs.push((conv_rows[k], 1.0));
        master.add_var_with_column(
            format!("warm-{class}"),
            agg.demand * unit_cost,
            0.0,
            f64::INFINITY,
            &coeffs,
        );
        seen.insert((k, embedding.clone()), ());
        registry.push(ColumnInfo {
            class_idx: k,
            embedding: embedding.clone(),
            unit_cost,
        });
    }

    let mut simplex = Simplex::with_options(&master, config.simplex.clone());
    let mut sol = simplex.solve();
    stats.simplex_iterations += sol.iterations;
    debug_assert_eq!(sol.status, SolveStatus::Optimal);

    for round in 0..config.max_rounds {
        stats.rounds = round + 1;
        let duals = simplex.duals();
        let node_duals = &duals[..n_nodes];
        let link_duals = &duals[n_nodes..n_nodes + n_links];
        let adjusted = ElementCosts::from_duals(substrate, node_duals, link_duals);

        let mut added = 0usize;
        for (k, agg) in classes.iter().enumerate() {
            let mu = duals[n_nodes + n_links + k];
            let vnet = apps.vnet(agg.class.app);
            let Some((embedding, adj_cost)) =
                min_cost_embedding(substrate, vnet, policy, agg.class.ingress, &adjusted, None)
            else {
                continue;
            };
            let reduced = agg.demand * adj_cost - mu;
            if reduced >= -config.reduced_cost_tol {
                continue;
            }
            if seen.contains_key(&(k, embedding.clone())) {
                continue;
            }
            let footprint = embedding.footprint(vnet, substrate, policy);
            let unit_cost = footprint.cost(substrate);
            // Column coefficients: d_k · usage on capacity rows, 1 on the
            // class convexity row.
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for &(node, x) in footprint.nodes() {
                coeffs.push((node_rows[node.index()].0, agg.demand * x));
            }
            for &(link, x) in footprint.links() {
                coeffs.push((link_rows[link.index()].0, agg.demand * x));
            }
            coeffs.push((conv_rows[k].0, 1.0));
            simplex.add_column(agg.demand * unit_cost, 0.0, f64::INFINITY, &coeffs);
            seen.insert((k, embedding.clone()), ());
            registry.push(ColumnInfo {
                class_idx: k,
                embedding,
                unit_cost,
            });
            added += 1;
        }
        if added == 0 {
            break;
        }
        sol = simplex.reoptimize();
        stats.simplex_iterations += sol.iterations;
        debug_assert_eq!(sol.status, SolveStatus::Optimal);
    }
    stats.columns = registry.len();
    stats.objective = sol.objective;

    // ---- Extract the plan.
    let values = simplex.values();
    let mut per_class_columns: Vec<Vec<PlannedColumn>> = vec![Vec::new(); classes.len()];
    for (i, info) in registry.iter().enumerate() {
        let share = values[n_quantile_vars + i];
        if share <= 1e-9 {
            continue;
        }
        let agg = &classes[info.class_idx];
        let vnet = apps.vnet(agg.class.app);
        let footprint = info.embedding.footprint(vnet, substrate, policy);
        per_class_columns[info.class_idx].push(PlannedColumn {
            embedding: info.embedding.clone(),
            footprint,
            share,
            budget: share * agg.demand,
            unit_cost: info.unit_cost,
        });
    }

    let mut plan = Plan::empty();
    plan.objective = sol.objective;
    for (k, agg) in classes.iter().enumerate() {
        let rejected: f64 = (0..p).map(|q| values[k * p + q]).sum();
        let mut columns = std::mem::take(&mut per_class_columns[k]);
        columns.sort_by(|a, b| {
            a.unit_cost
                .partial_cmp(&b.unit_cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        plan.insert(ClassPlan {
            class: agg.class,
            expected_demand: agg.demand,
            rejected_fraction: rejected.clamp(0.0, 1.0),
            columns,
        });
    }
    (plan, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vne_model::app::{shapes, AppShape};
    use vne_model::ids::{AppId, NodeId};
    use vne_model::substrate::Tier;

    /// e0 - t1 - c2 line with small capacities for plan tests.
    fn small_world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let t = s.add_node("t1", Tier::Transport, 300.0, 10.0).unwrap();
        let c = s.add_node("c2", Tier::Core, 900.0, 1.0).unwrap();
        s.add_link(e, t, 200.0, 1.0).unwrap();
        s.add_link(t, c, 600.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(2, 10.0, 2.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn aggregate_of(demand: f64) -> AggregateDemand {
        let mut m = BTreeMap::new();
        m.insert(ClassId::new(AppId(0), NodeId(0)), demand);
        AggregateDemand::from_demands(&m)
    }

    #[test]
    fn underloaded_plan_allocates_everything() {
        let (s, apps) = small_world();
        let policy = PlacementPolicy::default();
        // Demand 5: footprint 5·20 = 100 node CU total; fits easily.
        let (plan, stats) = solve_plan(
            &s,
            &apps,
            &policy,
            &aggregate_of(5.0),
            &PlanVneConfig::new(1e4),
        );
        let cp = plan.class(ClassId::new(AppId(0), NodeId(0))).unwrap();
        assert!(
            cp.rejected_fraction < 1e-6,
            "rejected {}",
            cp.rejected_fraction
        );
        assert!(!cp.columns.is_empty());
        let total_share: f64 = cp.columns.iter().map(|c| c.share).sum();
        assert!((total_share - 1.0).abs() < 1e-6);
        assert!(stats.columns >= 1);
        // Guaranteed demand equals expected demand.
        assert!((cp.guaranteed_demand() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn plan_prefers_cheap_nodes_under_low_psi_pressure() {
        let (s, apps) = small_world();
        let policy = PlacementPolicy::default();
        let (plan, _) = solve_plan(
            &s,
            &apps,
            &policy,
            &aggregate_of(5.0),
            &PlanVneConfig::new(1e4),
        );
        let cp = plan.class(ClassId::new(AppId(0), NodeId(0))).unwrap();
        // The cheapest embedding hosts both VNFs on c2 (cost 1/CU).
        let best = &cp.columns[0];
        assert_eq!(best.embedding.node(vne_model::ids::VnodeId(1)), NodeId(2));
        assert_eq!(best.embedding.node(vne_model::ids::VnodeId(2)), NodeId(2));
    }

    #[test]
    fn overloaded_plan_rejects_excess() {
        let (s, apps) = small_world();
        let policy = PlacementPolicy::default();
        // Demand 100 ⇒ node need 2000 CU ≫ 1300 total: some rejection.
        let (plan, _) = solve_plan(
            &s,
            &apps,
            &policy,
            &aggregate_of(100.0),
            &PlanVneConfig::new(1e4),
        );
        let cp = plan.class(ClassId::new(AppId(0), NodeId(0))).unwrap();
        assert!(
            cp.rejected_fraction > 0.2,
            "rejected {}",
            cp.rejected_fraction
        );
        assert!(cp.rejected_fraction < 1.0);
        // Allocated fraction + rejected fraction = 1.
        let total_share: f64 = cp.columns.iter().map(|c| c.share).sum();
        assert!((total_share + cp.rejected_fraction - 1.0).abs() < 1e-6);
    }

    #[test]
    fn plan_respects_capacities() {
        let (s, apps) = small_world();
        let policy = PlacementPolicy::default();
        let (plan, _) = solve_plan(
            &s,
            &apps,
            &policy,
            &aggregate_of(100.0),
            &PlanVneConfig::new(1e4),
        );
        // Aggregate planned load per element must fit capacities.
        let mut node_load = vec![0.0; s.node_count()];
        let mut link_load = vec![0.0; s.link_count()];
        for cp in plan.iter() {
            for col in &cp.columns {
                for &(n, x) in col.footprint.nodes() {
                    node_load[n.index()] += x * col.budget;
                }
                for &(l, x) in col.footprint.links() {
                    link_load[l.index()] += x * col.budget;
                }
            }
        }
        for (id, n) in s.nodes() {
            assert!(
                node_load[id.index()] <= n.capacity * (1.0 + 1e-6),
                "node {id} overloaded: {} > {}",
                node_load[id.index()],
                n.capacity
            );
        }
        for (id, l) in s.links() {
            assert!(link_load[id.index()] <= l.capacity * (1.0 + 1e-6));
        }
    }

    #[test]
    fn quantiles_balance_rejection_between_classes() {
        // Two classes compete for one small node; with P = 10 both should
        // be partially served rather than one fully rejected.
        let mut s = SubstrateNetwork::new("tiny");
        let e0 = s.add_node("e0", Tier::Edge, 200.0, 50.0).unwrap();
        let e1 = s.add_node("e1", Tier::Edge, 200.0, 50.0).unwrap();
        let c = s.add_node("c", Tier::Core, 400.0, 1.0).unwrap();
        s.add_link(e0, c, 1e6, 1.0).unwrap();
        s.add_link(e1, c, 1e6, 1.0).unwrap();
        let mut apps = AppSet::new();
        // One VNF of size 1, link size ~0: must go somewhere.
        apps.push(
            "f",
            AppShape::Chain,
            shapes::uniform_chain(1, 1.0, 0.0).unwrap(),
        )
        .unwrap();
        // Total node capacity 800 CU vs total demand 1400 ⇒ ~43% of the
        // demand must be rejected; the quantiles should split that burden
        // evenly between the two classes.
        let mut m = BTreeMap::new();
        m.insert(ClassId::new(AppId(0), NodeId(0)), 700.0);
        m.insert(ClassId::new(AppId(0), NodeId(1)), 700.0);
        let agg = AggregateDemand::from_demands(&m);
        let policy = PlacementPolicy::default();
        let (plan, _) = solve_plan(&s, &apps, &policy, &agg, &PlanVneConfig::new(1e4));
        let r0 = plan
            .class(ClassId::new(AppId(0), NodeId(0)))
            .unwrap()
            .rejected_fraction;
        let r1 = plan
            .class(ClassId::new(AppId(0), NodeId(1)))
            .unwrap()
            .rejected_fraction;
        // Each class must keep some allocation and some rejection, and
        // the water-filling keeps the two balanced.
        assert!(r0 > 0.1 && r1 > 0.1, "r0 {r0} r1 {r1}");
        assert!(r0 < 0.9 && r1 < 0.9, "r0 {r0} r1 {r1}");
        assert!((r0 - r1).abs() < 0.15, "unbalanced: r0 {r0} r1 {r1}");
    }

    #[test]
    fn single_quantile_permits_starvation_pressure() {
        // With P = 1 the rejection cost is linear, so the solver is free
        // to fully reject one class; with P = 10 rejection is spread.
        // We only assert the P = 10 balance is no worse than P = 1.
        let (s, apps) = small_world();
        let policy = PlacementPolicy::default();
        let agg = aggregate_of(100.0);
        let (plan1, _) = solve_plan(
            &s,
            &apps,
            &policy,
            &agg,
            &PlanVneConfig::new(1e4).with_quantiles(1),
        );
        let (plan10, _) = solve_plan(
            &s,
            &apps,
            &policy,
            &agg,
            &PlanVneConfig::new(1e4).with_quantiles(10),
        );
        let r1 = plan1.planned_rejection_fraction();
        let r10 = plan10.planned_rejection_fraction();
        // Same single class: overall rejected fraction should be nearly
        // identical (same capacity), P only changes the *distribution*.
        assert!((r1 - r10).abs() < 0.05, "r1 {r1} r10 {r10}");
    }

    #[test]
    fn infeasible_class_is_fully_rejected() {
        // GPU app with no GPU nodes anywhere.
        let (s, _) = small_world();
        let mut apps = AppSet::new();
        apps.push(
            "gpu",
            AppShape::Gpu,
            shapes::gpu_chain(2, 10.0, 2.0, 0).unwrap(),
        )
        .unwrap();
        let policy = PlacementPolicy::default();
        let (plan, _) = solve_plan(
            &s,
            &apps,
            &policy,
            &aggregate_of(5.0),
            &PlanVneConfig::new(1e4),
        );
        let cp = plan.class(ClassId::new(AppId(0), NodeId(0))).unwrap();
        assert!((cp.rejected_fraction - 1.0).abs() < 1e-6);
        assert!(cp.columns.is_empty());
        assert!(cp.guaranteed_demand().abs() < 1e-9);
    }

    #[test]
    fn empty_aggregate_gives_empty_plan() {
        let (s, apps) = small_world();
        let policy = PlacementPolicy::default();
        let (plan, stats) = solve_plan(
            &s,
            &apps,
            &policy,
            &AggregateDemand::default(),
            &PlanVneConfig::new(1e4),
        );
        assert!(plan.is_empty());
        assert_eq!(stats.columns, 0);
    }
}
