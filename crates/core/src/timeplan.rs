//! Time-varying plans (the paper's §VI future-work extension).
//!
//! The base OLIVE plan is time-independent: one expected demand per
//! class, estimated over the whole history. When demand has a known
//! cyclic structure (e.g. commuter traffic alternating between
//! residential and business districts), a single plan over-provisions
//! both phases. A [`TimeVaryingPlan`] holds one PLAN-VNE solution per
//! *period* of a cycle; [`TimedOlive`] swaps the active plan at period
//! boundaries (carried-over allocations are demoted to borrowers, so the
//! incoming period's guarantees start intact).

use rand::Rng;
use vne_model::app::AppSet;
use vne_model::load::LoadLedger;
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot};
use vne_model::substrate::SubstrateNetwork;
use vne_workload::estimator::{DemandEstimator, ExactEstimator};
use vne_workload::history::ClassDemandSeries;

use crate::aggregate::{AggregateDemand, AggregationConfig};
use crate::algorithm::{OnlineAlgorithm, SlotOutcome};
use crate::colgen::{solve_plan, PlanVneConfig};
use crate::olive::{Olive, OliveConfig};
use crate::plan::Plan;

/// A cyclic schedule of plans: period `i` covers slots
/// `[i·period_length, (i+1)·period_length)` modulo the cycle.
#[derive(Debug, Clone)]
pub struct TimeVaryingPlan {
    period_length: Slot,
    plans: Vec<Plan>,
}

impl TimeVaryingPlan {
    /// Creates a schedule from explicit per-period plans.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty or `period_length == 0`.
    pub fn new(period_length: Slot, plans: Vec<Plan>) -> Self {
        assert!(period_length > 0, "period length must be positive");
        assert!(!plans.is_empty(), "need at least one plan");
        Self {
            period_length,
            plans,
        }
    }

    /// Number of periods in the cycle.
    pub fn periods(&self) -> usize {
        self.plans.len()
    }

    /// Length of one period in slots.
    pub fn period_length(&self) -> Slot {
        self.period_length
    }

    /// The period index active at slot `t`.
    pub fn period_at(&self, t: Slot) -> usize {
        ((t / self.period_length) as usize) % self.plans.len()
    }

    /// The plan active at slot `t`.
    pub fn plan_at(&self, t: Slot) -> &Plan {
        &self.plans[self.period_at(t)]
    }

    /// Builds a schedule from a history trace by slicing the history into
    /// phase-aligned periods and solving PLAN-VNE per phase: slot `t` of
    /// the history contributes to phase `(t / period_length) % periods`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_history<R: Rng + ?Sized>(
        substrate: &SubstrateNetwork,
        apps: &AppSet,
        policy: &PlacementPolicy,
        history: &[Request],
        history_slots: Slot,
        period_length: Slot,
        periods: usize,
        plan_config: &PlanVneConfig,
        aggregation: &AggregationConfig,
        rng: &mut R,
    ) -> Self {
        let series = ClassDemandSeries::from_requests(history, history_slots);
        Self::from_series(
            substrate,
            apps,
            policy,
            &series,
            period_length,
            periods,
            plan_config,
            aggregation,
            rng,
        )
    }

    /// Builds a schedule from a history *stream*, folding the slot
    /// events through an [`ExactEstimator`] — the same estimator that
    /// drives single-plan construction — before phase slicing. Nothing
    /// on this path pre-collects the trace.
    #[allow(clippy::too_many_arguments)]
    pub fn from_stream<I, R>(
        substrate: &SubstrateNetwork,
        apps: &AppSet,
        policy: &PlacementPolicy,
        events: I,
        history_slots: Slot,
        period_length: Slot,
        periods: usize,
        plan_config: &PlanVneConfig,
        aggregation: &AggregationConfig,
        rng: &mut R,
    ) -> Self
    where
        I: IntoIterator<Item = vne_model::request::SlotEvents>,
        R: Rng + ?Sized,
    {
        let mut estimator = ExactEstimator::new(history_slots, *aggregation);
        for ev in events {
            estimator.observe_slot(&ev);
        }
        Self::from_series(
            substrate,
            apps,
            policy,
            estimator.series(),
            period_length,
            periods,
            plan_config,
            aggregation,
            rng,
        )
    }

    /// The shared core of the history constructors: slice the demand
    /// series into phases, aggregate each phase's sub-series, solve
    /// PLAN-VNE per phase.
    #[allow(clippy::too_many_arguments)]
    fn from_series<R: Rng + ?Sized>(
        substrate: &SubstrateNetwork,
        apps: &AppSet,
        policy: &PlacementPolicy,
        series: &ClassDemandSeries,
        period_length: Slot,
        periods: usize,
        plan_config: &PlanVneConfig,
        aggregation: &AggregationConfig,
        rng: &mut R,
    ) -> Self {
        assert!(periods >= 1, "need at least one period");
        let mut plans = Vec::with_capacity(periods);
        for phase in 0..periods {
            let phase_series = series.phase_slice(period_length, periods, phase);
            let aggregate = if phase_series.slots() == 0 {
                AggregateDemand::default()
            } else {
                AggregateDemand::from_demands(&phase_series.expected_demands(
                    aggregation.alpha,
                    aggregation.bootstrap_replicates,
                    rng,
                ))
            };
            let (plan, _) = solve_plan(substrate, apps, policy, &aggregate, plan_config);
            plans.push(plan);
        }
        Self::new(period_length, plans)
    }
}

/// OLIVE with a time-varying plan: at every period boundary the active
/// plan is swapped in via [`Olive::adopt_plan`].
#[derive(Debug, Clone)]
pub struct TimedOlive {
    inner: Olive,
    schedule: TimeVaryingPlan,
    current_period: usize,
}

impl TimedOlive {
    /// Creates a timed OLIVE starting in period 0.
    pub fn new(
        substrate: SubstrateNetwork,
        apps: AppSet,
        policy: PlacementPolicy,
        schedule: TimeVaryingPlan,
        config: OliveConfig,
    ) -> Self {
        let first = schedule.plan_at(0).clone();
        Self {
            inner: Olive::new(substrate, apps, policy, first, config),
            schedule,
            current_period: 0,
        }
    }

    /// The underlying OLIVE instance.
    pub fn inner(&self) -> &Olive {
        &self.inner
    }

    /// The period currently in force.
    pub fn current_period(&self) -> usize {
        self.current_period
    }
}

impl OnlineAlgorithm for TimedOlive {
    fn name(&self) -> &str {
        "OLIVE-T"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn process_slot(
        &mut self,
        t: Slot,
        departures: &[Request],
        arrivals: &[Request],
    ) -> SlotOutcome {
        let period = self.schedule.period_at(t);
        if period != self.current_period {
            self.inner.adopt_plan(self.schedule.plan_at(t).clone());
            self.current_period = period;
        }
        self.inner.process_slot(t, departures, arrivals)
    }

    fn loads(&self) -> &LoadLedger {
        self.inner.loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vne_model::app::{shapes, AppShape};
    use vne_model::ids::{AppId, ClassId, NodeId, RequestId};
    use vne_model::substrate::Tier;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("pair");
        let e0 = s.add_node("e0", Tier::Edge, 500.0, 50.0).unwrap();
        let e1 = s.add_node("e1", Tier::Edge, 500.0, 50.0).unwrap();
        let c = s.add_node("c", Tier::Core, 400.0, 1.0).unwrap();
        s.add_link(e0, c, 5000.0, 1.0).unwrap();
        s.add_link(e1, c, 5000.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "f",
            AppShape::Chain,
            shapes::uniform_chain(1, 10.0, 1.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn plan_for(s: &SubstrateNetwork, apps: &AppSet, node: u32, demand: f64) -> Plan {
        let mut m = BTreeMap::new();
        m.insert(ClassId::new(AppId(0), NodeId(node)), demand);
        let (plan, _) = solve_plan(
            s,
            apps,
            &PlacementPolicy::default(),
            &AggregateDemand::from_demands(&m),
            &PlanVneConfig::new(1e4),
        );
        plan
    }

    fn req(id: u64, t: Slot, node: u32, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival: t,
            duration: 5,
            ingress: NodeId(node),
            app: AppId(0),
            demand,
        }
    }

    #[test]
    fn schedule_cycles_through_periods() {
        let (s, apps) = world();
        let p0 = plan_for(&s, &apps, 0, 30.0);
        let p1 = plan_for(&s, &apps, 1, 30.0);
        let tv = TimeVaryingPlan::new(10, vec![p0, p1]);
        assert_eq!(tv.periods(), 2);
        assert_eq!(tv.period_at(0), 0);
        assert_eq!(tv.period_at(9), 0);
        assert_eq!(tv.period_at(10), 1);
        assert_eq!(tv.period_at(25), 0); // wraps around
    }

    #[test]
    fn timed_olive_swaps_plans_at_boundaries() {
        let (s, apps) = world();
        let p0 = plan_for(&s, &apps, 0, 30.0);
        let p1 = plan_for(&s, &apps, 1, 30.0);
        let tv = TimeVaryingPlan::new(10, vec![p0, p1]);
        let mut alg = TimedOlive::new(
            s,
            apps,
            PlacementPolicy::default(),
            tv,
            OliveConfig::default(),
        );
        assert_eq!(alg.current_period(), 0);
        // Slot 0: class (app0, e0) is planned in period 0.
        let out = alg.process_slot(0, &[], &[req(0, 0, 0, 5.0)]);
        assert_eq!(out.accepted.len(), 1);
        assert!(alg.inner().is_planned(RequestId(0)));
        // Slot 10: period 1 takes over; the old allocation is demoted.
        let out = alg.process_slot(10, &[], &[req(1, 10, 1, 5.0)]);
        assert_eq!(alg.current_period(), 1);
        assert_eq!(out.accepted.len(), 1);
        assert!(alg.inner().is_planned(RequestId(1)));
        assert!(!alg.inner().is_planned(RequestId(0)));
    }

    #[test]
    fn from_history_builds_phase_specific_plans() {
        // Demand alternates between e0 (even periods) and e1 (odd):
        // the schedule should guarantee e0's class in phase 0 and e1's
        // in phase 1.
        let (s, apps) = world();
        let mut history = Vec::new();
        let mut id = 0;
        for t in 0..200u32 {
            let phase = (t / 10) % 2;
            let node = if phase == 0 { 0 } else { 1 };
            for _ in 0..3 {
                history.push(req(id, t, node, 8.0));
                id += 1;
            }
        }
        let mut rng = vne_workload::rng::SeededRng::new(1);
        let tv = TimeVaryingPlan::from_history(
            &s,
            &apps,
            &PlacementPolicy::default(),
            &history,
            200,
            10,
            2,
            &PlanVneConfig::new(1e4),
            &AggregationConfig {
                alpha: 80.0,
                bootstrap_replicates: 20,
            },
            &mut rng,
        );
        let c0 = ClassId::new(AppId(0), NodeId(0));
        let c1 = ClassId::new(AppId(0), NodeId(1));
        let g0_phase0 = tv
            .plan_at(0)
            .class(c0)
            .map(|c| c.guaranteed_demand())
            .unwrap_or(0.0);
        let g1_phase1 = tv
            .plan_at(10)
            .class(c1)
            .map(|c| c.guaranteed_demand())
            .unwrap_or(0.0);
        assert!(g0_phase0 > 20.0, "phase-0 guarantee for e0: {g0_phase0}");
        assert!(g1_phase1 > 20.0, "phase-1 guarantee for e1: {g1_phase1}");
        // Cross-phase demand is residual (active requests spill a few
        // slots across the boundary).
        let g0_phase1 = tv
            .plan_at(10)
            .class(c0)
            .map(|c| c.guaranteed_demand())
            .unwrap_or(0.0);
        assert!(
            g0_phase1 < g0_phase0 / 2.0,
            "cross-phase: {g0_phase1} vs {g0_phase0}"
        );
    }

    #[test]
    fn from_stream_matches_from_history() {
        let (s, apps) = world();
        let mut history = Vec::new();
        for (id, t) in (0..100u32).enumerate() {
            let node = if (t / 10) % 2 == 0 { 0 } else { 1 };
            history.push(req(id as u64, t, node, 6.0));
        }
        let events: Vec<vne_model::request::SlotEvents> = (0..100)
            .map(|t| vne_model::request::SlotEvents {
                slot: t,
                arrivals: history.iter().filter(|r| r.arrival == t).cloned().collect(),
                churn: Vec::new(),
            })
            .collect();
        let aggregation = AggregationConfig {
            alpha: 80.0,
            bootstrap_replicates: 15,
        };
        let batch = TimeVaryingPlan::from_history(
            &s,
            &apps,
            &PlacementPolicy::default(),
            &history,
            100,
            10,
            2,
            &PlanVneConfig::new(1e4),
            &aggregation,
            &mut vne_workload::rng::SeededRng::new(4),
        );
        let streamed = TimeVaryingPlan::from_stream(
            &s,
            &apps,
            &PlacementPolicy::default(),
            events,
            100,
            10,
            2,
            &PlanVneConfig::new(1e4),
            &aggregation,
            &mut vne_workload::rng::SeededRng::new(4),
        );
        assert_eq!(batch.periods(), streamed.periods());
        for t in [0, 10] {
            for node in [0u32, 1] {
                let c = ClassId::new(AppId(0), NodeId(node));
                let demand = |tv: &TimeVaryingPlan| {
                    tv.plan_at(t)
                        .class(c)
                        .map(|p| p.guaranteed_demand())
                        .unwrap_or(0.0)
                };
                assert_eq!(
                    demand(&batch).to_bits(),
                    demand(&streamed).to_bits(),
                    "slot {t}, node {node}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one plan")]
    fn empty_schedule_rejected() {
        TimeVaryingPlan::new(10, vec![]);
    }
}
