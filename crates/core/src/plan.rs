//! The embedding plan `y` and its residual ledger (Eqs. 17 & 19).
//!
//! A plan assigns every class a set of *integral embedding columns* with
//! fractional weights — exactly the Dantzig-Wolfe representation of the
//! PLAN-VNE solution. The weights times the expected class demand are
//! *budgets* in demand units; OLIVE's residual plan (`Res(y, t, x)`) is
//! the per-column budget minus the demand of active planned allocations,
//! tracked by [`PlanLedger`].

use std::collections::BTreeMap;

use vne_model::embedding::{Embedding, Footprint};
use vne_model::ids::ClassId;
use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};

/// Small tolerance for budget arithmetic.
const BUDGET_EPS: f64 = 1e-9;

/// One planned embedding column of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedColumn {
    /// The integral embedding (unit-demand shape).
    pub embedding: Embedding,
    /// The embedding's per-unit-demand footprint.
    pub footprint: Footprint,
    /// The fraction `λ_e ∈ (0, 1]` of the class demand routed here.
    pub share: f64,
    /// The budget in demand units: `λ_e · d(r̃)`.
    pub budget: f64,
    /// Real resource cost per unit demand per slot.
    pub unit_cost: f64,
}

/// The plan of one class `r̃`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPlan {
    /// The class.
    pub class: ClassId,
    /// Expected aggregated demand `d(r̃)` the plan was built for.
    pub expected_demand: f64,
    /// Fraction of the demand the plan rejects (`Σ_p y_p`).
    pub rejected_fraction: f64,
    /// The embedding columns, sorted by ascending unit cost.
    pub columns: Vec<PlannedColumn>,
}

impl ClassPlan {
    /// The guaranteed (planned) demand: `(1 − rejected) · d(r̃)` — the
    /// horizontal threshold of the paper's Fig. 12.
    pub fn guaranteed_demand(&self) -> f64 {
        (1.0 - self.rejected_fraction).max(0.0) * self.expected_demand
    }
}

/// A full embedding plan `y(R̃)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    classes: BTreeMap<ClassId, ClassPlan>,
    /// The PLAN-VNE objective value (resource + quantile rejection cost).
    pub objective: f64,
}

impl Plan {
    /// The empty plan (QUICKG runs OLIVE with this).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a class plan (replacing any existing one for the class).
    pub fn insert(&mut self, class_plan: ClassPlan) {
        self.classes.insert(class_plan.class, class_plan);
    }

    /// The plan of a class, if any.
    pub fn class(&self, class: ClassId) -> Option<&ClassPlan> {
        self.classes.get(&class)
    }

    /// Iterates over all class plans in class order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassPlan> {
        self.classes.values()
    }

    /// Number of planned classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the plan has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total number of embedding columns across classes.
    pub fn total_columns(&self) -> usize {
        self.classes.values().map(|c| c.columns.len()).sum()
    }

    /// Demand-weighted mean rejected fraction (plan-level rejection rate).
    pub fn planned_rejection_fraction(&self) -> f64 {
        let total: f64 = self.classes.values().map(|c| c.expected_demand).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.classes
            .values()
            .map(|c| c.rejected_fraction * c.expected_demand)
            .sum::<f64>()
            / total
    }
}

/// The residual plan `Res(y, t, x)` as per-column budget ledgers.
///
/// Planned allocations consume budget; departures of planned requests
/// release it (Eq. 17 counts only active `R_PLAN` requests). Non-planned
/// ("borrowed") allocations never touch the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanLedger {
    residual: BTreeMap<ClassId, Vec<f64>>,
    budgets: BTreeMap<ClassId, Vec<f64>>,
}

impl PlanLedger {
    /// Creates a fresh ledger with full budgets.
    pub fn new(plan: &Plan) -> Self {
        let budgets: BTreeMap<ClassId, Vec<f64>> = plan
            .iter()
            .map(|cp| (cp.class, cp.columns.iter().map(|c| c.budget).collect()))
            .collect();
        Self {
            residual: budgets.clone(),
            budgets,
        }
    }

    /// The residual budget of a column.
    pub fn residual(&self, class: ClassId, column: usize) -> f64 {
        self.residual
            .get(&class)
            .and_then(|v| v.get(column))
            .copied()
            .unwrap_or(0.0)
    }

    /// The column fully fitting `demand` with the lowest unit cost
    /// (columns are cost-sorted, so the first fitting index wins) —
    /// the `PLAN EMBED` full-fit test (Eq. 19).
    pub fn full_fit(&self, class: ClassId, demand: f64) -> Option<usize> {
        let residuals = self.residual.get(&class)?;
        residuals.iter().position(|&r| r + BUDGET_EPS >= demand)
    }

    /// Column indices with any positive residual, sorted by descending
    /// residual — the partial-fit ("borrowing") candidates (Alg. 2 l. 27).
    pub fn partial_candidates(&self, class: ClassId) -> Vec<usize> {
        let Some(residuals) = self.residual.get(&class) else {
            return Vec::new();
        };
        let mut idx: Vec<usize> = (0..residuals.len())
            .filter(|&i| residuals[i] > BUDGET_EPS)
            .collect();
        idx.sort_by(|&a, &b| {
            residuals[b]
                .partial_cmp(&residuals[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }

    /// Consumes budget for a planned allocation.
    pub fn consume(&mut self, class: ClassId, column: usize, demand: f64) {
        if let Some(v) = self.residual.get_mut(&class) {
            if let Some(r) = v.get_mut(column) {
                *r = (*r - demand).max(0.0);
            }
        }
    }

    /// Releases budget when a planned allocation departs (never exceeds
    /// the original budget).
    pub fn release(&mut self, class: ClassId, column: usize, demand: f64) {
        let cap = self
            .budgets
            .get(&class)
            .and_then(|v| v.get(column))
            .copied()
            .unwrap_or(0.0);
        if let Some(v) = self.residual.get_mut(&class) {
            if let Some(r) = v.get_mut(column) {
                *r = (*r + demand).min(cap);
            }
        }
    }

    /// The number of planned classes tracked.
    pub fn class_count(&self) -> usize {
        self.budgets.len()
    }

    /// Whether all residuals are within `[0, budget]` (test invariant).
    pub fn check_invariants(&self) -> bool {
        self.residual.iter().all(|(c, v)| {
            v.iter()
                .zip(&self.budgets[c])
                .all(|(&r, &b)| (-BUDGET_EPS..=b + BUDGET_EPS).contains(&r))
        })
    }
}

/// Checkpointing: both maps are serialized wholesale (BTreeMaps encode
/// in canonical key order). Restoring validates the class/column shape
/// against the ledger's current plan before replacing anything.
impl Snapshot for PlanLedger {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write(&self.residual);
        w.write(&self.budgets);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let residual: BTreeMap<ClassId, Vec<f64>> = r.read()?;
        let budgets: BTreeMap<ClassId, Vec<f64>> = r.read()?;
        r.finish()?;
        let shape = |m: &BTreeMap<ClassId, Vec<f64>>| -> Vec<(ClassId, usize)> {
            m.iter().map(|(&c, v)| (c, v.len())).collect()
        };
        if shape(&budgets) != shape(&self.budgets) || shape(&residual) != shape(&budgets) {
            return Err(StateError::Mismatch {
                expected: format!("plan ledger with {} classes", self.budgets.len()),
                found: format!("blob with {} classes", budgets.len()),
            });
        }
        self.residual = residual;
        self.budgets = budgets;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::ids::{AppId, NodeId};

    fn column(budget: f64, cost: f64) -> PlannedColumn {
        PlannedColumn {
            embedding: Embedding::new(vec![NodeId(0)], vec![]),
            footprint: Footprint::default(),
            share: budget / 10.0,
            budget,
            unit_cost: cost,
        }
    }

    fn plan_one_class() -> (Plan, ClassId) {
        let class = ClassId::new(AppId(0), NodeId(1));
        let mut plan = Plan::empty();
        plan.insert(ClassPlan {
            class,
            expected_demand: 10.0,
            rejected_fraction: 0.2,
            columns: vec![column(5.0, 1.0), column(3.0, 2.0)],
        });
        (plan, class)
    }

    #[test]
    fn guaranteed_demand() {
        let (plan, class) = plan_one_class();
        assert!((plan.class(class).unwrap().guaranteed_demand() - 8.0).abs() < 1e-12);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.total_columns(), 2);
        assert!((plan.planned_rejection_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_plan() {
        let plan = Plan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.planned_rejection_fraction(), 0.0);
        let ledger = PlanLedger::new(&plan);
        assert_eq!(
            ledger.full_fit(ClassId::new(AppId(0), NodeId(0)), 1.0),
            None
        );
        assert!(ledger
            .partial_candidates(ClassId::new(AppId(0), NodeId(0)))
            .is_empty());
    }

    #[test]
    fn full_fit_prefers_cheapest_column() {
        let (plan, class) = plan_one_class();
        let ledger = PlanLedger::new(&plan);
        // Demand 2 fits both; column 0 (cheaper) wins.
        assert_eq!(ledger.full_fit(class, 2.0), Some(0));
        // Demand 4 only fits column 0.
        assert_eq!(ledger.full_fit(class, 4.0), Some(0));
        // Demand 6 fits nothing.
        assert_eq!(ledger.full_fit(class, 6.0), None);
    }

    #[test]
    fn consume_release_cycle() {
        let (plan, class) = plan_one_class();
        let mut ledger = PlanLedger::new(&plan);
        ledger.consume(class, 0, 4.0);
        assert!((ledger.residual(class, 0) - 1.0).abs() < 1e-12);
        assert_eq!(ledger.full_fit(class, 2.0), Some(1));
        ledger.release(class, 0, 4.0);
        assert!((ledger.residual(class, 0) - 5.0).abs() < 1e-12);
        assert!(ledger.check_invariants());
    }

    #[test]
    fn release_never_exceeds_budget() {
        let (plan, class) = plan_one_class();
        let mut ledger = PlanLedger::new(&plan);
        ledger.release(class, 0, 100.0);
        assert!((ledger.residual(class, 0) - 5.0).abs() < 1e-12);
        assert!(ledger.check_invariants());
    }

    #[test]
    fn partial_candidates_sorted_by_residual() {
        let (plan, class) = plan_one_class();
        let mut ledger = PlanLedger::new(&plan);
        assert_eq!(ledger.partial_candidates(class), vec![0, 1]);
        ledger.consume(class, 0, 4.5); // residuals: 0.5 and 3.0
        assert_eq!(ledger.partial_candidates(class), vec![1, 0]);
        ledger.consume(class, 0, 0.5);
        assert_eq!(ledger.partial_candidates(class), vec![1]);
    }

    #[test]
    fn ledger_snapshot_roundtrips_and_validates() {
        let (plan, class) = plan_one_class();
        let mut ledger = PlanLedger::new(&plan);
        ledger.consume(class, 0, 4.0);
        ledger.consume(class, 1, 1.0);
        let blob = ledger.snapshot();
        let mut fresh = PlanLedger::new(&plan);
        fresh.restore(&blob).unwrap();
        assert_eq!(fresh, ledger);
        assert_eq!(fresh.snapshot(), blob);
        assert_eq!(fresh.class_count(), 1);
        // A ledger over a different plan shape rejects the blob.
        let mut empty = PlanLedger::new(&Plan::empty());
        assert!(matches!(
            empty.restore(&blob),
            Err(StateError::Mismatch { .. })
        ));
    }

    #[test]
    fn unknown_class_is_harmless() {
        let (plan, _) = plan_one_class();
        let mut ledger = PlanLedger::new(&plan);
        let ghost = ClassId::new(AppId(9), NodeId(9));
        assert_eq!(ledger.residual(ghost, 0), 0.0);
        ledger.consume(ghost, 0, 1.0);
        ledger.release(ghost, 0, 1.0);
        assert!(ledger.check_invariants());
    }
}
