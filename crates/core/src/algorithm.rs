//! The interface between online embedding algorithms and the simulator.
//!
//! All four algorithms of the paper's evaluation (OLIVE, QUICKG, FULLG,
//! SLOTOFF) process the simulation slot by slot: the driver hands each
//! algorithm the departures and the arrivals of the slot (arrivals in
//! order, as required by ON-VNE), and receives the acceptance decisions
//! plus any preemptions of previously accepted requests.

use vne_model::churn::EffectiveCapacities;
use vne_model::embedding::Footprint;
use vne_model::ids::RequestId;
use vne_model::load::LoadLedger;
use vne_model::request::{Request, Slot};
use vne_model::state::{StateBlob, StateError};

/// Decisions made by an algorithm during one slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotOutcome {
    /// Newly arrived requests that were accepted (allocated).
    pub accepted: Vec<RequestId>,
    /// Newly arrived requests that were rejected.
    pub rejected: Vec<RequestId>,
    /// Previously accepted requests evicted this slot (they incur the
    /// rejection cost, like rejected requests).
    pub preempted: Vec<RequestId>,
}

impl SlotOutcome {
    /// Merges another outcome into this one.
    pub fn extend(&mut self, other: SlotOutcome) {
        self.accepted.extend(other.accepted);
        self.rejected.extend(other.rejected);
        self.preempted.extend(other.preempted);
    }
}

/// An online VNE algorithm driven slot by slot.
///
/// The trait is object-safe: simulation drivers hold algorithms as
/// `Box<dyn OnlineAlgorithm>`, which is what lets third-party
/// algorithms be registered by name without touching the simulator
/// (see `vne-sim`'s algorithm registry). `Send` is a supertrait so the
/// engine's pipelined mode can run the algorithm stage on a worker
/// thread; algorithms are plain owned state, so this costs nothing.
pub trait OnlineAlgorithm: Send {
    /// A short display name (e.g. `"OLIVE"`).
    fn name(&self) -> &str;

    /// Typed self-access for drill-down inspection through a trait
    /// object (e.g. reading OLIVE's per-class planned/borrowed split
    /// from a per-slot observer). Implementations that want to expose
    /// their concrete state return `Some(self)`; the default hides it.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Processes one time slot: `departures` leave first (their resources
    /// are released), then `arrivals` are processed sequentially in the
    /// given order (the ON-VNE arrival order).
    ///
    /// Implementations must keep their internal [`LoadLedger`] feasible
    /// at all times.
    fn process_slot(
        &mut self,
        t: Slot,
        departures: &[Request],
        arrivals: &[Request],
    ) -> SlotOutcome;

    /// The current substrate load ledger (used for cost accounting).
    fn loads(&self) -> &LoadLedger;

    /// Applies substrate churn: replaces the algorithm's view of usable
    /// capacities with externally computed effective capacities.
    ///
    /// Called by the engine at the start of a slot, before that slot's
    /// departures/arrivals are handed to [`OnlineAlgorithm::process_slot`],
    /// and again after a checkpoint restore (the capacities are absolute,
    /// so re-application is idempotent). Loads are *not* touched here;
    /// the engine evicts stranded requests through the regular departure
    /// path. The default ignores churn (a static-substrate algorithm).
    fn apply_churn(&mut self, effective: &EffectiveCapacities) {
        let _ = effective;
    }

    /// The substrate footprint currently allocated to an active request,
    /// or `None` when unknown.
    ///
    /// The engine uses this to find which requests are stranded by a
    /// capacity loss. Algorithms that return `None` (the default)
    /// self-heal instead: the engine skips eviction and relies on the
    /// algorithm to restore feasibility on its next
    /// [`OnlineAlgorithm::process_slot`].
    fn footprint_of(&self, id: RequestId) -> Option<&Footprint> {
        let _ = id;
        None
    }

    /// Serializes the algorithm's *mutable* state for checkpointing
    /// (construction inputs — substrate, applications, plan — are not
    /// included; a resume rebuilds them deterministically first).
    /// Returns `None` when the algorithm does not support snapshots —
    /// the default, so third-party algorithms opt in explicitly. All
    /// four builtin algorithms implement [`vne_model::state::Snapshot`]
    /// and forward to it here.
    fn snapshot_state(&self) -> Option<StateBlob> {
        None
    }

    /// Restores state produced by [`OnlineAlgorithm::snapshot_state`]
    /// into a freshly constructed instance of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Unsupported`] by default; implementations
    /// return decode/mismatch errors for incompatible blobs.
    fn restore_state(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let _ = blob;
        Err(StateError::Unsupported(format!(
            "algorithm {}",
            self.name()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_extend_concatenates() {
        let mut a = SlotOutcome {
            accepted: vec![RequestId(1)],
            rejected: vec![],
            preempted: vec![RequestId(2)],
        };
        a.extend(SlotOutcome {
            accepted: vec![RequestId(3)],
            rejected: vec![RequestId(4)],
            preempted: vec![],
        });
        assert_eq!(a.accepted, vec![RequestId(1), RequestId(3)]);
        assert_eq!(a.rejected, vec![RequestId(4)]);
        assert_eq!(a.preempted, vec![RequestId(2)]);
    }
}
