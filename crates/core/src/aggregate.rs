//! Time-aggregation of the request history (§III-A, Eqs. 5–6).
//!
//! The history `R_HIST` is grouped by class `(application, ingress)` and
//! aggregated over time: the expected demand of a class is the
//! bootstrap-estimated `P̂_α` of its per-slot concurrent demand (α = 80
//! by default, trading peak coverage against over-provisioning). The
//! result is the input of PLAN-VNE.
//!
//! Aggregation is a *fold*: [`AggregateDemand::from_stream`] consumes a
//! slot-event stream through any
//! [`DemandEstimator`], so
//! the planning phase never materializes the history;
//! [`AggregateDemand::from_history`] is the batch wrapper over a
//! collected trace.

use std::collections::BTreeMap;

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use vne_model::ids::ClassId;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_workload::estimator::DemandEstimator;
use vne_workload::history::ClassDemandSeries;

pub use vne_workload::estimator::AggregationConfig;

/// One aggregated request `r̃_{a,v}` with its expected demand `d(r̃)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateRequest {
    /// The class `(a, v)`.
    pub class: ClassId,
    /// Expected aggregated demand `d(r̃)` (splittable in the plan).
    pub demand: f64,
}

/// The aggregated expected demand `R̃` for PLAN-VNE.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AggregateDemand {
    requests: Vec<AggregateRequest>,
}

impl AggregateDemand {
    /// Aggregates a request history over `slots` time slots (Eq. 5–6).
    ///
    /// Classes whose expected demand rounds to zero are dropped — they
    /// carry no plan and their requests fall through to the non-planned
    /// mechanisms online.
    pub fn from_history<R: Rng + ?Sized>(
        history: &[Request],
        slots: Slot,
        config: &AggregationConfig,
        rng: &mut R,
    ) -> Self {
        let series = ClassDemandSeries::from_requests(history, slots);
        let demands = series.expected_demands(config.alpha, config.bootstrap_replicates, rng);
        Self::from_demands(&demands)
    }

    /// Aggregates a history *stream* through a [`DemandEstimator`] —
    /// the planning input is folded one slot at a time, so nothing on
    /// this path materializes the trace. With the exact estimator the
    /// result is bit-identical to [`AggregateDemand::from_history`]
    /// over the collected stream; with a sketch estimator memory is
    /// `O(classes)` regardless of the horizon.
    pub fn from_stream<I>(
        events: I,
        estimator: &mut dyn DemandEstimator,
        rng: &mut dyn RngCore,
    ) -> Self
    where
        I: IntoIterator<Item = SlotEvents>,
    {
        for ev in events {
            estimator.observe_slot(&ev);
        }
        Self::from_demands(&estimator.finalize(rng))
    }

    /// Builds the aggregate from explicit per-class demands.
    pub fn from_demands(demands: &BTreeMap<ClassId, f64>) -> Self {
        let requests = demands
            .iter()
            .filter(|(_, &d)| d > 1e-9)
            .map(|(&class, &demand)| AggregateRequest { class, demand })
            .collect();
        Self { requests }
    }

    /// The aggregated requests, sorted by class.
    pub fn requests(&self) -> &[AggregateRequest] {
        &self.requests
    }

    /// Number of non-empty classes.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether no class has demand (the "empty plan" of QUICKG).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The expected demand of a class (0 if absent).
    pub fn demand(&self, class: ClassId) -> f64 {
        self.requests
            .binary_search_by_key(&class, |r| r.class)
            .map(|i| self.requests[i].demand)
            .unwrap_or(0.0)
    }

    /// Total expected demand over all classes.
    pub fn total_demand(&self) -> f64 {
        self.requests.iter().map(|r| r.demand).sum()
    }

    /// Returns a copy with all demands scaled by `factor` (used by the
    /// Fig. 13 "unexpected demand" study, where the plan is built for a
    /// lower utilization than the online trace).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            requests: self
                .requests
                .iter()
                .map(|r| AggregateRequest {
                    class: r.class,
                    demand: r.demand * factor,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::ids::{AppId, NodeId, RequestId};
    use vne_workload::rng::SeededRng;

    fn req(id: u64, arrival: Slot, duration: Slot, node: u32, app: u32, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival,
            duration,
            ingress: NodeId(node),
            app: AppId(app),
            demand,
        }
    }

    #[test]
    fn constant_demand_aggregates_exactly() {
        // One class with constant concurrent demand 8 over all slots.
        let history = vec![req(0, 0, 100, 1, 0, 8.0)];
        let mut rng = SeededRng::new(1);
        let agg =
            AggregateDemand::from_history(&history, 100, &AggregationConfig::default(), &mut rng);
        assert_eq!(agg.len(), 1);
        let c = ClassId::new(AppId(0), NodeId(1));
        assert!((agg.demand(c) - 8.0).abs() < 1e-9);
        assert!((agg.total_demand() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_sits_between_low_and_peak() {
        // Demand alternates: 10 for 80% of slots (req active), 0 for 20%.
        let mut history = Vec::new();
        for i in 0..80 {
            history.push(req(i, i as Slot, 1, 1, 0, 10.0));
        }
        let mut rng = SeededRng::new(2);
        let agg =
            AggregateDemand::from_history(&history, 100, &AggregationConfig::default(), &mut rng);
        let d = agg.demand(ClassId::new(AppId(0), NodeId(1)));
        // P80 of a series that is 10 in 80 slots and 0 in 20: around the
        // jump point; bootstrap smooths it into (0, 10].
        assert!(d > 0.0 && d <= 10.0, "demand {d}");
    }

    #[test]
    fn classes_are_separated() {
        let history = vec![
            req(0, 0, 10, 1, 0, 3.0),
            req(1, 0, 10, 1, 1, 4.0),
            req(2, 0, 10, 2, 0, 5.0),
        ];
        let mut rng = SeededRng::new(3);
        let agg =
            AggregateDemand::from_history(&history, 10, &AggregationConfig::default(), &mut rng);
        assert_eq!(agg.len(), 3);
        assert!((agg.demand(ClassId::new(AppId(1), NodeId(1))) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_classes_dropped() {
        let mut demands = BTreeMap::new();
        demands.insert(ClassId::new(AppId(0), NodeId(0)), 0.0);
        demands.insert(ClassId::new(AppId(0), NodeId(1)), 2.0);
        let agg = AggregateDemand::from_demands(&demands);
        assert_eq!(agg.len(), 1);
        assert!(!agg.is_empty());
        assert_eq!(agg.demand(ClassId::new(AppId(0), NodeId(0))), 0.0);
    }

    #[test]
    fn scaling() {
        let mut demands = BTreeMap::new();
        demands.insert(ClassId::new(AppId(0), NodeId(1)), 10.0);
        let agg = AggregateDemand::from_demands(&demands).scaled(0.6);
        assert!((agg.demand(ClassId::new(AppId(0), NodeId(1))) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn from_stream_with_exact_estimator_matches_from_history() {
        use vne_model::request::SlotEvents;
        use vne_workload::estimator::{EstimatorKind, SketchEstimator};
        let history = vec![
            req(0, 0, 10, 1, 0, 3.0),
            req(1, 2, 5, 1, 1, 4.0),
            req(2, 0, 10, 2, 0, 5.0),
        ];
        let events: Vec<SlotEvents> = (0..10)
            .map(|t| SlotEvents {
                slot: t,
                arrivals: history.iter().filter(|r| r.arrival == t).cloned().collect(),
                churn: Vec::new(),
            })
            .collect();
        let config = AggregationConfig::default();
        let batch = AggregateDemand::from_history(&history, 10, &config, &mut SeededRng::new(7));
        let mut exact = EstimatorKind::Exact.build(10, &config);
        let streamed = AggregateDemand::from_stream(
            events.iter().cloned(),
            exact.as_mut(),
            &mut SeededRng::new(7),
        );
        assert_eq!(batch.len(), streamed.len());
        for (b, s) in batch.requests().iter().zip(streamed.requests()) {
            assert_eq!(b.class, s.class);
            assert_eq!(b.demand.to_bits(), s.demand.to_bits());
        }
        // The sketch path lands near the exact estimates on these
        // constant-demand classes.
        let mut sketch = SketchEstimator::new(config.alpha);
        let approx = AggregateDemand::from_stream(events, &mut sketch, &mut SeededRng::new(7));
        for s in approx.requests() {
            let exact_demand = batch.demand(s.class);
            assert!(
                (s.demand - exact_demand).abs() < 1.0,
                "class {:?}: sketch {} vs exact {exact_demand}",
                s.class,
                s.demand
            );
        }
    }

    #[test]
    fn empty_history_gives_empty_plan_input() {
        let mut rng = SeededRng::new(4);
        let agg = AggregateDemand::from_history(&[], 10, &AggregationConfig::default(), &mut rng);
        assert!(agg.is_empty());
        assert_eq!(agg.total_demand(), 0.0);
    }
}
