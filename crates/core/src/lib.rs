#![warn(missing_docs)]
//! # vne-olive — OLIVE: plan-based scalable online virtual network embedding
//!
//! The paper's contribution, reproduced end to end:
//!
//! * [`aggregate`] — time-aggregation of the request history into
//!   per-class expected demands (Eqs. 5–6, bootstrap `P̂_80`);
//! * [`colgen`] — PLAN-VNE solved by Dantzig-Wolfe column generation with
//!   rejection quantiles (the production plan solver);
//! * [`planvne`] — the faithful arc-form LP of Fig. 4 (reference oracle);
//! * [`decompose`] — flow decomposition of arc plans into integral
//!   embedding columns;
//! * [`pricing`] — exact min-cost tree embedding (the pricing problem and
//!   FULLG's first stage);
//! * [`plan`] — the plan and its residual ledger (Eqs. 17, 19);
//! * [`olive`] — the OLIVE online algorithm (Alg. 2): planned embedding,
//!   borrowing, preemption, greedy fallback — and QUICKG as its
//!   empty-plan instantiation;
//! * [`greedy`] — the collocated `GREEDY EMBED` heuristic;
//! * [`fullg`] — the exact per-request baseline (tree-DP + ILP);
//! * [`slotoff`] — per-slot offline re-optimization (PRANOS-style);
//! * [`algorithm`] — the slot-driven interface all algorithms implement.
//!
//! ## Example: plan and serve
//!
//! ```
//! use std::collections::BTreeMap;
//! use vne_model::prelude::*;
//! use vne_olive::aggregate::AggregateDemand;
//! use vne_olive::algorithm::OnlineAlgorithm;
//! use vne_olive::colgen::{solve_plan, PlanVneConfig};
//! use vne_olive::olive::{Olive, OliveConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Substrate: edge - core pair.
//! let mut s = SubstrateNetwork::new("demo");
//! let e = s.add_node("edge", Tier::Edge, 1_000.0, 50.0)?;
//! let c = s.add_node("core", Tier::Core, 9_000.0, 1.0)?;
//! s.add_link(e, c, 5_000.0, 1.0)?;
//! let mut apps = AppSet::new();
//! let app = apps.push("chain", AppShape::Chain,
//!     VirtualNetwork::chain(&[50.0], &[10.0])?)?;
//!
//! // Plan for an expected concurrent demand of 20 units of this class.
//! let mut demands = BTreeMap::new();
//! demands.insert(ClassId::new(app, e), 20.0);
//! let aggregate = AggregateDemand::from_demands(&demands);
//! let (plan, _) = solve_plan(&s, &apps, &PlacementPolicy::default(),
//!     &aggregate, &PlanVneConfig::new(1e5));
//!
//! // Serve a request online.
//! let mut olive = Olive::new(s, apps, PlacementPolicy::default(), plan,
//!     OliveConfig::default());
//! let request = Request { id: RequestId(0), arrival: 0, duration: 10,
//!     ingress: e, app, demand: 5.0 };
//! let outcome = olive.process_slot(0, &[], &[request]);
//! assert_eq!(outcome.accepted.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod aggregate;
pub mod algorithm;
pub mod bound;
pub mod colgen;
pub mod decompose;
pub mod fullg;
pub mod greedy;
pub mod olive;
pub mod plan;
pub mod planvne;
pub mod pricing;
pub mod slotoff;
pub mod timeplan;

pub use algorithm::{OnlineAlgorithm, SlotOutcome};
pub use olive::{Olive, OliveConfig};
pub use plan::Plan;
