//! FULLG: the exact greedy baseline (§IV-A).
//!
//! FULLG solves, for every arriving request, an exact minimum-cost
//! embedding over the residual substrate — the paper does this with a
//! CPLEX ILP and notes it "is the best possible greedy algorithm, but it
//! does not scale well" (130× slower than QUICKG).
//!
//! Our implementation is two-stage:
//!
//! 1. the tree-DP of [`crate::pricing`] with per-element capacity
//!    filtering — exact whenever the returned embedding does not make
//!    several virtual elements jointly overload one substrate element
//!    (demands are ~10 against capacities ≥ 100K, so this is almost
//!    always the case); the joint footprint is verified explicitly;
//! 2. on verification failure, the paper's node-link ILP over the
//!    residual capacities, solved by branch-and-bound.

use std::collections::{BTreeMap, HashMap};

use vne_lp::branch_bound::{solve_mip, BranchBoundOptions};
use vne_lp::problem::{Problem, Relation, VarId};
use vne_lp::solution::SolveStatus;
use vne_model::app::AppSet;
use vne_model::embedding::{Embedding, Footprint};
use vne_model::ids::{LinkId, NodeId, RequestId};
use vne_model::load::LoadLedger;
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot};
use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};
use vne_model::substrate::SubstrateNetwork;
use vne_model::vnet::VirtualNetwork;

use crate::algorithm::{OnlineAlgorithm, SlotOutcome};
use crate::pricing::{min_cost_embedding, CapacityFilter, ElementCosts};

/// Counters describing FULLG's solve paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullGStats {
    /// Requests solved by the tree-DP alone.
    pub dp_solved: usize,
    /// Requests solved by the inflated-filter DP repair.
    pub dp_repaired: usize,
    /// Requests that needed the ILP fallback.
    pub ilp_fallbacks: usize,
    /// Requests rejected.
    pub rejected: usize,
}

/// The FULLG baseline.
#[derive(Debug, Clone)]
pub struct FullG {
    substrate: SubstrateNetwork,
    apps: AppSet,
    policy: PlacementPolicy,
    loads: LoadLedger,
    active: BTreeMap<RequestId, (f64, Footprint)>,
    bb_options: BranchBoundOptions,
    stats: FullGStats,
}

impl FullG {
    /// Creates a FULLG instance.
    pub fn new(substrate: SubstrateNetwork, apps: AppSet, policy: PlacementPolicy) -> Self {
        let loads = LoadLedger::new(&substrate);
        Self {
            substrate,
            apps,
            policy,
            loads,
            active: BTreeMap::new(),
            bb_options: BranchBoundOptions {
                // Bounded effort: the fallback fires only on rare joint
                // self-interference after the DP repair stage; a tight
                // node budget keeps FULLG's worst case tractable (the
                // paper itself treats FULLG as an impractical reference).
                max_nodes: 50,
                ..BranchBoundOptions::default()
            },
            stats: FullGStats::default(),
        }
    }

    /// Solve-path counters.
    pub fn stats(&self) -> FullGStats {
        self.stats
    }

    fn handle_arrival(&mut self, r: &Request) -> bool {
        let vnet = self.apps.vnet(r.app).clone();
        let costs = ElementCosts::from_substrate(&self.substrate);
        // Stage 1: tree-DP with per-element filtering.
        match min_cost_embedding(
            &self.substrate,
            &vnet,
            &self.policy,
            r.ingress,
            &costs,
            Some(CapacityFilter {
                ledger: &self.loads,
                demand: r.demand,
            }),
        ) {
            Some((embedding, _)) => {
                let footprint = embedding.footprint(&vnet, &self.substrate, &self.policy);
                if self.loads.fits(&footprint, r.demand) {
                    self.loads.apply(&footprint, r.demand);
                    self.active.insert(r.id, (r.demand, footprint));
                    self.stats.dp_solved += 1;
                    return true;
                }
                // Joint self-interference: the DP optimum overloads a
                // shared element. Resolve by excluding, one at a time,
                // each conflicted (virtual node → substrate node)
                // assignment and re-running the DP; the cheapest
                // jointly-feasible result is taken. This recovers split
                // placements (e.g. two VNFs that cannot share one node)
                // at DP cost instead of ILP cost.
                if let Some((embedding, footprint)) =
                    self.resolve_conflict(&vnet, r, &embedding, &costs)
                {
                    let _ = embedding;
                    self.loads.apply(&footprint, r.demand);
                    self.active.insert(r.id, (r.demand, footprint));
                    self.stats.dp_repaired += 1;
                    return true;
                }
                // Bounded-effort exact fallback: the paper's node-link
                // ILP on residual capacities (a feasible incumbent is
                // accepted even if the node budget ran out first).
                self.stats.ilp_fallbacks += 1;
                if let Some(embedding) = self.solve_ilp(&vnet, r) {
                    let footprint = embedding.footprint(&vnet, &self.substrate, &self.policy);
                    if self.loads.fits(&footprint, r.demand) {
                        self.loads.apply(&footprint, r.demand);
                        self.active.insert(r.id, (r.demand, footprint));
                        return true;
                    }
                }
            }
            None => {
                // Per-element feasibility is *necessary* for any joint
                // embedding: the DP searched the superset of all jointly
                // feasible placements, so there is nothing for the ILP
                // to find. Reject outright.
            }
        }
        self.stats.rejected += 1;
        false
    }

    /// Resolves a joint self-interference conflict: for every virtual
    /// node hosted on a substrate element the joint check flagged,
    /// re-run the DP with that single assignment excluded and keep the
    /// cheapest jointly feasible alternative.
    fn resolve_conflict(
        &self,
        vnet: &VirtualNetwork,
        r: &Request,
        conflicted: &Embedding,
        costs: &ElementCosts,
    ) -> Option<(Embedding, Footprint)> {
        // Conflicted nodes: those whose aggregated load does not fit.
        let footprint = conflicted.footprint(vnet, &self.substrate, &self.policy);
        let mut bad_nodes: Vec<NodeId> = footprint
            .nodes()
            .iter()
            .filter(|&&(n, x)| x * r.demand > self.loads.node_residual(n))
            .map(|&(n, _)| n)
            .collect();
        bad_nodes.dedup();
        let mut best: Option<(Embedding, Footprint, f64)> = None;
        for (i, _) in vnet.vnodes() {
            let host = conflicted.node(i);
            if !bad_nodes.contains(&host) {
                continue;
            }
            let Some((embedding, _)) = crate::pricing::min_cost_embedding_with_exclusions(
                &self.substrate,
                vnet,
                &self.policy,
                r.ingress,
                costs,
                Some(CapacityFilter {
                    ledger: &self.loads,
                    demand: r.demand,
                }),
                &[(i, host)],
            ) else {
                continue;
            };
            let fp = embedding.footprint(vnet, &self.substrate, &self.policy);
            if !self.loads.fits(&fp, r.demand) {
                continue;
            }
            let cost = fp.cost(&self.substrate) * r.demand;
            match &best {
                Some((_, _, best_cost)) if cost >= *best_cost => {}
                _ => best = Some((embedding, fp, cost)),
            }
        }
        best.map(|(e, fp, _)| (e, fp))
    }

    /// The paper's node-link ILP for one request over residual capacity.
    fn solve_ilp(&self, vnet: &VirtualNetwork, r: &Request) -> Option<Embedding> {
        let s = &self.substrate;
        let mut p = Problem::new();
        let n_sub = s.node_count();

        // Binary placement vars; θ pinned to the ingress.
        let mut node_vars: Vec<Vec<Option<VarId>>> = vec![vec![None; n_sub]; vnet.node_count()];
        for (i, vnf) in vnet.vnodes() {
            for (v, snode) in s.nodes() {
                if i == VirtualNetwork::ROOT && v != r.ingress {
                    continue;
                }
                let Some(eta) = self.policy.node_eta(vnf, snode) else {
                    continue;
                };
                let load = r.demand * vnf.beta * eta;
                if load > 0.0 && self.loads.node_residual(v) < load {
                    continue;
                }
                let var = p.add_binary_var(format!("x-{i}-{v}"), load * snode.cost);
                node_vars[i.index()][v.index()] = Some(var);
            }
        }
        // Binary directed arc vars per virtual link.
        let mut arc_vars: Vec<Vec<(LinkId, bool, VarId)>> = vec![Vec::new(); vnet.link_count()];
        for (e, vlink) in vnet.vlinks() {
            for (l, slink) in s.links() {
                let Some(eta) = self.policy.link_eta(vlink, slink) else {
                    continue;
                };
                let load = r.demand * vlink.beta * eta;
                if load > 0.0 && self.loads.link_residual(l) < load {
                    continue;
                }
                for forward in [true, false] {
                    let var = p.add_binary_var(
                        format!("f-{e}-{l}-{}", u8::from(forward)),
                        load * slink.cost,
                    );
                    arc_vars[e.index()].push((l, forward, var));
                }
            }
        }
        // Assignment rows.
        for (i, _) in vnet.vnodes() {
            let row = p.add_row(format!("asg-{i}"), Relation::Eq, 1.0);
            let mut any = false;
            for var in node_vars[i.index()].iter().flatten() {
                p.set_coeff(row, *var, 1.0);
                any = true;
            }
            if !any {
                return None; // some VNF has no feasible host at all
            }
        }
        // Flow conservation.
        for (e, vlink) in vnet.vlinks() {
            for v in s.node_ids() {
                let row = p.add_row(format!("cons-{e}-{v}"), Relation::Eq, 0.0);
                if let Some(yj) = node_vars[vlink.to.index()][v.index()] {
                    p.set_coeff(row, yj, 1.0);
                }
                if let Some(yi) = node_vars[vlink.from.index()][v.index()] {
                    p.set_coeff(row, yi, -1.0);
                }
                for &(l, forward, var) in &arc_vars[e.index()] {
                    let slink = s.link(l);
                    let (from, to) = if forward {
                        (slink.a, slink.b)
                    } else {
                        (slink.b, slink.a)
                    };
                    if to == v {
                        p.set_coeff(row, var, -1.0);
                    }
                    if from == v {
                        p.set_coeff(row, var, 1.0);
                    }
                }
            }
        }
        // Joint residual capacity rows.
        for (v, _) in s.nodes() {
            let row = p.add_row(
                format!("cap-{v}"),
                Relation::Le,
                self.loads.node_residual(v),
            );
            for (i, vnf) in vnet.vnodes() {
                if let Some(var) = node_vars[i.index()][v.index()] {
                    let eta = self.policy.node_eta(vnf, s.node(v)).expect("var exists");
                    let load = r.demand * vnf.beta * eta;
                    if load > 0.0 {
                        p.set_coeff(row, var, load);
                    }
                }
            }
        }
        for (l, slink) in s.links() {
            let row = p.add_row(
                format!("cap-{l}"),
                Relation::Le,
                self.loads.link_residual(l),
            );
            for (e, vlink) in vnet.vlinks() {
                let eta = self.policy.link_eta(vlink, slink).expect("eta exists");
                let load = r.demand * vlink.beta * eta;
                if load == 0.0 {
                    continue;
                }
                for &(al, _, var) in &arc_vars[e.index()] {
                    if al == l {
                        p.set_coeff(row, var, load);
                    }
                }
            }
        }

        let sol = solve_mip(&p, self.bb_options.clone());
        // A feasible incumbent found before the node budget ran out is
        // still a valid (if possibly non-optimal) embedding.
        let usable = sol.status == SolveStatus::Optimal
            || (sol.status == SolveStatus::Limit && !sol.x.is_empty());
        if !usable {
            return None;
        }
        // Extract the embedding.
        let mut node_map = vec![NodeId(0); vnet.node_count()];
        for (i, _) in vnet.vnodes() {
            let v = (0..n_sub).find(|&v| {
                node_vars[i.index()][v]
                    .map(|var| sol.x[var.0] > 0.5)
                    .unwrap_or(false)
            })?;
            node_map[i.index()] = NodeId::from_index(v);
        }
        let mut link_paths = vec![Vec::new(); vnet.link_count()];
        for (e, vlink) in vnet.vlinks() {
            let from = node_map[vlink.from.index()];
            let to = node_map[vlink.to.index()];
            // Walk selected arcs from `from` to `to`.
            let mut arcs: HashMap<NodeId, (NodeId, LinkId)> = HashMap::new();
            for &(l, forward, var) in &arc_vars[e.index()] {
                if sol.x[var.0] > 0.5 {
                    let slink = s.link(l);
                    let (a, b) = if forward {
                        (slink.a, slink.b)
                    } else {
                        (slink.b, slink.a)
                    };
                    arcs.insert(a, (b, l));
                }
            }
            let mut cur = from;
            let mut path = Vec::new();
            let mut guard = 0;
            while cur != to {
                let (next, l) = arcs.get(&cur)?;
                path.push(*l);
                cur = *next;
                guard += 1;
                if guard > s.node_count() {
                    return None; // malformed flow (should not happen)
                }
            }
            link_paths[e.index()] = path;
        }
        let embedding = Embedding::new(node_map, link_paths);
        embedding
            .validate(vnet, s, &self.policy)
            .ok()
            .map(|()| embedding)
    }
}

/// Checkpointing: mutable state is the load ledger, the active
/// allocations (demand + footprint per request) and the solve-path
/// counters; the branch-and-bound options are construction inputs.
impl Snapshot for FullG {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_blob(&self.loads.snapshot());
        // Ordered by request id (BTreeMap iteration order).
        w.write_usize(self.active.len());
        for (id, (demand, footprint)) in &self.active {
            w.write(id);
            w.write_f64(*demand);
            w.write(footprint);
        }
        for count in [
            self.stats.dp_solved,
            self.stats.dp_repaired,
            self.stats.ilp_fallbacks,
            self.stats.rejected,
        ] {
            w.write_usize(count);
        }
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let loads_blob = r.read_blob()?;
        let count = r.read_usize()?;
        let mut active = BTreeMap::new();
        for _ in 0..count {
            let id: RequestId = r.read()?;
            let demand = r.read_f64()?;
            let footprint: Footprint = r.read()?;
            active.insert(id, (demand, footprint));
        }
        let stats = FullGStats {
            dp_solved: r.read_usize()?,
            dp_repaired: r.read_usize()?,
            ilp_fallbacks: r.read_usize()?,
            rejected: r.read_usize()?,
        };
        r.finish()?;
        self.loads.restore(&loads_blob)?;
        self.active = active;
        self.stats = stats;
        Ok(())
    }
}

impl OnlineAlgorithm for FullG {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn name(&self) -> &str {
        "FULLG"
    }

    fn snapshot_state(&self) -> Option<StateBlob> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        Snapshot::restore(self, blob)
    }

    fn process_slot(
        &mut self,
        _t: Slot,
        departures: &[Request],
        arrivals: &[Request],
    ) -> SlotOutcome {
        let mut outcome = SlotOutcome::default();
        for d in departures {
            if let Some((demand, footprint)) = self.active.remove(&d.id) {
                self.loads.remove(&footprint, demand);
            }
        }
        for r in arrivals {
            if self.handle_arrival(r) {
                outcome.accepted.push(r.id);
            } else {
                outcome.rejected.push(r.id);
            }
        }
        debug_assert!(self.loads.check_invariants());
        outcome
    }

    fn loads(&self) -> &LoadLedger {
        &self.loads
    }

    fn apply_churn(&mut self, effective: &vne_model::churn::EffectiveCapacities) {
        self.loads.set_capacities(&effective.node, &effective.link);
    }

    fn footprint_of(&self, id: RequestId) -> Option<&Footprint> {
        self.active.get(&id).map(|(_, fp)| fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::app::{shapes, AppShape};
    use vne_model::ids::AppId;
    use vne_model::substrate::Tier;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let t = s.add_node("t1", Tier::Transport, 300.0, 10.0).unwrap();
        let c = s.add_node("c2", Tier::Core, 900.0, 1.0).unwrap();
        s.add_link(e, t, 600.0, 1.0).unwrap();
        s.add_link(t, c, 600.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(2, 10.0, 2.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn req(id: u64, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival: 0,
            duration: 10,
            ingress: NodeId(0),
            app: AppId(0),
            demand,
        }
    }

    #[test]
    fn accepts_and_places_optimally() {
        let (s, apps) = world();
        let mut fullg = FullG::new(s, apps, PlacementPolicy::default());
        let out = fullg.process_slot(0, &[], &[req(0, 3.0)]);
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(fullg.stats().dp_solved, 1);
        // Optimal spot is c2 (cheapest): 2 VNFs × β10 × demand 3 = 60 CU.
        assert_eq!(fullg.loads().node_load(NodeId(2)), 60.0);
    }

    #[test]
    fn spreads_across_nodes_unlike_quickg() {
        // Make the cheap node too small for both VNFs but able to take
        // one; FULLG (no collocation constraint) splits, QUICKG cannot.
        let mut s = SubstrateNetwork::new("split");
        let e = s.add_node("e0", Tier::Edge, 500.0, 50.0).unwrap();
        let a = s.add_node("a", Tier::Core, 35.0, 1.0).unwrap();
        let b = s.add_node("b", Tier::Core, 35.0, 2.0).unwrap();
        s.add_link(e, a, 1000.0, 1.0).unwrap();
        s.add_link(a, b, 1000.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(2, 10.0, 1.0).unwrap(),
        )
        .unwrap();
        let mut fullg = FullG::new(s.clone(), apps.clone(), PlacementPolicy::default());
        // Demand 3: each VNF needs 30 CU; neither core node fits 60.
        let out = fullg.process_slot(0, &[], &[req(0, 3.0)]);
        assert_eq!(out.accepted.len(), 1);
        assert!(fullg.loads().node_load(NodeId(1)) > 0.0);
        assert!(fullg.loads().node_load(NodeId(2)) > 0.0);
        // QUICKG on the same instance places both VNFs on e0 (the only
        // node fitting 60 CU) at much higher cost.
        let mut quickg = crate::olive::Olive::quickg(s, apps, PlacementPolicy::default());
        let qout = quickg.process_slot(0, &[], &[req(0, 3.0)]);
        assert_eq!(qout.accepted.len(), 1);
        assert_eq!(quickg.loads().node_load(NodeId(0)), 60.0);
    }

    #[test]
    fn rejects_when_infeasible() {
        let (s, apps) = world();
        let mut fullg = FullG::new(s, apps, PlacementPolicy::default());
        // Demand 200 ⇒ 2000 CU per VNF pair: nothing fits.
        let out = fullg.process_slot(0, &[], &[req(0, 200.0)]);
        assert_eq!(out.rejected.len(), 1);
        assert_eq!(fullg.stats().rejected, 1);
    }

    #[test]
    fn departures_free_capacity() {
        let (s, apps) = world();
        let mut fullg = FullG::new(s, apps, PlacementPolicy::default());
        let r = req(0, 40.0); // 800 CU on c2: fills most of it
        fullg.process_slot(0, &[], std::slice::from_ref(&r));
        assert_eq!(fullg.loads().node_load(NodeId(2)), 800.0);
        let out = fullg.process_slot(1, &[], &[req(1, 40.0)]);
        // Second giant request cannot fit on c2 alongside the first.
        assert!(out.accepted.is_empty() || fullg.loads().node_load(NodeId(1)) > 0.0);
        fullg.process_slot(2, &[r], &[]);
        let out2 = fullg.process_slot(3, &[], &[req(2, 40.0)]);
        assert_eq!(out2.accepted.len(), 1);
    }

    #[test]
    fn gpu_requests_split_across_gpu_and_standard_nodes() {
        let (mut s, _) = world();
        s.node_mut(NodeId(1)).gpu = true;
        let mut apps = AppSet::new();
        apps.push(
            "gpu",
            AppShape::Gpu,
            shapes::gpu_chain(2, 10.0, 2.0, 1).unwrap(),
        )
        .unwrap();
        let mut fullg = FullG::new(s, apps, PlacementPolicy::default());
        let out = fullg.process_slot(0, &[], &[req(0, 2.0)]);
        assert_eq!(out.accepted.len(), 1);
        // GPU VNF on t1 (the GPU node): 20 CU there.
        assert_eq!(fullg.loads().node_load(NodeId(1)), 20.0);
    }
}
