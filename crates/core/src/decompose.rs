//! Flow decomposition of arc-form plans into integral embedding columns.
//!
//! The column-generation solver produces plans directly as weighted
//! integral embeddings, but the faithful arc LP (Fig. 4) yields per-arc
//! fractions. Because every `Ga` is a rooted tree, a feasible arc
//! solution decomposes into a convex combination of integral tree
//! embeddings: walking the tree top-down, each partial embedding splits
//! across the flow paths of the next virtual link. This module performs
//! that decomposition so either solver can feed OLIVE.

use std::collections::{BTreeMap, HashMap};

use vne_model::app::AppSet;
use vne_model::embedding::Embedding;
use vne_model::ids::{LinkId, NodeId};
use vne_model::policy::PlacementPolicy;
use vne_model::substrate::SubstrateNetwork;
use vne_model::vnet::VirtualNetwork;

use crate::plan::{ClassPlan, Plan, PlannedColumn};
use crate::planvne::{ArcClassSolution, ArcPlanSolution};

const EPS: f64 = 1e-9;

/// One path atom of a single-commodity decomposition.
#[derive(Debug, Clone)]
struct PathAtom {
    source: NodeId,
    target: NodeId,
    links: Vec<LinkId>,
    amount: f64,
}

/// Decomposes one virtual link's flow into path atoms.
///
/// Sources are `y^i_v` (parent placement fractions), sinks are `y^j_v`
/// (child placements), arcs are the directed flows. LP-optimal flows
/// under positive costs are acyclic; a step limit guards degenerate
/// zero-cost cycles.
fn strip_paths(
    substrate: &SubstrateNetwork,
    mut supply: Vec<f64>,
    mut sink: Vec<f64>,
    flows: &HashMap<(NodeId, NodeId), f64>,
) -> Vec<PathAtom> {
    let mut residual: HashMap<(NodeId, NodeId), f64> = flows.clone();
    let mut atoms = Vec::new();
    // Pick the largest remaining supply each round until none is left.
    while let Some(src_idx) = (0..supply.len())
        .filter(|&i| supply[i] > EPS)
        .max_by(|&a, &b| supply[a].partial_cmp(&supply[b]).unwrap())
    {
        let source = NodeId::from_index(src_idx);
        // Walk positive residual arcs until a node with sink capacity.
        let mut links = Vec::new();
        let mut nodes = vec![source];
        let mut cur = source;
        let mut amount = supply[src_idx];
        let max_steps = substrate.node_count() * 2 + 2;
        let mut ok = true;
        for _step in 0.. {
            if sink[cur.index()] > EPS {
                amount = amount.min(sink[cur.index()]);
                break;
            }
            if _step >= max_steps {
                ok = false;
                break;
            }
            // Outgoing residual arc with the largest flow.
            let mut best: Option<(NodeId, LinkId, f64)> = None;
            for &(nb, l) in substrate.neighbors(cur) {
                let f = residual.get(&(cur, nb)).copied().unwrap_or(0.0);
                if f > EPS && best.map(|(_, _, bf)| f > bf).unwrap_or(true) {
                    best = Some((nb, l, f));
                }
            }
            let Some((nb, l, f)) = best else {
                ok = false;
                break;
            };
            amount = amount.min(f);
            links.push(l);
            nodes.push(nb);
            cur = nb;
        }
        if !ok || amount <= EPS {
            // Numerical crumbs: drop this supply.
            supply[src_idx] = 0.0;
            continue;
        }
        supply[src_idx] -= amount;
        sink[cur.index()] -= amount;
        for w in nodes.windows(2) {
            if let Some(f) = residual.get_mut(&(w[0], w[1])) {
                *f -= amount;
            }
        }
        atoms.push(PathAtom {
            source,
            target: cur,
            links,
            amount,
        });
    }
    atoms
}

#[derive(Debug, Clone)]
struct Partial {
    weight: f64,
    node_map: Vec<NodeId>,
    link_paths: Vec<Vec<LinkId>>,
}

/// Decomposes one class's arc solution into weighted integral embeddings.
///
/// Returns `(embedding, weight)` pairs whose weights sum to the allocated
/// fraction (up to LP tolerance). Identical embeddings are merged.
pub fn decompose_class(
    substrate: &SubstrateNetwork,
    vnet: &VirtualNetwork,
    solution: &ArcClassSolution,
) -> Vec<(Embedding, f64)> {
    let allocated = solution.allocated();
    if allocated <= EPS {
        return Vec::new();
    }
    let mut partials = vec![Partial {
        weight: allocated,
        node_map: {
            let mut m = vec![NodeId(0); vnet.node_count()];
            m[VirtualNetwork::ROOT.index()] = solution.class.ingress;
            m
        },
        link_paths: vec![Vec::new(); vnet.link_count()],
    }];

    for v in vnet.bfs_order() {
        for &c in vnet.children(v) {
            let (_, e) = vnet.parent(c).expect("child has a parent");
            // Single-commodity decomposition for virtual link e.
            let supply = solution.node_fracs[v.index()].clone();
            let sink = solution.node_fracs[c.index()].clone();
            let atoms = strip_paths(substrate, supply, sink, &solution.arc_flows[e.index()]);
            // Bucket atoms by source node.
            let mut buckets: HashMap<NodeId, Vec<PathAtom>> = HashMap::new();
            for a in atoms {
                buckets.entry(a.source).or_default().push(a);
            }
            // Split each partial across the atoms at its parent host.
            let mut next: Vec<Partial> = Vec::new();
            for partial in partials {
                let host = partial.node_map[v.index()];
                let mut remaining = partial.weight;
                let bucket = buckets.entry(host).or_default();
                while remaining > EPS {
                    let Some(atom) = bucket.iter_mut().find(|a| a.amount > EPS) else {
                        break;
                    };
                    let take = remaining.min(atom.amount);
                    let mut piece = partial.clone();
                    piece.weight = take;
                    piece.node_map[c.index()] = atom.target;
                    piece.link_paths[e.index()] = atom.links.clone();
                    next.push(piece);
                    atom.amount -= take;
                    remaining -= take;
                }
                // Numerical residue is dropped (≤ LP tolerance).
            }
            partials = next;
        }
    }

    // Merge identical embeddings. The map is ordered and the final
    // sort breaks weight ties by embedding, so the column order is a
    // pure function of the solution (a HashMap here would leak its
    // random iteration order into the plan whenever weights tie).
    let mut merged: BTreeMap<Embedding, f64> = BTreeMap::new();
    for p in partials {
        let emb = Embedding::new(p.node_map, p.link_paths);
        *merged.entry(emb).or_insert(0.0) += p.weight;
    }
    let mut out: Vec<(Embedding, f64)> = merged.into_iter().collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

/// Converts a full arc-form solution into a [`Plan`] usable by OLIVE.
pub fn arc_to_plan(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    policy: &PlacementPolicy,
    solution: &ArcPlanSolution,
) -> Plan {
    let mut plan = Plan::empty();
    plan.objective = solution.objective;
    for class_sol in &solution.classes {
        let vnet = apps.vnet(class_sol.class.app);
        let mut columns = Vec::new();
        for (embedding, weight) in decompose_class(substrate, vnet, class_sol) {
            debug_assert!(embedding.validate(vnet, substrate, policy).is_ok());
            let footprint = embedding.footprint(vnet, substrate, policy);
            let unit_cost = footprint.cost(substrate);
            columns.push(PlannedColumn {
                embedding,
                footprint,
                share: weight,
                budget: weight * class_sol.demand,
                unit_cost,
            });
        }
        columns.sort_by(|a, b| {
            a.unit_cost
                .partial_cmp(&b.unit_cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        plan.insert(ClassPlan {
            class: class_sol.class,
            expected_demand: class_sol.demand,
            rejected_fraction: class_sol.rejected.clamp(0.0, 1.0),
            columns,
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateDemand;
    use crate::colgen::PlanVneConfig;
    use crate::planvne::solve_arc_lp;
    use std::collections::BTreeMap;
    use vne_model::app::{shapes, AppSet, AppShape};
    use vne_model::ids::{AppId, ClassId};
    use vne_model::substrate::Tier;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let t = s.add_node("t1", Tier::Transport, 300.0, 10.0).unwrap();
        let c = s.add_node("c2", Tier::Core, 900.0, 1.0).unwrap();
        s.add_link(e, t, 200.0, 1.0).unwrap();
        s.add_link(t, c, 600.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(2, 10.0, 2.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn agg(demand: f64) -> AggregateDemand {
        let mut m = BTreeMap::new();
        m.insert(ClassId::new(AppId(0), NodeId(0)), demand);
        AggregateDemand::from_demands(&m)
    }

    #[test]
    fn decomposition_weights_sum_to_allocation() {
        let (s, apps) = world();
        let policy = PlacementPolicy::default();
        for demand in [5.0, 40.0, 100.0] {
            let sol = solve_arc_lp(&s, &apps, &policy, &agg(demand), &PlanVneConfig::new(1e4));
            let class_sol = &sol.classes[0];
            let parts = decompose_class(&s, apps.vnet(AppId(0)), class_sol);
            let total: f64 = parts.iter().map(|(_, w)| w).sum();
            assert!(
                (total - class_sol.allocated()).abs() < 1e-5,
                "demand {demand}: decomposed {total} vs allocated {}",
                class_sol.allocated()
            );
        }
    }

    #[test]
    fn decomposed_embeddings_are_valid() {
        let (s, apps) = world();
        let policy = PlacementPolicy::default();
        let sol = solve_arc_lp(&s, &apps, &policy, &agg(40.0), &PlanVneConfig::new(1e4));
        let parts = decompose_class(&s, apps.vnet(AppId(0)), &sol.classes[0]);
        assert!(!parts.is_empty());
        for (emb, w) in &parts {
            assert!(*w > 0.0);
            assert!(emb.validate(apps.vnet(AppId(0)), &s, &policy).is_ok());
            assert_eq!(emb.ingress(), NodeId(0));
        }
    }

    #[test]
    fn decomposed_plan_load_matches_arc_load() {
        // The per-element load implied by the columns must equal the
        // arc-form load (the decomposition conserves flow).
        let (s, apps) = world();
        let policy = PlacementPolicy::default();
        let sol = solve_arc_lp(&s, &apps, &policy, &agg(100.0), &PlanVneConfig::new(1e4));
        let plan = arc_to_plan(&s, &apps, &policy, &sol);
        let cp = plan.class(ClassId::new(AppId(0), NodeId(0))).unwrap();

        // Node loads from columns.
        let mut col_node_load = vec![0.0; s.node_count()];
        for col in &cp.columns {
            for &(n, x) in col.footprint.nodes() {
                col_node_load[n.index()] += x * col.budget;
            }
        }
        // Node loads from arc fractions.
        let vnet = apps.vnet(AppId(0));
        let class_sol = &sol.classes[0];
        let mut arc_node_load = vec![0.0; s.node_count()];
        for (i, vnf) in vnet.vnodes() {
            for v in s.node_ids() {
                let eta = policy.node_eta(vnf, s.node(v)).unwrap_or(0.0);
                arc_node_load[v.index()] +=
                    class_sol.demand * class_sol.node_fracs[i.index()][v.index()] * vnf.beta * eta;
            }
        }
        for v in 0..s.node_count() {
            assert!(
                (col_node_load[v] - arc_node_load[v]).abs() < 1e-4,
                "node {v}: columns {} vs arc {}",
                col_node_load[v],
                arc_node_load[v]
            );
        }
    }

    #[test]
    fn fully_rejected_class_decomposes_to_nothing() {
        let (s, _) = world();
        let mut apps = AppSet::new();
        apps.push(
            "gpu",
            AppShape::Gpu,
            shapes::gpu_chain(2, 10.0, 2.0, 0).unwrap(),
        )
        .unwrap();
        let policy = PlacementPolicy::default();
        let sol = solve_arc_lp(&s, &apps, &policy, &agg(5.0), &PlanVneConfig::new(1e4));
        let parts = decompose_class(&s, apps.vnet(AppId(0)), &sol.classes[0]);
        assert!(parts.is_empty());
    }
}
