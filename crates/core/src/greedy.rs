//! The collocated greedy embedding (`GREEDY EMBED`, Alg. 2 l. 31–34).
//!
//! QUICKG's heuristic restriction: all VNFs of the request are collocated
//! on a single substrate node, so only the virtual links incident to the
//! root `θ` consume substrate bandwidth — along one shortest path from
//! the ingress to the hosting node. The least-cost feasible host is found
//! with a single capacity-filtered Dijkstra, which is what makes QUICKG
//! (and OLIVE's fallback path) fast. GPU applications cannot be
//! collocated (a GPU datacenter rejects their non-GPU VNFs), matching
//! the paper's note that QUICKG is not applicable to the GPU scenario.

use vne_model::embedding::Embedding;
use vne_model::ids::NodeId;
use vne_model::load::LoadLedger;
use vne_model::policy::PlacementPolicy;
use vne_model::substrate::SubstrateNetwork;
use vne_model::vnet::VirtualNetwork;

/// Finds the cheapest feasible collocated embedding for a request of the
/// given demand rooted at `ingress`, under residual capacities.
///
/// Returns the embedding and its real resource cost per unit demand, or
/// `None` when no host node is feasible (including all GPU applications,
/// whose VNFs cannot share one datacenter with each other under the
/// exclusive GPU policy).
pub fn collocated_embed(
    substrate: &SubstrateNetwork,
    vnet: &VirtualNetwork,
    policy: &PlacementPolicy,
    ingress: NodeId,
    ledger: &LoadLedger,
    demand: f64,
) -> Option<(Embedding, f64)> {
    // Aggregate per-host node demand: Σ_i β_i·η_i(host); root links'
    // bandwidth: Σ_{(θ,c)} β·η hauled along the ingress→host path.
    // Collocation requires every VNF placeable on the host.
    let root_link_beta: f64 = vnet
        .children(VirtualNetwork::ROOT)
        .iter()
        .map(|&c| {
            let (_, e) = vnet.parent(c).expect("child has a parent");
            vnet.link(e).beta
        })
        .sum();

    // Dijkstra from the ingress over links that can carry the root links.
    let paths = substrate.shortest_paths(ingress, |l| {
        let slink = substrate.link(l);
        // All root links share the path; η is uniform per policy.
        let eta = vnet
            .children(VirtualNetwork::ROOT)
            .iter()
            .map(|&c| {
                let (_, e) = vnet.parent(c).expect("child has a parent");
                policy.link_eta(vnet.link(e), slink)
            })
            .try_fold(0.0f64, |acc, eta| eta.map(|v| acc.max(v)))?;
        let need = demand * root_link_beta * eta;
        if need > 0.0 && ledger.link_residual(l) < need {
            return None;
        }
        Some(root_link_beta * eta * slink.cost)
    });

    let mut best: Option<(NodeId, f64)> = None;
    for (host, node) in substrate.nodes() {
        if !paths.reachable(host) {
            continue;
        }
        // Node feasibility: every VNF placeable, total demand fits.
        let mut node_load = 0.0;
        let mut ok = true;
        for (_, vnf) in vnet.vnodes() {
            if vnf.beta == 0.0 {
                continue;
            }
            match policy.node_eta(vnf, node) {
                Some(eta) => node_load += vnf.beta * eta,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        if node_load > 0.0 && ledger.node_residual(host) < demand * node_load {
            continue;
        }
        let cost = node_load * node.cost + paths.distance(host);
        match best {
            Some((_, best_cost)) if cost >= best_cost => {}
            _ => best = Some((host, cost)),
        }
    }

    let (host, cost) = best?;
    let path = paths.path_to(host).expect("host is reachable");
    let mut node_map = vec![host; vnet.node_count()];
    node_map[VirtualNetwork::ROOT.index()] = ingress;
    let mut link_paths = vec![Vec::new(); vnet.link_count()];
    for (e, vlink) in vnet.vlinks() {
        if vlink.from == VirtualNetwork::ROOT {
            link_paths[e.index()] = path.clone();
        }
    }
    let embedding = Embedding::new(node_map, link_paths);
    debug_assert!(embedding.validate(vnet, substrate, policy).is_ok());
    Some((embedding, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::embedding::Footprint;
    use vne_model::ids::{LinkId, VnodeId};
    use vne_model::substrate::Tier;
    use vne_model::vnet::VnfKind;

    fn line() -> SubstrateNetwork {
        let mut s = SubstrateNetwork::new("line");
        let a = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let b = s.add_node("t1", Tier::Transport, 300.0, 10.0).unwrap();
        let c = s.add_node("c2", Tier::Core, 900.0, 1.0).unwrap();
        s.add_link(a, b, 100.0, 1.0).unwrap();
        s.add_link(b, c, 100.0, 1.0).unwrap();
        s
    }

    #[test]
    fn picks_cheapest_feasible_host() {
        let s = line();
        let vn = VirtualNetwork::chain(&[10.0, 10.0], &[5.0, 5.0]).unwrap();
        let ledger = LoadLedger::new(&s);
        let (emb, cost) = collocated_embed(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &ledger,
            1.0,
        )
        .unwrap();
        // Both VNFs at c2 (cost 1): 20·1 + haul 5 over two links = 30.
        assert!(emb.is_collocated());
        assert_eq!(emb.node(VnodeId(1)), NodeId(2));
        assert!((cost - 30.0).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn capacity_forces_closer_host() {
        let s = line();
        let vn = VirtualNetwork::chain(&[10.0, 10.0], &[5.0, 5.0]).unwrap();
        let mut ledger = LoadLedger::new(&s);
        // Fill c2 so 20 CU no longer fit.
        ledger.apply(
            &Footprint::from_parts(vec![(NodeId(2), 885.0)], vec![]),
            1.0,
        );
        let (emb, _) = collocated_embed(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &ledger,
            1.0,
        )
        .unwrap();
        assert_eq!(emb.node(VnodeId(1)), NodeId(1)); // falls back to t1
    }

    #[test]
    fn link_saturation_blocks_remote_hosts() {
        let s = line();
        let vn = VirtualNetwork::chain(&[1.0, 1.0], &[5.0, 5.0]).unwrap();
        let mut ledger = LoadLedger::new(&s);
        // Saturate the first link: only the ingress itself remains.
        ledger.apply(&Footprint::from_parts(vec![], vec![(LinkId(0), 97.0)]), 1.0);
        let (emb, _) = collocated_embed(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &ledger,
            1.0,
        )
        .unwrap();
        assert_eq!(emb.node(VnodeId(1)), NodeId(0));
    }

    #[test]
    fn infeasible_when_nothing_fits() {
        let s = line();
        let vn = VirtualNetwork::chain(&[60.0], &[1.0]).unwrap();
        let mut ledger = LoadLedger::new(&s);
        for i in 0..3u32 {
            let cap = s.node(NodeId(i)).capacity;
            ledger.apply(
                &Footprint::from_parts(vec![(NodeId(i), cap - 10.0)], vec![]),
                1.0,
            );
        }
        assert!(collocated_embed(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &ledger,
            1.0
        )
        .is_none());
    }

    #[test]
    fn gpu_applications_cannot_collocate() {
        let mut s = line();
        s.node_mut(NodeId(2)).gpu = true;
        let mut vn = VirtualNetwork::with_root();
        let (f0, _) = vn
            .add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, 5.0, 1.0)
            .unwrap();
        vn.add_vnf(f0, VnfKind::Gpu, 5.0, 1.0).unwrap();
        let ledger = LoadLedger::new(&s);
        // No node hosts both a GPU and a standard VNF.
        assert!(collocated_embed(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &ledger,
            1.0
        )
        .is_none());
    }

    #[test]
    fn tree_roots_haul_all_root_links() {
        // Root with one child chain; root link β 5 + verify cost uses it.
        let s = line();
        let mut vn = VirtualNetwork::with_root();
        let (h, _) = vn
            .add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, 1.0, 5.0)
            .unwrap();
        vn.add_vnf(h, VnfKind::Standard, 1.0, 100.0).unwrap(); // internal: free when collocated
        let ledger = LoadLedger::new(&s);
        let (emb, cost) = collocated_embed(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &ledger,
            1.0,
        )
        .unwrap();
        // Cheapest host is c2: 2·1 node + 5·2 haul = 12.
        assert_eq!(emb.node(VnodeId(1)), NodeId(2));
        assert!((cost - 12.0).abs() < 1e-9, "cost {cost}");
    }
}
