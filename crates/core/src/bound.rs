//! Offline LP revenue bound for empirical competitive-ratio reporting.
//!
//! The scenario suite compares every online algorithm against an
//! *offline* adversary that sees the whole request sequence up front.
//! Computing the true offline optimum is NP-hard (it embeds VNE), so
//! the suite uses a sound LP relaxation instead: fractional acceptance
//! `x_r ∈ [0, 1]` with one aggregate node-capacity constraint per
//! arrival slot,
//!
//! ```text
//!   maximize   Σ_r v_r · x_r
//!   subject to Σ_{r active at t} w_r · x_r ≤ C        for each arrival slot t
//!              0 ≤ x_r ≤ 1
//! ```
//!
//! where `v_r = ψ(a_r)·d_r·T_r` is the request's revenue (its rejection
//! cost — what an online run forfeits by denying it), `w_r = d_r·Σ_i β_i`
//! its minimum total node footprint (real embeddings use `η ≥ 1` times
//! that), and `C` the total *unchurned* node capacity. Because request
//! activity intervals are left-closed, total active footprint peaks at
//! arrival slots, so constraining only those slots loses nothing.
//!
//! Every relaxation step only enlarges the feasible set — fractional
//! acceptance, aggregated node capacity, ignored links, ignored
//! placement constraints, nameplate capacity under churn — so the LP
//! optimum is a certified upper bound on any online algorithm's
//! revenue, including under preemption, churn and re-embedding (the
//! never-denied accepted set is itself a feasible 0/1 point). The
//! empirical competitive ratio `online revenue / bound` therefore lands
//! in `(0, 1]`.

use std::collections::BTreeSet;

use vne_lp::{solve_lp, Problem, Relation};
use vne_model::app::AppSet;
use vne_model::cost::RejectionPenalty;
use vne_model::request::{Request, Slot};
use vne_model::substrate::SubstrateNetwork;

/// The offline LP revenue bound over a measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineBound {
    /// The LP optimum: a certified upper bound on any online
    /// algorithm's revenue from window arrivals.
    pub revenue_bound: f64,
    /// Σ of `v_r` over window arrivals (the revenue of accepting
    /// everything; the bound never exceeds it).
    pub total_revenue: f64,
    /// Number of requests arriving inside the window.
    pub requests: usize,
}

impl OfflineBound {
    /// The empirical competitive ratio of an online run that earned
    /// `online_revenue` from window arrivals. In `(0, 1]` for a sound
    /// bound and a feasible online run (clamped against round-off at
    /// the top).
    pub fn ratio(&self, online_revenue: f64) -> f64 {
        if self.revenue_bound <= 0.0 {
            return 1.0;
        }
        (online_revenue / self.revenue_bound).min(1.0)
    }
}

/// Computes the offline LP revenue bound for the requests of `events`
/// arriving inside `window` (see the module docs for the relaxation).
///
/// The request sequence is consumed lazily; only window arrivals are
/// materialized. `penalty` must be the same rejection-penalty table the
/// online run is scored with, so `v_r` matches the rejection cost the
/// online summary charges for denying `r`.
///
/// # Panics
///
/// Panics if the LP solver fails to find an optimum (the problem is
/// always feasible — `x = 0` — and bounded — `x ≤ 1`).
pub fn offline_revenue_bound<I>(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    penalty: &RejectionPenalty,
    requests: I,
    window: (Slot, Slot),
) -> OfflineBound
where
    I: IntoIterator<Item = Request>,
{
    let (from, to) = window;
    let windowed: Vec<Request> = requests
        .into_iter()
        .filter(|r| r.arrival >= from && r.arrival < to)
        .collect();
    let total_capacity: f64 = substrate.nodes().map(|(_, n)| n.capacity).sum();

    let mut problem = Problem::new();
    let mut total_revenue = 0.0;
    let vars: Vec<_> = windowed
        .iter()
        .map(|r| {
            let revenue = penalty.psi(r.app) * r.demand * f64::from(r.duration);
            total_revenue += revenue;
            // Minimize the negated revenue = maximize the revenue.
            problem.add_var(format!("x{}", r.id.0), -revenue, 0.0, 1.0)
        })
        .collect();

    // One capacity row per distinct arrival slot: activity intervals
    // are left-closed, so total active footprint peaks there.
    let arrival_slots: BTreeSet<Slot> = windowed.iter().map(|r| r.arrival).collect();
    for &t in &arrival_slots {
        let row = problem.add_row(format!("cap{t}"), Relation::Le, total_capacity);
        for (r, &var) in windowed.iter().zip(&vars) {
            if r.arrival <= t && t < r.departure() {
                let footprint = r.demand * apps.vnet(r.app).total_node_size();
                problem.set_coeff(row, var, footprint);
            }
        }
    }

    let revenue_bound = if windowed.is_empty() {
        0.0
    } else {
        let solution = solve_lp(&problem);
        assert!(
            solution.status.is_optimal(),
            "offline bound LP must solve: {:?}",
            solution.status
        );
        -solution.objective
    };
    OfflineBound {
        revenue_bound,
        total_revenue,
        requests: windowed.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::app::{shapes, AppShape};
    use vne_model::ids::{AppId, NodeId, RequestId};
    use vne_model::substrate::Tier;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("t");
        let e = s.add_node("e", Tier::Edge, 100.0, 1.0).unwrap();
        let c = s.add_node("c", Tier::Core, 100.0, 1.0).unwrap();
        s.add_link(e, c, 1000.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        // One VNF of size 1: w_r = demand.
        apps.push(
            "a",
            AppShape::Chain,
            shapes::uniform_chain(1, 1.0, 1.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn req(id: u64, arrival: Slot, duration: Slot, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival,
            duration,
            ingress: NodeId(0),
            app: AppId(0),
            demand,
        }
    }

    #[test]
    fn accepts_everything_that_fits() {
        let (s, apps) = world();
        let penalty = RejectionPenalty::uniform(&apps, 1.0);
        // Two overlapping requests of 50 each: both fit in 200 total.
        let bound = offline_revenue_bound(
            &s,
            &apps,
            &penalty,
            vec![req(0, 0, 10, 50.0), req(1, 5, 10, 50.0)],
            (0, 100),
        );
        // v = 1·50·10 each.
        assert!((bound.revenue_bound - 1000.0).abs() < 1e-6);
        assert_eq!(bound.requests, 2);
        assert!((bound.total_revenue - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn caps_at_capacity_fractionally() {
        let (s, apps) = world();
        let penalty = RejectionPenalty::uniform(&apps, 1.0);
        // Three concurrent requests of 100 each against 200 total:
        // the fractional optimum accepts two's worth of footprint.
        let bound = offline_revenue_bound(
            &s,
            &apps,
            &penalty,
            vec![
                req(0, 3, 10, 100.0),
                req(1, 3, 10, 100.0),
                req(2, 3, 10, 100.0),
            ],
            (0, 100),
        );
        assert!((bound.revenue_bound - 2000.0).abs() < 1e-6);
        assert!(bound.revenue_bound < bound.total_revenue);
    }

    #[test]
    fn window_filters_arrivals() {
        let (s, apps) = world();
        let penalty = RejectionPenalty::uniform(&apps, 1.0);
        let bound = offline_revenue_bound(
            &s,
            &apps,
            &penalty,
            vec![req(0, 0, 10, 50.0), req(1, 20, 10, 50.0)],
            (10, 30),
        );
        assert_eq!(bound.requests, 1);
        assert!((bound.revenue_bound - 500.0).abs() < 1e-6);
    }

    #[test]
    fn empty_window_is_zero_with_unit_ratio() {
        let (s, apps) = world();
        let penalty = RejectionPenalty::uniform(&apps, 1.0);
        let bound = offline_revenue_bound(&s, &apps, &penalty, vec![], (0, 10));
        assert_eq!(bound.revenue_bound, 0.0);
        assert_eq!(bound.ratio(0.0), 1.0);
    }

    #[test]
    fn ratio_clamps_to_one() {
        let b = OfflineBound {
            revenue_bound: 100.0,
            total_revenue: 100.0,
            requests: 1,
        };
        assert_eq!(b.ratio(100.0 + 1e-9), 1.0);
        assert!((b.ratio(50.0) - 0.5).abs() < 1e-12);
    }
}
