//! Exact min-cost tree embedding under arbitrary element costs.
//!
//! This is the computational kernel shared by three components:
//!
//! * the **column-generation pricing problem** of PLAN-VNE: find the
//!   embedding minimizing dual-adjusted costs `cost(s) − π_s`;
//! * the **FULLG** baseline: min real-cost embedding under residual
//!   capacities (exact for a single request up to joint self-interference,
//!   which the caller re-checks);
//! * plan decomposition sanity checks.
//!
//! Because virtual networks are rooted trees, the optimum decomposes over
//! subtrees: `S[j][v]` is the cheapest embedding of the subtree rooted at
//! virtual node `j` given `j` is hosted on substrate node `v`, and the
//! child transfer `M[c][u] = min_v (pathcost(u→v) + S[c][v])` is computed
//! for all `u` simultaneously by one multi-source Dijkstra per virtual
//! link. Complexity: `O(|G_a| · |E_S| log |V_S|)` per embedding.

use vne_model::embedding::Embedding;
use vne_model::ids::{LinkId, NodeId};
use vne_model::load::LoadLedger;
use vne_model::policy::PlacementPolicy;
use vne_model::substrate::SubstrateNetwork;
use vne_model::vnet::VirtualNetwork;

/// Per-element cost vectors used by the embedding search.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementCosts {
    /// Cost per unit load per node, indexed by node id.
    pub node: Vec<f64>,
    /// Cost per unit load per link, indexed by link id.
    pub link: Vec<f64>,
}

impl ElementCosts {
    /// The substrate's real resource costs.
    pub fn from_substrate(s: &SubstrateNetwork) -> Self {
        Self {
            node: s.nodes().map(|(_, n)| n.cost).collect(),
            link: s.links().map(|(_, l)| l.cost).collect(),
        }
    }

    /// Dual-adjusted costs `cost(s) − π_s` for column-generation pricing.
    /// Capacity-row duals are ≤ 0 at optimality, so adjusted costs stay
    /// non-negative (clamped defensively for numerical noise).
    pub fn from_duals(s: &SubstrateNetwork, node_duals: &[f64], link_duals: &[f64]) -> Self {
        Self {
            node: s
                .nodes()
                .map(|(id, n)| (n.cost - node_duals[id.index()]).max(0.0))
                .collect(),
            link: s
                .links()
                .map(|(id, l)| (l.cost - link_duals[id.index()]).max(0.0))
                .collect(),
        }
    }
}

/// Restricts the search to elements with enough residual capacity for a
/// request of the given demand.
#[derive(Debug, Clone, Copy)]
pub struct CapacityFilter<'a> {
    /// Residual capacities.
    pub ledger: &'a LoadLedger,
    /// The request demand `d(r)` scaling every footprint.
    pub demand: f64,
}

const INF: f64 = f64::INFINITY;

/// Finds a minimum-cost embedding of `vnet` rooted at `ingress`.
///
/// Returns the embedding and its cost *under the given element costs*,
/// per unit demand. Returns `None` when no feasible embedding exists
/// (placement restrictions or, with a filter, insufficient capacity).
///
/// With a [`CapacityFilter`], per-element feasibility is enforced for
/// each virtual element separately; the caller must re-check the joint
/// footprint (several virtual elements may share one substrate element).
pub fn min_cost_embedding(
    substrate: &SubstrateNetwork,
    vnet: &VirtualNetwork,
    policy: &PlacementPolicy,
    ingress: NodeId,
    costs: &ElementCosts,
    filter: Option<CapacityFilter<'_>>,
) -> Option<(Embedding, f64)> {
    min_cost_embedding_with_exclusions(substrate, vnet, policy, ingress, costs, filter, &[])
}

/// [`min_cost_embedding`] with explicit placement exclusions: the listed
/// `(virtual node, substrate node)` assignments are forbidden. Used by
/// FULLG to resolve joint self-interference (two virtual nodes whose
/// combined load overloads one substrate node) without the full ILP.
pub fn min_cost_embedding_with_exclusions(
    substrate: &SubstrateNetwork,
    vnet: &VirtualNetwork,
    policy: &PlacementPolicy,
    ingress: NodeId,
    costs: &ElementCosts,
    filter: Option<CapacityFilter<'_>>,
    exclusions: &[(vne_model::ids::VnodeId, NodeId)],
) -> Option<(Embedding, f64)> {
    let n_sub = substrate.node_count();
    let n_virt = vnet.node_count();
    debug_assert_eq!(costs.node.len(), n_sub);
    debug_assert_eq!(costs.link.len(), substrate.link_count());

    // S[j][v], computed bottom-up.
    let mut subtree = vec![vec![0.0f64; n_sub]; n_virt];
    // For each virtual link e: the Dijkstra predecessor forest and the
    // arrival cost M (indexed by substrate node).
    let mut preds: Vec<Vec<Option<(NodeId, LinkId)>>> = vec![vec![None; n_sub]; vnet.link_count()];
    let mut transfer = vec![vec![INF; n_sub]; vnet.link_count()];

    let order = vnet.bfs_order();
    for &v in order.iter().rev() {
        let vnf = vnet.node(v);
        // Placement cost of v on each substrate node.
        let mut cost_here = vec![INF; n_sub];
        for (u, node) in substrate.nodes() {
            if v == VirtualNetwork::ROOT && u != ingress {
                continue; // (11): the root may only sit at the ingress.
            }
            if exclusions.iter().any(|&(xv, xu)| xv == v && xu == u) {
                continue;
            }
            let Some(eta) = policy.node_eta(vnf, node) else {
                continue;
            };
            if let Some(f) = &filter {
                let need = f.demand * vnf.beta * eta;
                if need > 0.0 && f.ledger.node_residual(u) < need {
                    continue;
                }
            }
            cost_here[u.index()] = vnf.beta * eta * costs.node[u.index()];
        }
        // Children transfers were computed in earlier (deeper) iterations.
        for &c in vnet.children(v) {
            let (_, e) = vnet.parent(c).expect("child has a parent");
            let m = &transfer[e.index()];
            for u in 0..n_sub {
                if cost_here[u].is_finite() {
                    cost_here[u] = if m[u].is_finite() {
                        cost_here[u] + m[u]
                    } else {
                        INF
                    };
                }
            }
        }
        subtree[v.index()] = cost_here;

        // Propagate to the parent via a multi-source Dijkstra over the
        // connecting virtual link, unless v is the root.
        if let Some((_, e)) = vnet.parent(v) {
            let vlink = vnet.link(e);
            let (m, pred) = multi_source_dijkstra(substrate, &subtree[v.index()], |l| {
                let link = substrate.link(l);
                let eta = policy.link_eta(vlink, link)?;
                if let Some(f) = &filter {
                    let need = f.demand * vlink.beta * eta;
                    if need > 0.0 && f.ledger.link_residual(l) < need {
                        return None;
                    }
                }
                Some(vlink.beta * eta * costs.link[l.index()])
            });
            transfer[e.index()] = m;
            preds[e.index()] = pred;
        }
    }

    let total = subtree[VirtualNetwork::ROOT.index()][ingress.index()];
    if !total.is_finite() {
        return None;
    }

    // Reconstruction, top-down.
    let mut node_map = vec![NodeId(0); n_virt];
    let mut link_paths = vec![Vec::new(); vnet.link_count()];
    node_map[VirtualNetwork::ROOT.index()] = ingress;
    let mut stack = vec![VirtualNetwork::ROOT];
    while let Some(v) = stack.pop() {
        let host = node_map[v.index()];
        for &c in vnet.children(v) {
            let (_, e) = vnet.parent(c).expect("child has a parent");
            // Walk the predecessor forest from the parent's host back to
            // the Dijkstra source (the child's host).
            let mut path = Vec::new();
            let mut cur = host;
            while let Some((prev, l)) = preds[e.index()][cur.index()] {
                path.push(l);
                cur = prev;
            }
            node_map[c.index()] = cur;
            link_paths[e.index()] = path;
            stack.push(c);
        }
    }

    let embedding = Embedding::new(node_map, link_paths);
    debug_assert!(embedding.validate(vnet, substrate, policy).is_ok());
    Some((embedding, total))
}

/// Multi-source Dijkstra: given initial costs `seed[v]` (∞ = not a
/// source) and a link-weight function (`None` = unusable), returns per
/// node the minimum of `seed[v] + pathcost(v→u)` and the predecessor
/// pointers (`None` at sources).
fn multi_source_dijkstra<F>(
    substrate: &SubstrateNetwork,
    seed: &[f64],
    mut weight: F,
) -> (Vec<f64>, Vec<Option<(NodeId, LinkId)>>)
where
    F: FnMut(LinkId) -> Option<f64>,
{
    let n = substrate.node_count();
    let mut dist = vec![INF; n];
    let mut pred: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut heap = std::collections::BinaryHeap::new();
    for (i, &s) in seed.iter().enumerate() {
        if s.is_finite() {
            dist[i] = s;
            heap.push(Entry {
                dist: s,
                node: NodeId::from_index(i),
            });
        }
    }
    while let Some(Entry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &(v, l) in substrate.neighbors(u) {
            let Some(w) = weight(l) else { continue };
            let nd = d + w;
            if nd < dist[v.index()] - 1e-15 {
                dist[v.index()] = nd;
                pred[v.index()] = Some((u, l));
                heap.push(Entry { dist: nd, node: v });
            }
        }
    }
    (dist, pred)
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    dist: f64,
    node: NodeId,
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::ids::VnodeId;
    use vne_model::substrate::Tier;
    use vne_model::vnet::VnfKind;

    /// e0(cost 50) - t1(cost 10) - c2(cost 1), link costs 1.
    fn line() -> SubstrateNetwork {
        let mut s = SubstrateNetwork::new("line");
        let a = s.add_node("e0", Tier::Edge, 1000.0, 50.0).unwrap();
        let b = s.add_node("t1", Tier::Transport, 1000.0, 10.0).unwrap();
        let c = s.add_node("c2", Tier::Core, 1000.0, 1.0).unwrap();
        s.add_link(a, b, 1000.0, 1.0).unwrap();
        s.add_link(b, c, 1000.0, 1.0).unwrap();
        s
    }

    #[test]
    fn single_vnf_goes_to_cheapest_reachable_node() {
        let s = line();
        // θ → f0 with β 10, link β 1 (cheap to haul): f0 should go to c2.
        let vn = VirtualNetwork::chain(&[10.0], &[1.0]).unwrap();
        let costs = ElementCosts::from_substrate(&s);
        let (emb, cost) = min_cost_embedding(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &costs,
            None,
        )
        .unwrap();
        assert_eq!(emb.node(VnodeId(1)), NodeId(2));
        // Cost: node 10·1 + path 2 links × 1·1 = 12.
        assert!((cost - 12.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_link_keeps_vnf_local() {
        let s = line();
        // Link β 100 vs node β 1: hauling costs 100/hop, stay at e0.
        let vn = VirtualNetwork::chain(&[1.0], &[100.0]).unwrap();
        let costs = ElementCosts::from_substrate(&s);
        let (emb, cost) = min_cost_embedding(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &costs,
            None,
        )
        .unwrap();
        assert_eq!(emb.node(VnodeId(1)), NodeId(0));
        assert!((cost - 50.0).abs() < 1e-9); // 1·50 node, no links
    }

    #[test]
    fn chain_costs_are_exact() {
        let s = line();
        let vn = VirtualNetwork::chain(&[10.0, 10.0], &[5.0, 5.0]).unwrap();
        let costs = ElementCosts::from_substrate(&s);
        let (emb, cost) = min_cost_embedding(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &costs,
            None,
        )
        .unwrap();
        // Optimal: both VNFs at c2: node 10·1·2 = 20, first link hauls 5
        // over 2 hops = 10, second link collocated = 0. Total 30.
        assert!((cost - 30.0).abs() < 1e-9, "cost {cost}");
        assert_eq!(emb.node(VnodeId(1)), NodeId(2));
        assert_eq!(emb.node(VnodeId(2)), NodeId(2));
        assert!(emb.path(vne_model::ids::VlinkId(1)).is_empty());
        // The returned cost matches the footprint cost under real prices.
        let fp_cost = emb.unit_cost(&vn, &s, &PlacementPolicy::default());
        assert!((fp_cost - cost).abs() < 1e-9);
    }

    #[test]
    fn capacity_filter_redirects_placement() {
        let s = line();
        let vn = VirtualNetwork::chain(&[10.0], &[1.0]).unwrap();
        let costs = ElementCosts::from_substrate(&s);
        let mut ledger = LoadLedger::new(&s);
        // Saturate c2 so only t1/e0 can host (demand 2 ⇒ need 20 CU).
        ledger.apply(
            &vne_model::embedding::Footprint::from_parts(vec![(NodeId(2), 990.0)], vec![]),
            1.0,
        );
        let (emb, _) = min_cost_embedding(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &costs,
            Some(CapacityFilter {
                ledger: &ledger,
                demand: 2.0,
            }),
        )
        .unwrap();
        assert_eq!(emb.node(VnodeId(1)), NodeId(1)); // t1, not saturated c2
    }

    #[test]
    fn link_capacity_filter_blocks_path() {
        let s = line();
        let vn = VirtualNetwork::chain(&[1.0], &[10.0]).unwrap();
        let costs = ElementCosts::from_substrate(&s);
        let mut ledger = LoadLedger::new(&s);
        // Saturate link t1-c2.
        ledger.apply(
            &vne_model::embedding::Footprint::from_parts(
                vec![],
                vec![(vne_model::ids::LinkId(1), 995.0)],
            ),
            1.0,
        );
        let (emb, _) = min_cost_embedding(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &costs,
            Some(CapacityFilter {
                ledger: &ledger,
                demand: 1.0,
            }),
        )
        .unwrap();
        // c2 unreachable for the virtual link: t1 or e0 only.
        assert_ne!(emb.node(VnodeId(1)), NodeId(2));
    }

    #[test]
    fn infeasible_when_everything_saturated() {
        let s = line();
        let vn = VirtualNetwork::chain(&[10.0], &[1.0]).unwrap();
        let costs = ElementCosts::from_substrate(&s);
        let mut ledger = LoadLedger::new(&s);
        for i in 0..3 {
            ledger.apply(
                &vne_model::embedding::Footprint::from_parts(vec![(NodeId(i), 999.5)], vec![]),
                1.0,
            );
        }
        assert!(min_cost_embedding(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &costs,
            Some(CapacityFilter {
                ledger: &ledger,
                demand: 1.0
            }),
        )
        .is_none());
    }

    #[test]
    fn gpu_vnf_is_routed_to_gpu_node() {
        let mut s = line();
        s.node_mut(NodeId(1)).gpu = true; // t1 is the GPU site
        let mut vn = VirtualNetwork::with_root();
        let (f0, _) = vn
            .add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, 5.0, 1.0)
            .unwrap();
        vn.add_vnf(f0, VnfKind::Gpu, 5.0, 1.0).unwrap();
        let costs = ElementCosts::from_substrate(&s);
        let (emb, _) = min_cost_embedding(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &costs,
            None,
        )
        .unwrap();
        assert_eq!(emb.node(VnodeId(2)), NodeId(1));
        // The standard VNF may not sit on the GPU node.
        assert_ne!(emb.node(VnodeId(1)), NodeId(1));
    }

    #[test]
    fn tree_children_split_optimally() {
        // Diamond-ish: ingress e0; two children under one head.
        let mut s = SubstrateNetwork::new("y");
        let e = s.add_node("e", Tier::Edge, 1000.0, 50.0).unwrap();
        let a = s.add_node("a", Tier::Core, 1000.0, 1.0).unwrap();
        let b = s.add_node("b", Tier::Core, 1000.0, 2.0).unwrap();
        s.add_link(e, a, 1000.0, 1.0).unwrap();
        s.add_link(e, b, 1000.0, 1.0).unwrap();
        s.add_link(a, b, 1000.0, 1.0).unwrap();
        let mut vn = VirtualNetwork::with_root();
        let (head, _) = vn
            .add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, 10.0, 1.0)
            .unwrap();
        vn.add_vnf(head, VnfKind::Standard, 10.0, 1.0).unwrap();
        vn.add_vnf(head, VnfKind::Standard, 10.0, 1.0).unwrap();
        let costs = ElementCosts::from_substrate(&s);
        let (emb, cost) =
            min_cost_embedding(&s, &vn, &PlacementPolicy::default(), e, &costs, None).unwrap();
        // All three VNFs at node a (cost 1): 30 + link θ→head 1 = 31.
        assert_eq!(emb.node(VnodeId(1)), a);
        assert_eq!(emb.node(VnodeId(2)), a);
        assert_eq!(emb.node(VnodeId(3)), a);
        assert!((cost - 31.0).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn root_only_network_embeds_trivially() {
        let s = line();
        let vn = VirtualNetwork::with_root();
        let costs = ElementCosts::from_substrate(&s);
        let (emb, cost) = min_cost_embedding(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(1),
            &costs,
            None,
        )
        .unwrap();
        assert_eq!(emb.ingress(), NodeId(1));
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn dual_adjusted_costs_shift_choice() {
        let s = line();
        let vn = VirtualNetwork::chain(&[10.0], &[1.0]).unwrap();
        // Congestion dual on c2 makes it expensive: π = −10 ⇒ cost 11.
        let mut node_duals = vec![0.0; 3];
        node_duals[2] = -10.0;
        let costs = ElementCosts::from_duals(&s, &node_duals, &[0.0, 0.0]);
        let (emb, _) = min_cost_embedding(
            &s,
            &vn,
            &PlacementPolicy::default(),
            NodeId(0),
            &costs,
            None,
        )
        .unwrap();
        // t1 at cost 10 now beats c2 at 11.
        assert_eq!(emb.node(VnodeId(1)), NodeId(1));
    }
}
