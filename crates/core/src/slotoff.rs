//! SLOTOFF: per-slot offline re-optimization (§IV-A).
//!
//! SLOTOFF sequentially computes an allocation for each time slot by
//! solving a separate OFF-VNE instance over the *active* requests `R(t)`
//! — the paper uses PRANOS for this, a near-optimal scalable offline
//! solver built on LP relaxation of aggregated demand plus rounding.
//! PRANOS is closed source; this implementation follows its published
//! structure using our column-generation LP (§DESIGN.md §6):
//!
//! 1. aggregate the active requests per class with their *actual* total
//!    demands;
//! 2. solve the PLAN-VNE LP (warm-started with the previous slot's
//!    columns);
//! 3. round: first-fit-decreasing of individual requests into the
//!    integral columns' budgets, previously accepted requests first.
//!
//! Ongoing requests may receive a completely different allocation every
//! slot (the paper notes this gives SLOTOFF an inherent advantage);
//! rejected requests are never reconsidered. In rare rounding shortfalls
//! a previously accepted request can fail to re-place and is counted as
//! preempted.

use std::collections::BTreeMap;

use vne_model::app::AppSet;
use vne_model::embedding::Embedding;
use vne_model::ids::{ClassId, RequestId};
use vne_model::load::LoadLedger;
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot};
use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};
use vne_model::substrate::SubstrateNetwork;

use crate::aggregate::AggregateDemand;
use crate::algorithm::{OnlineAlgorithm, SlotOutcome};
use crate::colgen::{solve_plan_with_columns, PlanVneConfig};

/// The SLOTOFF baseline.
#[derive(Debug, Clone)]
pub struct SlotOff {
    substrate: SubstrateNetwork,
    apps: AppSet,
    policy: PlacementPolicy,
    config: PlanVneConfig,
    loads: LoadLedger,
    /// Accepted, still-active requests.
    active: BTreeMap<RequestId, Request>,
    /// Column pool reused across slots (warm start).
    pool: Vec<(ClassId, Embedding)>,
    /// Cumulative LP statistics.
    pub total_rounds: usize,
}

impl SlotOff {
    /// Creates a SLOTOFF instance. `config.psi` should be the same
    /// rejection penalty used for cost accounting.
    pub fn new(
        substrate: SubstrateNetwork,
        apps: AppSet,
        policy: PlacementPolicy,
        config: PlanVneConfig,
    ) -> Self {
        let loads = LoadLedger::new(&substrate);
        Self {
            substrate,
            apps,
            policy,
            config,
            loads,
            active: BTreeMap::new(),
            pool: Vec::new(),
            total_rounds: 0,
        }
    }

    /// Number of active (accepted) requests.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

/// Checkpointing: mutable state is the load ledger, the active
/// requests, the warm-start column pool *in its exact order* (the pool
/// seeds the next slot's LP, so resumed runs must price the same
/// columns in the same sequence to stay byte-identical) and the
/// cumulative round counter.
impl Snapshot for SlotOff {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_blob(&self.loads.snapshot());
        // Ordered by request id (BTreeMap iteration order).
        w.write_seq(self.active.values());
        w.write_usize(self.pool.len());
        for (class, embedding) in &self.pool {
            w.write(class);
            w.write(embedding);
        }
        w.write_usize(self.total_rounds);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let loads_blob = r.read_blob()?;
        let active_list: Vec<Request> = r.read_seq()?;
        let pool_len = r.read_usize()?;
        let mut pool = Vec::with_capacity(pool_len);
        for _ in 0..pool_len {
            let class: ClassId = r.read()?;
            let embedding: Embedding = r.read()?;
            pool.push((class, embedding));
        }
        let total_rounds = r.read_usize()?;
        r.finish()?;
        self.loads.restore(&loads_blob)?;
        self.active = active_list.into_iter().map(|r| (r.id, r)).collect();
        self.pool = pool;
        self.total_rounds = total_rounds;
        Ok(())
    }
}

impl OnlineAlgorithm for SlotOff {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn name(&self) -> &str {
        "SLOTOFF"
    }

    fn snapshot_state(&self) -> Option<StateBlob> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        Snapshot::restore(self, blob)
    }

    fn process_slot(
        &mut self,
        _t: Slot,
        departures: &[Request],
        arrivals: &[Request],
    ) -> SlotOutcome {
        for d in departures {
            self.active.remove(&d.id);
        }
        if self.active.is_empty() && arrivals.is_empty() {
            self.loads = LoadLedger::new(&self.substrate);
            return SlotOutcome::default();
        }

        // Candidates: ongoing accepted requests (priority) then arrivals.
        let mut old: Vec<Request> = self.active.values().cloned().collect();
        old.sort_by(|a, b| {
            b.demand
                .partial_cmp(&a.demand)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        let mut new: Vec<Request> = arrivals.to_vec();
        new.sort_by(|a, b| {
            b.demand
                .partial_cmp(&a.demand)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });

        // Per-class actual demand aggregation.
        let mut demands: BTreeMap<ClassId, f64> = BTreeMap::new();
        for r in old.iter().chain(new.iter()) {
            *demands.entry(r.class()).or_insert(0.0) += r.demand;
        }
        let aggregate = AggregateDemand::from_demands(&demands);

        // The per-slot OFF-VNE LP, warm-started from the column pool.
        let (plan, stats) = solve_plan_with_columns(
            &self.substrate,
            &self.apps,
            &self.policy,
            &aggregate,
            &self.config,
            &self.pool,
        );
        self.total_rounds += stats.rounds;
        self.pool = plan
            .iter()
            .flat_map(|cp| {
                cp.columns
                    .iter()
                    .map(move |c| (cp.class, c.embedding.clone()))
            })
            .collect();

        // Rounding: re-place everything from scratch.
        let mut ledger = LoadLedger::new(&self.substrate);
        let mut budgets: BTreeMap<ClassId, Vec<f64>> = plan
            .iter()
            .map(|cp| (cp.class, cp.columns.iter().map(|c| c.budget).collect()))
            .collect();

        let mut place = |r: &Request, ledger: &mut LoadLedger| -> bool {
            let class = r.class();
            let Some(cp) = plan.class(class) else {
                return false;
            };
            let class_budgets = budgets.get_mut(&class).expect("budgets mirror the plan");
            // First fit within budget.
            for (i, col) in cp.columns.iter().enumerate() {
                if class_budgets[i] + 1e-9 >= r.demand && ledger.fits(&col.footprint, r.demand) {
                    ledger.apply(&col.footprint, r.demand);
                    class_budgets[i] -= r.demand;
                    return true;
                }
            }
            // Over-budget fit: any column the substrate still carries
            // (the LP budget is fractional; rounding needs this slack).
            for col in cp.columns.iter() {
                if ledger.fits(&col.footprint, r.demand) {
                    ledger.apply(&col.footprint, r.demand);
                    return true;
                }
            }
            false
        };

        let mut outcome = SlotOutcome::default();
        for r in &old {
            if !place(r, &mut ledger) {
                self.active.remove(&r.id);
                outcome.preempted.push(r.id);
            }
        }
        for r in &new {
            if place(r, &mut ledger) {
                self.active.insert(r.id, r.clone());
                outcome.accepted.push(r.id);
            } else {
                outcome.rejected.push(r.id);
            }
        }
        self.loads = ledger;
        debug_assert!(self.loads.check_invariants());
        outcome
    }

    fn loads(&self) -> &LoadLedger {
        &self.loads
    }

    /// SLOTOFF re-optimizes from scratch every slot, so churn is applied
    /// by shrinking its private substrate copy: the next per-slot LP and
    /// rounding pass see the reduced capacities and preempt whatever no
    /// longer fits. [`OnlineAlgorithm::footprint_of`] stays `None` — the
    /// engine leaves stranded-request eviction to this self-healing.
    fn apply_churn(&mut self, effective: &vne_model::churn::EffectiveCapacities) {
        for (i, &cap) in effective.node.iter().enumerate() {
            self.substrate
                .node_mut(vne_model::ids::NodeId::from_index(i))
                .capacity = cap;
        }
        for (i, &cap) in effective.link.iter().enumerate() {
            self.substrate
                .link_mut(vne_model::ids::LinkId::from_index(i))
                .capacity = cap;
        }
        self.loads.set_capacities(&effective.node, &effective.link);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::app::{shapes, AppShape};
    use vne_model::ids::{AppId, NodeId};
    use vne_model::substrate::Tier;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let t = s.add_node("t1", Tier::Transport, 300.0, 10.0).unwrap();
        let c = s.add_node("c2", Tier::Core, 900.0, 1.0).unwrap();
        s.add_link(e, t, 600.0, 1.0).unwrap();
        s.add_link(t, c, 600.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(2, 10.0, 2.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn req(id: u64, t: Slot, dur: Slot, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival: t,
            duration: dur,
            ingress: NodeId(0),
            app: AppId(0),
            demand,
        }
    }

    #[test]
    fn accepts_feasible_requests() {
        let (s, apps) = world();
        let mut so = SlotOff::new(s, apps, PlacementPolicy::default(), PlanVneConfig::new(1e4));
        let out = so.process_slot(0, &[], &[req(0, 0, 5, 3.0), req(1, 0, 5, 4.0)]);
        assert_eq!(out.accepted.len(), 2);
        assert!(out.rejected.is_empty());
        assert_eq!(so.active_count(), 2);
        // The LP places on the cheap core node.
        assert!(so.loads().node_load(NodeId(2)) > 0.0);
    }

    #[test]
    fn rejects_overload_and_keeps_old_requests() {
        let (s, apps) = world();
        let mut so = SlotOff::new(s, apps, PlacementPolicy::default(), PlanVneConfig::new(1e4));
        // Slot 0: large request filling most of the substrate.
        let r0 = req(0, 0, 10, 40.0); // 800 CU on the core node
        let out0 = so.process_slot(0, &[], std::slice::from_ref(&r0));
        assert_eq!(out0.accepted.len(), 1);
        // Slot 1: another large one cannot fit; the old one must stay.
        let out1 = so.process_slot(1, &[], &[req(1, 1, 10, 40.0)]);
        assert!(out1.rejected.contains(&RequestId(1)));
        assert!(out1.preempted.is_empty());
        assert_eq!(so.active_count(), 1);
    }

    #[test]
    fn departures_release_capacity() {
        let (s, apps) = world();
        let mut so = SlotOff::new(s, apps, PlacementPolicy::default(), PlanVneConfig::new(1e4));
        let r0 = req(0, 0, 2, 40.0);
        so.process_slot(0, &[], std::slice::from_ref(&r0));
        so.process_slot(2, std::slice::from_ref(&r0), &[]);
        let out = so.process_slot(3, &[], &[req(1, 3, 5, 40.0)]);
        assert_eq!(out.accepted.len(), 1);
    }

    #[test]
    fn reoptimizes_allocation_each_slot() {
        let (s, apps) = world();
        let mut so = SlotOff::new(s, apps, PlacementPolicy::default(), PlanVneConfig::new(1e4));
        // Many small requests over several slots; ledger is rebuilt each
        // slot and never violates capacity.
        let mut id = 0u64;
        for t in 0..5 {
            let arrivals: Vec<Request> = (0..6)
                .map(|_| {
                    id += 1;
                    req(id, t, 3, 2.0)
                })
                .collect();
            let departures: Vec<Request> = vec![];
            let out = so.process_slot(t, &departures, &arrivals);
            assert!(out.accepted.len() + out.rejected.len() == 6);
            assert!(so.loads().check_invariants());
        }
        // Warm-started pool keeps pricing rounds modest.
        assert!(so.total_rounds >= 5);
    }

    #[test]
    fn empty_slot_resets_loads() {
        let (s, apps) = world();
        let mut so = SlotOff::new(s, apps, PlacementPolicy::default(), PlanVneConfig::new(1e4));
        let r0 = req(0, 0, 1, 3.0);
        so.process_slot(0, &[], std::slice::from_ref(&r0));
        let out = so.process_slot(1, std::slice::from_ref(&r0), &[]);
        assert_eq!(out, SlotOutcome::default());
        assert_eq!(so.loads().node_load(NodeId(2)), 0.0);
    }
}
