//! Checkpoint interchangeability at the `k = 1` seam, pinned
//! deterministically: a single-shard coordinator and the monolithic
//! engine produce and accept each other's checkpoints, while a
//! multi-shard checkpoint is refused by both with a typed error (and
//! round-trips through the typed [`ShardCheckpoint`] instead).
//!
//! [`ShardCheckpoint`]: vne_model::state::ShardCheckpoint

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::churn::ChurnEvent;
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::shard::{PartitionAssignment, ShardedSubstrate};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::fullg::FullG;
use vne_shard::{engine_checkpoint, shard_checkpoint, ShardCoordinator};
use vne_sim::engine::{run_stream, run_stream_from};
use vne_sim::observe::{Checkpointer, WindowSummary};

const HORIZON: Slot = 10;
const CHECKPOINT_SLOT: Slot = 4;

fn apps() -> AppSet {
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps
}

fn fullg(s: &SubstrateNetwork) -> FullG {
    FullG::new(s.clone(), apps(), PlacementPolicy::default())
}

/// The span topology: a starved 2-node region and a roomy 2-node
/// region joined by one link (the cut under the 2-shard partition).
fn world() -> (SubstrateNetwork, [NodeId; 4]) {
    let mut s = SubstrateNetwork::new("span");
    let a0 = s.add_node("a0", Tier::Edge, 30.0, 1.0).unwrap();
    let a1 = s.add_node("a1", Tier::Edge, 30.0, 1.0).unwrap();
    let b0 = s.add_node("b0", Tier::Edge, 1000.0, 1.0).unwrap();
    let b1 = s.add_node("b1", Tier::Edge, 1000.0, 1.0).unwrap();
    s.add_link(a0, a1, 500.0, 1.0).unwrap();
    s.add_link(a1, b0, 500.0, 1.0).unwrap();
    s.add_link(b0, b1, 500.0, 1.0).unwrap();
    (s, [a0, a1, b0, b1])
}

/// A mixed workload with a churn window straddling the checkpoint slot.
fn events(nodes: &[NodeId; 4]) -> Vec<SlotEvents> {
    let mut events: Vec<SlotEvents> = (0..HORIZON)
        .map(|t| SlotEvents {
            slot: t,
            arrivals: vec![],
            churn: vec![],
        })
        .collect();
    for (id, (t, ingress, demand, duration)) in [
        (0, nodes[0], 1.0, 6),
        (1, nodes[2], 2.0, 4),
        (2, nodes[0], 5.0, 3),
        (5, nodes[3], 1.5, 4),
        (6, nodes[1], 1.0, 2),
    ]
    .into_iter()
    .enumerate()
    {
        events[t as usize].arrivals.push(Request {
            id: RequestId(id as u64),
            arrival: t,
            duration,
            ingress,
            app: AppId(0),
            demand,
        });
    }
    events[3].churn.push(ChurnEvent::NodeDrain {
        node: nodes[2],
        factor: 0.5,
    });
    events[7].churn.push(ChurnEvent::NodeUp(nodes[2]));
    events
}

fn window(s: &SubstrateNetwork) -> WindowSummary {
    WindowSummary::new(
        (0, HORIZON),
        vne_model::cost::RejectionPenalty::conservative(&apps(), s),
    )
}

fn sharded_k(s: &SubstrateNetwork, k: usize) -> ShardedSubstrate {
    let assignment = match k {
        1 => PartitionAssignment::single(s.node_count()).unwrap(),
        _ => PartitionAssignment::new(vec![0, 0, 1, 1]).unwrap(),
    };
    ShardedSubstrate::new(s, &assignment).unwrap()
}

/// The monolithic reference fingerprint for the shared scenario.
fn monolithic_reference(s: &SubstrateNetwork, ev: &[SlotEvents]) -> u64 {
    let mut algorithm = fullg(s);
    let mut w = window(s);
    let stats = run_stream(&mut algorithm, s, ev.iter().cloned(), &mut w);
    w.finish(&stats).fingerprint()
}

/// A checkpoint taken at `CHECKPOINT_SLOT` by a monolithic run.
fn monolithic_checkpoint(
    s: &SubstrateNetwork,
    ev: &[SlotEvents],
) -> vne_sim::engine::EngineCheckpoint {
    let mut algorithm = fullg(s);
    let mut cp = Checkpointer::every(CHECKPOINT_SLOT + 1, window(s));
    run_stream(
        &mut algorithm,
        s,
        ev.iter().take(CHECKPOINT_SLOT as usize + 1).cloned(),
        &mut cp,
    );
    assert_eq!(cp.checkpoints_taken(), 1, "{:?}", cp.last_error());
    cp.into_latest().unwrap()
}

/// A checkpoint taken at `CHECKPOINT_SLOT` by a `k`-shard coordinator.
fn sharded_checkpoint(
    s: &SubstrateNetwork,
    ev: &[SlotEvents],
    k: usize,
) -> vne_sim::engine::EngineCheckpoint {
    let sharded = sharded_k(s, k);
    let apps = apps();
    let mut coordinator = ShardCoordinator::new(sharded, move |_, local| {
        Box::new(FullG::new(
            local.clone(),
            apps.clone(),
            PlacementPolicy::default(),
        ))
    });
    let mut cp = Checkpointer::every(CHECKPOINT_SLOT + 1, window(s));
    coordinator.run(
        ev.iter().take(CHECKPOINT_SLOT as usize + 1).cloned(),
        &mut cp,
    );
    assert_eq!(cp.checkpoints_taken(), 1, "{:?}", cp.last_error());
    cp.into_latest().unwrap()
}

#[test]
fn monolithic_checkpoint_resumes_into_a_single_shard_coordinator() {
    let (s, nodes) = world();
    let ev = events(&nodes);
    let reference = monolithic_reference(&s, &ev);
    let checkpoint = monolithic_checkpoint(&s, &ev);

    let apps = apps();
    let mut w = window(&s);
    let mut resumed = ShardCoordinator::resume_from(
        sharded_k(&s, 1),
        move |_, local| {
            Box::new(FullG::new(
                local.clone(),
                apps.clone(),
                PlacementPolicy::default(),
            ))
        },
        &checkpoint,
        &mut w,
    )
    .unwrap();
    assert_eq!(resumed.next_slot(), u64::from(CHECKPOINT_SLOT) + 1);
    let stats = resumed.run(
        ev.iter()
            .filter(|e| u64::from(e.slot) > u64::from(CHECKPOINT_SLOT))
            .cloned(),
        &mut w,
    );
    assert_eq!(
        w.finish(&stats).fingerprint(),
        reference,
        "a k = 1 coordinator must finish a monolithic checkpoint byte-identically"
    );
}

#[test]
fn single_shard_checkpoint_resumes_into_the_monolithic_engine() {
    let (s, nodes) = world();
    let ev = events(&nodes);
    let reference = monolithic_reference(&s, &ev);
    let checkpoint = sharded_checkpoint(&s, &ev, 1);

    let mut algorithm = fullg(&s);
    let mut w = window(&s);
    let stats =
        run_stream_from(&checkpoint, &mut algorithm, &s, ev.iter().cloned(), &mut w).unwrap();
    assert_eq!(
        w.finish(&stats).fingerprint(),
        reference,
        "the monolithic engine must finish a k = 1 coordinator checkpoint byte-identically"
    );
}

#[test]
fn multi_shard_checkpoint_is_refused_outside_its_shape() {
    let (s, nodes) = world();
    let ev = events(&nodes);
    let checkpoint = sharded_checkpoint(&s, &ev, 2);

    // The monolithic engine refuses the packed composite.
    let mut algorithm = fullg(&s);
    let mut w = window(&s);
    assert!(
        run_stream_from(&checkpoint, &mut algorithm, &s, ev.iter().cloned(), &mut w).is_err(),
        "a packed multi-shard checkpoint must not restore into one engine"
    );

    // A k = 1 coordinator refuses it too.
    let single_apps = apps();
    let mut w = window(&s);
    assert!(
        ShardCoordinator::resume_from(
            sharded_k(&s, 1),
            move |_, local| {
                Box::new(FullG::new(
                    local.clone(),
                    single_apps.clone(),
                    PlacementPolicy::default(),
                ))
            },
            &checkpoint,
            &mut w,
        )
        .is_err(),
        "a packed multi-shard checkpoint must not restore into k = 1"
    );

    // It lifts to the typed form, round-trips, and resumes at k = 2.
    let typed = shard_checkpoint(&checkpoint).unwrap();
    assert_eq!(typed.shard_count(), 2);
    assert_eq!(typed.slot, CHECKPOINT_SLOT);
    let envelope = engine_checkpoint(&typed);

    let sharded = sharded_k(&s, 2);
    let shared_apps = apps();
    let build = move |_: vne_model::shard::ShardId, local: &SubstrateNetwork| {
        Box::new(FullG::new(
            local.clone(),
            shared_apps.clone(),
            PlacementPolicy::default(),
        )) as Box<dyn vne_olive::algorithm::OnlineAlgorithm>
    };
    // Uninterrupted sharded reference.
    let mut coordinator = ShardCoordinator::new(sharded.clone(), build.clone());
    let mut w = window(&s);
    let stats = coordinator.run(ev.iter().cloned(), &mut w);
    let reference = w.finish(&stats).fingerprint();

    let mut w = window(&s);
    let mut resumed = ShardCoordinator::resume_from(sharded, build, &envelope, &mut w).unwrap();
    let stats = resumed.run(
        ev.iter()
            .filter(|e| u64::from(e.slot) > u64::from(CHECKPOINT_SLOT))
            .cloned(),
        &mut w,
    );
    assert_eq!(w.finish(&stats).fingerprint(), reference);
}
