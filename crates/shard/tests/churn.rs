//! Sharded churn semantics: cut-link churn applied as idempotent
//! endpoint drains (no more panics), dead cuts skipped by the spanning
//! gateway, and the configured re-embed policy governing stranded
//! requests in every shard engine.

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::churn::ChurnEvent;
use vne_model::ids::{AppId, LinkId, NodeId, RequestId};
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::shard::{PartitionAssignment, ShardedSubstrate};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::fullg::FullG;
use vne_shard::ShardCoordinator;
use vne_sim::engine::{ChurnStats, ReembedKind, RequestOutcome, RequestStatus, SimObserver};

fn apps(chain: usize) -> AppSet {
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(chain, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps
}

fn fullg_coordinator(sharded: &ShardedSubstrate, chain: usize) -> ShardCoordinator {
    let apps = apps(chain);
    ShardCoordinator::new(sharded.clone(), move |_, local| {
        Box::new(FullG::new(
            local.clone(),
            apps.clone(),
            PlacementPolicy::default(),
        ))
    })
}

fn request(id: u64, arrival: Slot, duration: Slot, ingress: NodeId, demand: f64) -> Request {
    Request {
        id: RequestId(id),
        arrival,
        duration,
        ingress,
        app: AppId(0),
        demand,
    }
}

/// Merges per-slot churn counters and records arrival outcomes.
#[derive(Default)]
struct ChurnProbe {
    churn: ChurnStats,
    churn_slots: Vec<Slot>,
    outcomes: Vec<(RequestId, RequestStatus)>,
}

impl SimObserver for ChurnProbe {
    fn on_churn(&mut self, t: Slot, churn: &ChurnStats) {
        self.churn.absorb(churn);
        self.churn_slots.push(t);
    }

    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        self.outcomes.push((outcome.id, outcome.status));
    }
}

/// The span topology from the proptests, with the cut link captured: a
/// starved 2-node home shard (30 CU) and a roomy 2-node neighbor
/// (1000 CU), joined by one cut link.
fn span_world() -> (SubstrateNetwork, ShardedSubstrate, [NodeId; 4], LinkId) {
    let mut s = SubstrateNetwork::new("span");
    let a0 = s.add_node("a0", Tier::Edge, 30.0, 1.0).unwrap();
    let a1 = s.add_node("a1", Tier::Edge, 30.0, 1.0).unwrap();
    let b0 = s.add_node("b0", Tier::Edge, 1000.0, 1.0).unwrap();
    let b1 = s.add_node("b1", Tier::Edge, 1000.0, 1.0).unwrap();
    s.add_link(a0, a1, 500.0, 1.0).unwrap();
    let cut = s.add_link(a1, b0, 500.0, 1.0).unwrap();
    s.add_link(b0, b1, 500.0, 1.0).unwrap();
    let assignment = PartitionAssignment::new(vec![0, 0, 1, 1]).unwrap();
    let sharded = ShardedSubstrate::new(&s, &assignment).unwrap();
    (s, sharded, [a0, a1, b0, b1], cut)
}

/// Churn on a cut link no longer panics: Down drains both gateway
/// endpoints (stranding the spanning embedding hosted there), a dead
/// cut is skipped by the spanning gateway (the overflow is denied), and
/// Up restores spanning.
#[test]
fn cut_link_churn_drains_gateways_and_recovers() {
    let (_s, sharded, [a0, ..], cut) = span_world();
    let mut coordinator = fullg_coordinator(&sharded, 2);
    let mut probe = ChurnProbe::default();

    let mut events: Vec<SlotEvents> = (0..6)
        .map(|t| SlotEvents {
            slot: t,
            arrivals: vec![],
            churn: vec![],
        })
        .collect();
    // Overflows home, adopted by the neighbor through the cut gateway.
    events[0].arrivals.push(request(0, 0, 2, a0, 5.0));
    // The cut goes down: both gateway endpoints drain to factor 0.
    events[1].churn.push(ChurnEvent::LinkDown(cut));
    // Overflows home while the cut is dead: nobody can adopt it.
    events[2].arrivals.push(request(1, 2, 1, a0, 5.0));
    // The cut comes back: endpoints restore to factor 1.
    events[3].churn.push(ChurnEvent::LinkUp(cut));
    // Overflows home again: spanning works again.
    events[4].arrivals.push(request(2, 4, 1, a0, 5.0));

    coordinator.run(events, &mut probe);

    let span = coordinator.spanning_stats();
    assert_eq!(span.candidates, 3, "all three arrivals overflow home");
    assert_eq!(span.granted, 2, "spanning works before and after churn");
    assert_eq!(span.denied, 1, "the dead cut blocks the middle arrival");
    assert_eq!(
        probe.outcomes,
        vec![
            (RequestId(0), RequestStatus::Accepted),
            (RequestId(1), RequestStatus::Rejected),
            (RequestId(2), RequestStatus::Accepted),
        ]
    );
    // One NodeDrain lands on each endpoint shard per cut event.
    assert_eq!(
        probe.churn_slots,
        vec![1, 3],
        "churn reported on both cut events"
    );
    assert_eq!(probe.churn.events, 4, "two endpoint drains per cut event");
    assert_eq!(
        probe.churn.stranded, 1,
        "the adopted embedding at the gateway is stranded by the Down"
    );
    assert_eq!(
        probe.churn.evicted + probe.churn.reembedded,
        probe.churn.stranded,
        "every stranded request is resolved by the policy"
    );
}

/// Repeating the same cut-link event changes nothing: factors are
/// absolute, so the drain is idempotent.
#[test]
fn cut_link_churn_is_idempotent() {
    let (_s, sharded, [a0, ..], cut) = span_world();

    let run = |repeat: usize| {
        let mut coordinator = fullg_coordinator(&sharded, 2);
        let mut probe = ChurnProbe::default();
        let mut events: Vec<SlotEvents> = (0..3)
            .map(|t| SlotEvents {
                slot: t,
                arrivals: vec![],
                churn: vec![],
            })
            .collect();
        events[0].arrivals.push(request(0, 0, 3, a0, 5.0));
        for _ in 0..repeat {
            events[1].churn.push(ChurnEvent::LinkDown(cut));
        }
        events[2].arrivals.push(request(1, 2, 1, a0, 5.0));
        coordinator.run(events, &mut probe);
        (
            coordinator.spanning_stats(),
            probe.churn.stranded,
            probe.outcomes,
        )
    };

    let (span_once, stranded_once, outcomes_once) = run(1);
    let (span_thrice, stranded_thrice, outcomes_thrice) = run(3);
    assert_eq!(span_once, span_thrice);
    assert_eq!(stranded_once, stranded_thrice);
    assert_eq!(outcomes_once, outcomes_thrice);
}

/// Satellite: the configured [`ReembedKind`] governs stranded requests
/// in the shard engines — the same drain re-embeds under `Reembed` and
/// evicts under `Evict`, visible in the churn counters.
#[test]
fn reembed_policy_decides_stranded_fate() {
    let run = |kind: ReembedKind| {
        let mut s = SubstrateNetwork::new("drain");
        let a0 = s.add_node("a0", Tier::Edge, 1000.0, 1.0).unwrap();
        let a1 = s.add_node("a1", Tier::Edge, 1000.0, 1.0).unwrap();
        let b0 = s.add_node("b0", Tier::Edge, 1000.0, 1.0).unwrap();
        let b1 = s.add_node("b1", Tier::Edge, 1000.0, 1.0).unwrap();
        s.add_link(a0, a1, 500.0, 1.0).unwrap();
        s.add_link(a1, b0, 500.0, 1.0).unwrap();
        s.add_link(b0, b1, 500.0, 1.0).unwrap();
        let assignment = PartitionAssignment::new(vec![0, 0, 1, 1]).unwrap();
        let sharded = ShardedSubstrate::new(&s, &assignment).unwrap();
        // Single-vnode app: a stranded request always fits the other
        // (pristine) node, so `Reembed` must succeed.
        let mut coordinator = fullg_coordinator(&sharded, 1).with_reembed(kind);
        assert_eq!(coordinator.reembed_kind(), kind);
        let mut probe = ChurnProbe::default();
        let mut events: Vec<SlotEvents> = (0..3)
            .map(|t| SlotEvents {
                slot: t,
                arrivals: vec![],
                churn: vec![],
            })
            .collect();
        events[0].arrivals.push(request(0, 0, 5, a0, 5.0));
        // An internal node event on shard A; a0 hosts the embedding.
        events[1].churn.push(ChurnEvent::NodeDown(a0));
        coordinator.run(events, &mut probe);
        assert_eq!(
            probe.outcomes,
            vec![(RequestId(0), RequestStatus::Accepted)]
        );
        assert_eq!(probe.churn.stranded, 1, "the host node went down");
        probe.churn
    };

    let reembed = run(ReembedKind::Reembed);
    assert_eq!(
        (reembed.reembedded, reembed.evicted),
        (1, 0),
        "Reembed must move the stranded request to the pristine node"
    );
    let evict = run(ReembedKind::Evict);
    assert_eq!(
        (evict.reembedded, evict.evicted),
        (0, 1),
        "Evict must drop the stranded request without re-offering it"
    );
}
