//! k=1 sharding parity: a single-shard [`ShardCoordinator`] run over
//! the golden-diamond world must produce a window summary
//! *fingerprint-identical* to the unsharded engine
//! ([`Scenario::run_summary`]) for all four builtin algorithms — the
//! coordinator's `k = 1` path is a byte-level pass-through of
//! [`EngineState::step`], not an approximation of it.
//!
//! [`EngineState::step`]: vne_sim::EngineState::step

use vne_model::shard::{PartitionAssignment, ShardedSubstrate};
use vne_shard::ShardCoordinator;
use vne_sim::observe::WindowSummary;
use vne_sim::registry::{AlgorithmSpec, BuildContext};
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};
use vne_topology::zoo::golden_diamond;

/// The `golden_fingerprints` fixture: the tiny 4-node golden world with
/// the seed-11 configuration whose fingerprints are pinned in
/// `vne-sim`'s golden table.
fn golden_scenario(utilization: f64) -> Scenario {
    let (s, apps) = golden_diamond().unwrap();
    let mut config = ScenarioConfig::small(utilization).with_seed(11);
    config.history_slots = 60;
    config.test_slots = 25;
    config.measure_window = (2, 22);
    config.aggregation.bootstrap_replicates = 10;
    config.trace.mean_rate_per_node = 2.0;
    Scenario::new(s, apps, config)
}

#[test]
fn single_shard_run_matches_unsharded_fingerprint_for_all_builtins() {
    for utilization in [1.0, 1.4] {
        let scenario = golden_scenario(utilization);
        let assignment = PartitionAssignment::single(scenario.substrate.node_count()).unwrap();
        let sharded = ShardedSubstrate::new(&scenario.substrate, &assignment).unwrap();
        for alg in Algorithm::ALL {
            let expected = scenario.run_summary(alg).unwrap();

            // The k=1 local substrate is a bit-exact copy of the
            // source, so the registry-built algorithm (constructed
            // against the source) is the per-shard instance.
            let mut coordinator = ShardCoordinator::new(sharded.clone(), |_, _| {
                scenario
                    .registry()
                    .build(&AlgorithmSpec::from(alg), &BuildContext::new(&scenario))
                    .unwrap()
                    .algorithm
            });
            let mut window = WindowSummary::new(scenario.config.measure_window, scenario.penalty());
            let stats = coordinator.run(scenario.online_events(), &mut window);
            let got = window.finish(&stats);

            assert_eq!(
                got.fingerprint(),
                expected.fingerprint(),
                "{alg} at u={utilization}: k=1 sharded fingerprint {:#018x} != unsharded {:#018x} \
                 (arrivals {}/{}, rejected {}/{})",
                got.fingerprint(),
                expected.fingerprint(),
                got.arrivals,
                expected.arrivals,
                got.rejected,
                expected.rejected,
            );
            // No spanning machinery may even engage at k=1.
            assert_eq!(coordinator.spanning_stats(), Default::default());
        }
    }
}
