//! The runtime invariant auditor over the coordinator: a clean sharded
//! run audits clean, and a hand-broken cut map or churn-factor table is
//! caught by [`ShardCoordinator::audit`]. Under
//! `--features strict-invariants` the per-step hook enforces the same
//! audit, so a corrupted step panics instead of silently continuing.

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::invariant::audit_sharded;
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::shard::{PartitionAssignment, ShardId, ShardedSubstrate};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::fullg::FullG;
use vne_shard::ShardCoordinator;
use vne_sim::NullObserver;

fn apps() -> AppSet {
    let mut a = AppSet::new();
    a.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    a
}

/// Two 2-node shards joined by one cut link.
fn span_world() -> (SubstrateNetwork, ShardedSubstrate, [NodeId; 4]) {
    let mut s = SubstrateNetwork::new("span");
    let a0 = s.add_node("a0", Tier::Edge, 30.0, 1.0).unwrap();
    let a1 = s.add_node("a1", Tier::Edge, 30.0, 1.0).unwrap();
    let b0 = s.add_node("b0", Tier::Edge, 1000.0, 1.0).unwrap();
    let b1 = s.add_node("b1", Tier::Edge, 1000.0, 1.0).unwrap();
    s.add_link(a0, a1, 500.0, 1.0).unwrap();
    s.add_link(a1, b0, 500.0, 1.0).unwrap();
    s.add_link(b0, b1, 500.0, 1.0).unwrap();
    let assignment = PartitionAssignment::new(vec![0, 0, 1, 1]).unwrap();
    let sharded = ShardedSubstrate::new(&s, &assignment).unwrap();
    (s, sharded, [a0, a1, b0, b1])
}

fn coordinator(sharded: &ShardedSubstrate) -> ShardCoordinator {
    let apps = apps();
    ShardCoordinator::new(sharded.clone(), move |_, local| {
        Box::new(FullG::new(
            local.clone(),
            apps.clone(),
            PlacementPolicy::default(),
        ))
    })
}

fn request(id: u64, arrival: Slot, ingress: NodeId) -> Request {
    Request {
        id: RequestId(id),
        arrival,
        duration: 3,
        ingress,
        app: AppId(0),
        demand: 1.0,
    }
}

fn run_slots(coordinator: &mut ShardCoordinator, ingress: NodeId, slots: Slot) {
    for t in 0..slots {
        let event = SlotEvents {
            slot: t,
            arrivals: vec![request(t.into(), t, ingress)],
            churn: vec![],
        };
        coordinator.step(event, &mut NullObserver);
    }
}

#[test]
fn clean_sharded_run_audits_clean() {
    let (_s, sharded, [a0, ..]) = span_world();
    let mut coordinator = coordinator(&sharded);
    run_slots(&mut coordinator, a0, 5);
    let violations = coordinator.audit();
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn fresh_sharded_substrate_audits_clean() {
    let (_s, sharded, _) = span_world();
    assert!(audit_sharded(&sharded).is_empty());
}

#[test]
fn broken_cut_endpoint_is_caught() {
    let (_s, sharded, _) = span_world();
    let mut broken = sharded.clone();
    // Claim both cut endpoints live in shard 0: the link is no longer
    // a cut between two shards.
    broken.debug_cut_links_mut()[0].b.shard = ShardId(0);
    let violations = audit_sharded(&broken);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "shard-cut-internal"),
        "{violations:?}"
    );
}

#[test]
fn broken_node_home_is_caught() {
    let (_s, sharded, _) = span_world();
    let mut broken = sharded.clone();
    // Send global node 0 to the wrong shard: the global → local →
    // global round-trip no longer returns it.
    let other = broken.debug_node_home_mut()[2];
    broken.debug_node_home_mut()[0] = other;
    let violations = audit_sharded(&broken);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "shard-node-roundtrip"),
        "{violations:?}"
    );
}

#[test]
fn out_of_range_cut_factor_is_caught() {
    let (_s, sharded, [a0, ..]) = span_world();
    let mut coordinator = coordinator(&sharded);
    run_slots(&mut coordinator, a0, 2);
    coordinator.debug_cut_factor_mut()[0] = -3.0;
    let violations = coordinator.audit();
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "coordinator-cut-factor-range"),
        "{violations:?}"
    );
}

#[test]
fn cut_factor_shape_mismatch_is_caught() {
    let (_s, sharded, _) = span_world();
    let mut coordinator = coordinator(&sharded);
    coordinator.debug_cut_factor_mut().push(1.0);
    let violations = coordinator.audit();
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "coordinator-cut-factor-shape"),
        "{violations:?}"
    );
}

/// With the feature on, the per-step hook turns the same corruption
/// into a panic at the next step.
#[cfg(feature = "strict-invariants")]
#[test]
#[should_panic(expected = "strict-invariants")]
fn hook_panics_on_corrupted_cut_factor() {
    let (_s, sharded, [a0, ..]) = span_world();
    let mut coordinator = coordinator(&sharded);
    run_slots(&mut coordinator, a0, 2);
    coordinator.debug_cut_factor_mut()[0] = 7.5;
    let event = SlotEvents {
        slot: 2,
        arrivals: vec![],
        churn: vec![],
    };
    coordinator.step(event, &mut NullObserver);
}
