//! Spanning reserve/commit properties (nightly CI runs this at
//! `PROPTEST_CASES=1024`):
//!
//! * **Determinism** — two coordinator runs built from the same inputs
//!   produce bit-identical window summaries and identical spanning
//!   counters, whatever the workload: the reserve/commit tie-break
//!   order (candidates by ascending request id, neighbors by ascending
//!   shard id) leaves nothing to scheduling.
//! * **Conservation** — every arrival is decided exactly once, and the
//!   spanning counters are internally consistent.
//! * **Checkpoint/resume** — for `k ∈ {1, 4}` × all four builtin
//!   algorithms × churn landing inside the run, killing the run at a
//!   random slot, resuming from the [`Checkpointer`]'s checkpoint, and
//!   finishing produces a summary fingerprint (churn counters included)
//!   byte-identical to the uninterrupted run.
//!
//! Plus a pinned deterministic case where a request overflows its tiny
//! home shard and must be adopted by the neighbor.
//!
//! [`Checkpointer`]: vne_sim::observe::Checkpointer

use proptest::prelude::*;
use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::churn::ChurnEvent;
use vne_model::ids::{AppId, LinkId, NodeId, RequestId};
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::shard::{PartitionAssignment, ShardId, ShardedSubstrate};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::algorithm::OnlineAlgorithm;
use vne_olive::colgen::PlanVneConfig;
use vne_olive::fullg::FullG;
use vne_olive::slotoff::SlotOff;
use vne_olive::{Olive, OliveConfig, Plan};
use vne_shard::{ShardCoordinator, SpanningStats};
use vne_sim::engine::{RequestOutcome, RequestStatus, SimObserver};
use vne_sim::observe::{Checkpointer, WindowSummary};
use vne_topology::params::TierParams;
use vne_topology::partition::{GreedyEdgeCut, Partitioner};
use vne_topology::random::{erdos_renyi_spec, TierFractions};

fn apps() -> AppSet {
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps
}

/// Groups a request list into contiguous slot events over `horizon`.
fn events_of(requests: &[Request], horizon: Slot) -> Vec<SlotEvents> {
    (0..horizon)
        .map(|t| SlotEvents {
            slot: t,
            arrivals: requests
                .iter()
                .filter(|r| r.arrival == t)
                .cloned()
                .collect(),
            churn: vec![],
        })
        .collect()
}

/// Builds a fresh coordinator over `sharded` running FULLG per shard.
fn fullg_coordinator(sharded: &ShardedSubstrate) -> ShardCoordinator {
    let apps = apps();
    ShardCoordinator::new(sharded.clone(), move |_, local| {
        Box::new(FullG::new(
            local.clone(),
            apps.clone(),
            PlacementPolicy::default(),
        ))
    })
}

/// A per-shard builder for the `alg`-th builtin (OLIVE runs an empty
/// plan — the plan is configuration, and identical configuration on
/// both sides is all resume determinism needs).
fn builtin_builder(
    alg: usize,
) -> impl FnMut(ShardId, &SubstrateNetwork) -> Box<dyn OnlineAlgorithm> {
    let apps = apps();
    move |_, local| {
        let policy = PlacementPolicy::default();
        match alg {
            0 => Box::new(Olive::new(
                local.clone(),
                apps.clone(),
                policy,
                Plan::empty(),
                OliveConfig::default(),
            )),
            1 => Box::new(Olive::quickg(local.clone(), apps.clone(), policy)),
            2 => Box::new(FullG::new(local.clone(), apps.clone(), policy)),
            _ => Box::new(SlotOff::new(
                local.clone(),
                apps.clone(),
                policy,
                PlanVneConfig::new(1e4),
            )),
        }
    }
}

/// Injects a churn window into the stream: a link Down/Up pair (which
/// lands on a *cut* link whenever the seed picks one) bracketing a node
/// drain, so resume points can fall before, inside, and after folded
/// churn.
fn churned_events(
    requests: &[Request],
    horizon: Slot,
    s: &SubstrateNetwork,
    seed: u64,
) -> Vec<SlotEvents> {
    let mut events = events_of(requests, horizon);
    let link = LinkId((seed % s.link_count() as u64) as u32);
    let node = NodeId(((seed >> 8) % s.node_count() as u64) as u32);
    events[horizon as usize / 3]
        .churn
        .push(ChurnEvent::LinkDown(link));
    events[horizon as usize / 2]
        .churn
        .push(ChurnEvent::NodeDrain { node, factor: 0.5 });
    events[horizon as usize * 2 / 3]
        .churn
        .push(ChurnEvent::LinkUp(link));
    events
}

/// Counts decided arrivals by status.
#[derive(Default)]
struct DecisionCount {
    accepted: usize,
    rejected: usize,
}

impl SimObserver for DecisionCount {
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        match outcome.status {
            RequestStatus::Accepted => self.accepted += 1,
            _ => self.rejected += 1,
        }
    }
}

/// A sharded random world plus an overload-biased request trace.
fn arb_case() -> impl Strategy<Value = (SubstrateNetwork, usize, u64, Vec<Request>)> {
    (
        12usize..32,
        0u64..200,
        2usize..5,
        proptest::collection::vec((0u8..10, 1u8..6, 0u8..32, 1.0f64..9.0), 1..40),
    )
        .prop_map(|(n, seed, k, raw)| {
            let m = n + n / 3;
            let s = erdos_renyi_spec(n, m, seed, TierFractions::default())
                .build(&TierParams::paper(), seed ^ 0xc0de)
                .unwrap();
            let requests: Vec<Request> = raw
                .into_iter()
                .enumerate()
                .map(|(i, (t, dur, node, demand))| Request {
                    id: RequestId(i as u64),
                    arrival: u32::from(t),
                    duration: u32::from(dur),
                    ingress: NodeId(u32::from(node) % n as u32),
                    app: AppId(0),
                    demand,
                })
                .collect();
            (s, k, seed, requests)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same inputs → bit-identical summary and spanning counters.
    #[test]
    fn sharded_runs_are_deterministic((s, k, seed, mut requests) in arb_case()) {
        requests.sort_by_key(|r| (r.arrival, r.id));
        let assignment = GreedyEdgeCut { seed }.partition(&s, k).unwrap();
        let sharded = ShardedSubstrate::new(&s, &assignment).unwrap();
        let events = events_of(&requests, 12);

        let mut prints = Vec::new();
        let mut spans: Vec<SpanningStats> = Vec::new();
        for _ in 0..2 {
            let mut coordinator = fullg_coordinator(&sharded);
            let mut window = WindowSummary::new((0, 12), penalty(&s));
            let stats = coordinator.run(events.iter().cloned(), &mut window);
            prints.push(window.finish(&stats).fingerprint());
            spans.push(coordinator.spanning_stats());
        }
        prop_assert_eq!(prints[0], prints[1], "summary fingerprint drifted between reruns");
        prop_assert_eq!(spans[0], spans[1], "spanning counters drifted between reruns");
    }

    /// Every arrival is decided exactly once; spanning counters add up.
    #[test]
    fn every_arrival_is_decided_once((s, k, seed, requests) in arb_case()) {
        let assignment = GreedyEdgeCut { seed }.partition(&s, k).unwrap();
        let sharded = ShardedSubstrate::new(&s, &assignment).unwrap();
        let mut coordinator = fullg_coordinator(&sharded);
        let mut count = DecisionCount::default();
        let stats = coordinator.run(events_of(&requests, 12), &mut count);
        prop_assert_eq!(count.accepted + count.rejected, requests.len());
        prop_assert_eq!(stats.arrivals, requests.len());
        let span = coordinator.spanning_stats();
        prop_assert_eq!(span.granted + span.denied, span.candidates);
        prop_assert!(span.attempts >= span.candidates.min(1));
    }

    /// Kill a sharded run at a random slot, resume from the
    /// checkpoint, finish: the summary fingerprint (churn counters
    /// included) and the spanning counters are byte-identical to the
    /// uninterrupted run — for `k ∈ {1, 4}` and all four builtins,
    /// with churn (sometimes on cut links) landing inside the run.
    #[test]
    fn checkpoint_resume_is_byte_identical(
        (s, _, seed, mut requests) in arb_case(),
        k in any::<bool>().prop_map(|wide| if wide { 4usize } else { 1 }),
        alg in 0usize..4,
        cut in 0u32..12,
    ) {
        requests.sort_by_key(|r| (r.arrival, r.id));
        let assignment = if k == 1 {
            PartitionAssignment::single(s.node_count()).unwrap()
        } else {
            GreedyEdgeCut { seed }.partition(&s, k).unwrap()
        };
        let sharded = ShardedSubstrate::new(&s, &assignment).unwrap();
        let events = churned_events(&requests, 12, &s, seed);

        // Uninterrupted reference.
        let mut coordinator = ShardCoordinator::new(sharded.clone(), builtin_builder(alg));
        let mut window = WindowSummary::new((0, 12), penalty(&s));
        let stats = coordinator.run(events.iter().cloned(), &mut window);
        let reference = window.finish(&stats).fingerprint();
        let reference_span = coordinator.spanning_stats();

        // Kill at slot `cut`, keeping the checkpoint taken there.
        let mut cp = Checkpointer::every(cut + 1, WindowSummary::new((0, 12), penalty(&s)));
        let mut coordinator = ShardCoordinator::new(sharded.clone(), builtin_builder(alg));
        coordinator.run(events.iter().take(cut as usize + 1).cloned(), &mut cp);
        prop_assert_eq!(cp.checkpoints_taken(), 1, "checkpoint error: {:?}", cp.last_error());
        let checkpoint = cp.into_latest().unwrap();
        prop_assert_eq!(checkpoint.slot, cut);

        // Resume into fresh instances and finish the stream.
        let mut window = WindowSummary::new((0, 12), penalty(&s));
        let mut resumed = ShardCoordinator::resume_from(
            sharded.clone(),
            builtin_builder(alg),
            &checkpoint,
            &mut window,
        )
        .unwrap();
        prop_assert_eq!(resumed.next_slot(), u64::from(cut) + 1);
        let stats = resumed.run(
            events
                .iter()
                .filter(|ev| u64::from(ev.slot) > u64::from(cut))
                .cloned(),
            &mut window,
        );
        prop_assert_eq!(
            window.finish(&stats).fingerprint(),
            reference,
            "resumed fingerprint diverged from the uninterrupted run"
        );
        prop_assert_eq!(resumed.spanning_stats(), reference_span);
    }
}

fn penalty(s: &SubstrateNetwork) -> vne_model::cost::RejectionPenalty {
    vne_model::cost::RejectionPenalty::conservative(&apps(), s)
}

/// Two shards: a starved 2-node home and a roomy 2-node neighbor. A
/// demand-5 chain (50 CU per vnode) cannot fit the 30-CU home nodes but
/// fits the neighbor — the spanning path must adopt it, and the
/// observer must see it accepted under its *original* global class.
#[test]
fn overflowing_request_spans_to_the_neighbor_shard() {
    let mut s = SubstrateNetwork::new("span");
    let a0 = s.add_node("a0", Tier::Edge, 30.0, 1.0).unwrap();
    let a1 = s.add_node("a1", Tier::Edge, 30.0, 1.0).unwrap();
    let b0 = s.add_node("b0", Tier::Edge, 1000.0, 1.0).unwrap();
    let b1 = s.add_node("b1", Tier::Edge, 1000.0, 1.0).unwrap();
    s.add_link(a0, a1, 500.0, 1.0).unwrap();
    s.add_link(a1, b0, 500.0, 1.0).unwrap(); // the cut link
    s.add_link(b0, b1, 500.0, 1.0).unwrap();
    let assignment = PartitionAssignment::new(vec![0, 0, 1, 1]).unwrap();
    let sharded = ShardedSubstrate::new(&s, &assignment).unwrap();

    let mut coordinator = fullg_coordinator(&sharded);
    let request = Request {
        id: RequestId(0),
        arrival: 0,
        duration: 3,
        ingress: a0,
        app: AppId(0),
        demand: 5.0,
    };
    let mut probe = SpanProbe::default();
    coordinator.run(events_of(&[request], 2), &mut probe);

    let span = coordinator.spanning_stats();
    assert_eq!(span.candidates, 1, "home shard must reject in reserve");
    assert_eq!(span.granted, 1, "the neighbor must adopt");
    assert_eq!(span.denied, 0);
    let (status, class) = probe.seen.expect("the arrival was observed");
    assert_eq!(status, RequestStatus::Accepted);
    assert_eq!(class.ingress, a0, "class reports the original ingress");
    assert_eq!(coordinator.active_count(), 1);
}

#[derive(Default)]
struct SpanProbe {
    seen: Option<(RequestStatus, vne_model::ids::ClassId)>,
}

impl SimObserver for SpanProbe {
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        assert!(self.seen.is_none(), "exactly one arrival expected");
        self.seen = Some((outcome.status, outcome.class));
    }
}
