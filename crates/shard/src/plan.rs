//! Per-shard plan builds through the [`DemandEstimator`] seam.
//!
//! The unsharded planning pipeline observes the whole history stream
//! into one estimator and solves one PLAN-VNE over the full substrate —
//! `O(total classes)` memory and one big LP. Sharded planning splits
//! both axes: [`shard_demands`] routes the history stream so each
//! shard's estimator only ever sees the classes homed on it (planning
//! memory stays `O(classes per shard)`), and [`shard_plans`] solves one
//! independent PLAN-VNE per shard-local substrate on the
//! [`cell_map`](vne_sim::runner::cell_map) worker pool.

use std::collections::BTreeMap;

use rand::RngCore;
use vne_model::app::AppSet;
use vne_model::ids::ClassId;
use vne_model::policy::PlacementPolicy;
use vne_model::request::SlotEvents;
use vne_model::shard::ShardedSubstrate;
use vne_olive::aggregate::AggregateDemand;
use vne_olive::colgen::{solve_plan, PlanSolveStats, PlanVneConfig};
use vne_olive::plan::Plan;
use vne_workload::estimator::DemandEstimator;

/// Routes a history stream through one [`DemandEstimator`] per shard
/// and finalizes each into a shard-local [`AggregateDemand`].
///
/// Each arrival is observed only by the estimator of the shard owning
/// its ingress, with the class ingress remapped to the shard-local node
/// id (so the demands feed [`shard_plans`] directly). Every estimator
/// observes every slot — possibly empty — so per-slot rate windows stay
/// consistent across shards. Estimators are finalized in ascending
/// shard order against the single shared `rng`, making the whole
/// routine deterministic in `(stream, estimators, rng)`.
pub fn shard_demands(
    sharded: &ShardedSubstrate,
    history: impl IntoIterator<Item = SlotEvents>,
    mut make: impl FnMut() -> Box<dyn DemandEstimator>,
    rng: &mut dyn RngCore,
) -> Vec<AggregateDemand> {
    let k = sharded.shard_count();
    let mut estimators: Vec<Box<dyn DemandEstimator>> = (0..k).map(|_| make()).collect();
    for event in history {
        let mut routed: Vec<SlotEvents> = (0..k).map(|_| SlotEvents::empty(event.slot)).collect();
        for r in &event.arrivals {
            let home = sharded.home_of(r.ingress);
            let mut local = r.clone();
            local.ingress = home.local;
            routed[home.shard.index()].arrivals.push(local);
        }
        for (estimator, ev) in estimators.iter_mut().zip(&routed) {
            estimator.observe_slot(ev);
        }
    }
    estimators
        .iter_mut()
        .map(|estimator| {
            let demands: BTreeMap<ClassId, f64> = estimator.finalize(rng);
            AggregateDemand::from_demands(&demands)
        })
        .collect()
}

/// Solves one PLAN-VNE per shard over its local substrate and demand,
/// in parallel on the shard pool. Results are in shard order.
pub fn shard_plans(
    sharded: &ShardedSubstrate,
    apps: &AppSet,
    policy: &PlacementPolicy,
    demands: &[AggregateDemand],
    config: &PlanVneConfig,
) -> Vec<(Plan, PlanSolveStats)> {
    assert_eq!(
        demands.len(),
        sharded.shard_count(),
        "one demand per shard required"
    );
    let cells: Vec<usize> = (0..sharded.shard_count()).collect();
    vne_sim::runner::cell_map(&cells, |&s| {
        let local = sharded.shard(vne_model::shard::ShardId::from_index(s));
        solve_plan(local, apps, policy, &demands[s], config)
    })
}
