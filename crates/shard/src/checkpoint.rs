//! Sharded checkpoint semantics: the typed coordinator cursors and the
//! conversions between the two serialized forms.
//!
//! The wire container ([`ShardCheckpoint`]) lives in `vne_model::state`
//! next to the codec it is built from; this module owns what the blobs
//! *mean*. A sharded run checkpoints through the unmodified
//! [`Checkpointer`] path: the coordinator's commit hook hands out a
//! deferred [`EngineView`] whose capture packs the per-shard state into
//! the two blobs of a regular [`EngineCheckpoint`]
//! ([`ShardCheckpoint::pack`]), so checkpoint files, sinks and tooling
//! built for monolithic runs carry sharded state unchanged. The
//! conversions here move losslessly between that envelope and the typed
//! [`ShardCheckpoint`] (which also has a standalone file format of its
//! own, magic `VNESHRD1`).
//!
//! [`Checkpointer`]: vne_sim::observe::Checkpointer
//! [`EngineView`]: vne_sim::engine::EngineView

use vne_model::ids::{NodeId, RequestId};
use vne_model::state::{ShardCheckpoint, StateBlob, StateError, StateReader, StateWriter};
use vne_sim::engine::{EngineCheckpoint, StreamStats};

use crate::coordinator::SpanningStats;

/// The coordinator's own mutable state, beyond the per-shard engines:
/// merged run counters, spanning-protocol counters, the pending
/// spanning bookkeeping (adopted request → original global ingress),
/// and the cut-link churn factors. Serialized into
/// [`ShardCheckpoint::coordinator`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CoordinatorCursors {
    pub stats: StreamStats,
    pub spanning: SpanningStats,
    /// Sorted by request id (canonical order for the hash map).
    pub rerouted: Vec<(RequestId, NodeId)>,
    /// Churn factor per cut link, in cut-link order (1.0 = pristine).
    pub cut_factor: Vec<f64>,
    /// Own churn factor of each tracked cut-endpoint node (global id),
    /// sorted by node id.
    pub node_factor: Vec<(NodeId, f64)>,
}

impl CoordinatorCursors {
    pub fn encode(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_u32(self.stats.slots_run);
        w.write_usize(self.stats.arrivals);
        w.write_usize(self.stats.peak_active);
        w.write_f64(self.stats.online_secs);
        w.write_bool(self.stats.stopped_early);
        w.write_usize(self.spanning.candidates);
        w.write_usize(self.spanning.attempts);
        w.write_usize(self.spanning.granted);
        w.write_usize(self.spanning.denied);
        w.write(&self.rerouted);
        w.write(&self.cut_factor);
        w.write(&self.node_factor);
        w.finish()
    }

    pub fn decode(blob: &StateBlob) -> Result<Self, StateError> {
        let mut r = StateReader::new(blob);
        let stats = StreamStats {
            slots_run: r.read_u32()?,
            arrivals: r.read_usize()?,
            peak_active: r.read_usize()?,
            online_secs: r.read_f64()?,
            stopped_early: r.read_bool()?,
        };
        let spanning = SpanningStats {
            candidates: r.read_usize()?,
            attempts: r.read_usize()?,
            granted: r.read_usize()?,
            denied: r.read_usize()?,
        };
        let rerouted: Vec<(RequestId, NodeId)> = r.read()?;
        let cut_factor: Vec<f64> = r.read()?;
        let node_factor: Vec<(NodeId, f64)> = r.read()?;
        r.finish()?;
        Ok(Self {
            stats,
            spanning,
            rerouted,
            cut_factor,
            node_factor,
        })
    }
}

/// Lifts the engine-checkpoint envelope a [`Checkpointer`] produced
/// over a `k > 1` coordinator into the typed [`ShardCheckpoint`].
///
/// # Errors
///
/// Returns a [`StateError`] when the checkpoint's engine blob is not a
/// packed shard composite (e.g. it came from a monolithic run or a
/// `k = 1` coordinator, both of which serialize plain engine state).
///
/// [`Checkpointer`]: vne_sim::observe::Checkpointer
pub fn shard_checkpoint(checkpoint: &EngineCheckpoint) -> Result<ShardCheckpoint, StateError> {
    ShardCheckpoint::unpack(
        checkpoint.slot,
        &checkpoint.algorithm,
        &checkpoint.engine,
        &checkpoint.algorithm_state,
        checkpoint.observer_state.clone(),
    )
}

/// Packs a typed [`ShardCheckpoint`] back into the engine-checkpoint
/// envelope — the inverse of [`shard_checkpoint`], byte-identical
/// round trip.
pub fn engine_checkpoint(checkpoint: &ShardCheckpoint) -> EngineCheckpoint {
    let (engine, algorithm_state) = checkpoint.pack();
    EngineCheckpoint {
        slot: checkpoint.slot,
        algorithm: checkpoint.algorithm.clone(),
        engine,
        algorithm_state,
        observer_state: checkpoint.observer_state.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursors_roundtrip_blob_equal() {
        let cursors = CoordinatorCursors {
            stats: StreamStats {
                slots_run: 9,
                arrivals: 40,
                peak_active: 7,
                online_secs: 1.25,
                stopped_early: false,
            },
            spanning: SpanningStats {
                candidates: 5,
                attempts: 11,
                granted: 3,
                denied: 2,
            },
            rerouted: vec![(RequestId(2), NodeId(17)), (RequestId(9), NodeId(1))],
            cut_factor: vec![1.0, 0.5, 0.0],
            node_factor: vec![(NodeId(3), 0.25)],
        };
        let blob = cursors.encode();
        let back = CoordinatorCursors::decode(&blob).unwrap();
        assert_eq!(back, cursors);
        assert_eq!(back.encode(), blob, "snapshot → restore → snapshot");
    }

    #[test]
    fn envelope_conversions_roundtrip() {
        let blob_of = |x: u64| {
            let mut w = StateWriter::new();
            w.write_u64(x);
            w.finish()
        };
        let typed = ShardCheckpoint {
            slot: 4,
            algorithm: "QUICKG".into(),
            partition: vec![0, 0, 1],
            engines: vec![blob_of(1), blob_of(2)],
            algorithms: vec![blob_of(3), blob_of(4)],
            coordinator: blob_of(5),
            observer_state: blob_of(6),
        };
        let envelope = engine_checkpoint(&typed);
        assert_eq!(envelope.slot, 4);
        assert_eq!(shard_checkpoint(&envelope).unwrap(), typed);
        // Envelope bytes survive the generic checkpoint codec too.
        let reparsed = EngineCheckpoint::from_bytes(&envelope.to_bytes()).unwrap();
        assert_eq!(shard_checkpoint(&reparsed).unwrap(), typed);
    }
}
