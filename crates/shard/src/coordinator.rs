//! The cross-shard coordinator: per-shard engines behind one stream.
//!
//! [`ShardCoordinator`] drives one [`vne_sim::EngineState`] + algorithm
//! instance per shard through the engine's public single-slot seam
//! ([`EngineState::step`]) and presents them to an observer as a single
//! run. Per slot:
//!
//! 1. **Route** — every arrival goes to the shard owning its ingress
//!    (its class set), with the ingress remapped to the shard-local id;
//!    churn events are routed the same way (churn on *cut* links is
//!    unsupported and panics).
//! 2. **Reserve** — shards with arrivals run a *trial* step on a clone
//!    of their engine state and a scratch copy of their algorithm
//!    (restored from a state snapshot, so the live algorithm is never
//!    touched). Arrivals the home shard would reject become *spanning
//!    candidates*.
//! 3. **Span** — candidates are offered to neighboring shards in
//!    deterministic tie-break order (candidates by ascending request
//!    id, neighbors by ascending shard id), entering through the
//!    cheapest cut-link gateway. The first neighbor whose trial accepts
//!    adopts the request; candidates nobody adopts stay home and are
//!    rejected there for real.
//! 4. **Commit** — every shard steps its live engine exactly once with
//!    its final arrival list. Commit is authoritative: the reserve
//!    phase only *routes*, it reserves no resources, so a non-monotone
//!    algorithm may in principle decide differently at commit time (the
//!    builtins are deterministic in (state, slot events), so their
//!    commit replays the trial exactly).
//! 5. **Report** — the coordinator synthesizes the global observer
//!    dispatch: one `on_slot_start`, merged churn counters, arrival
//!    outcomes in original stream order with classes mapped back to
//!    global ids, preemptions in (shard, local-order), then one
//!    `on_slot_end` with summed [`SlotMetrics`].
//!
//! With `k = 1` the coordinator collapses to a pass-through of the
//! unsharded engine — same state transitions, same observer dispatch —
//! so a single-shard run is fingerprint-identical to [`run_stream`]
//! (pinned by the golden parity suite).
//!
//! Trials and commits across shards run on [`cell_map`]'s scoped worker
//! pool (the shard pool). Stranded-by-churn requests are always
//! re-offered ([`ReembedAll`]); checkpointing of sharded runs
//! (`on_slot_committed`) is only wired for `k = 1` — both are recorded
//! follow-ups in the ROADMAP.
//!
//! [`run_stream`]: vne_sim::engine::run_stream
//! [`cell_map`]: vne_sim::runner::cell_map

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use vne_model::churn::ChurnEvent;
use vne_model::ids::{ClassId, NodeId, RequestId};
use vne_model::load::LoadLedger;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::shard::{LinkHome, ShardId, ShardedSubstrate};
use vne_model::substrate::SubstrateNetwork;
use vne_olive::algorithm::{OnlineAlgorithm, SlotOutcome};
use vne_sim::engine::{
    ReembedAll, RequestOutcome, RequestStatus, SimControl, SimObserver, SlotMetrics, SlotStep,
    StreamStats,
};
use vne_sim::runner::cell_map;
use vne_sim::{EngineState, NullObserver};

/// Counters for the two-phase reserve/commit spanning protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanningStats {
    /// Arrivals the home shard's reserve trial rejected (spanning
    /// candidates).
    pub candidates: usize,
    /// Neighbor-shard trial steps run for candidates.
    pub attempts: usize,
    /// Candidates adopted by a neighboring shard.
    pub granted: usize,
    /// Candidates no neighbor adopted (rejected at home for real).
    pub denied: usize,
}

/// One shard's planning/admission island: the engine state plus the
/// live algorithm, and a scratch algorithm instance for reserve trials.
struct ShardEngine {
    state: EngineState,
    primary: Box<dyn OnlineAlgorithm>,
    /// Same configuration as `primary`; overwritten from a `primary`
    /// snapshot before every trial. `None` when the algorithm does not
    /// support snapshots — spanning is then disabled (home-only mode).
    scratch: Option<Box<dyn OnlineAlgorithm>>,
}

/// Coordinates per-shard engines over a partitioned substrate — see the
/// [module docs](self) for the slot protocol.
pub struct ShardCoordinator {
    sharded: ShardedSubstrate,
    engines: Vec<Mutex<ShardEngine>>,
    stats: StreamStats,
    spanning: SpanningStats,
    /// Original global ingress of requests adopted by a foreign shard,
    /// for mapping their outcome classes back to global ids (bounded by
    /// the number of spanning grants).
    rerouted: HashMap<RequestId, NodeId>,
    /// Name + an all-zero ledger handed to `on_slot_end` for `k > 1`
    /// (per-shard ledgers cannot be merged through the trait).
    stub: StubAlgorithm,
    /// Cumulative wall-clock spent in [`ShardCoordinator::step`] and
    /// the number of steps — the measured per-slot cost probe that
    /// sizes the pipeline when the shard pool leaves cores idle.
    step_secs: f64,
    steps: u32,
}

impl ShardCoordinator {
    /// Builds one engine per shard, calling `build` with each shard id
    /// and its local substrate (twice per shard when the algorithm
    /// supports state snapshots — the second instance is the reserve
    /// trial scratch).
    pub fn new(
        sharded: ShardedSubstrate,
        mut build: impl FnMut(ShardId, &SubstrateNetwork) -> Box<dyn OnlineAlgorithm>,
    ) -> Self {
        let mut engines = Vec::with_capacity(sharded.shard_count());
        let mut name = String::new();
        for (sid, local) in sharded.shards() {
            let primary = build(sid, local);
            if name.is_empty() {
                name = primary.name().to_string();
            }
            let scratch = primary
                .snapshot_state()
                .is_some()
                .then(|| build(sid, local));
            engines.push(Mutex::new(ShardEngine {
                state: EngineState::fresh(),
                primary,
                scratch,
            }));
        }
        let stub = StubAlgorithm {
            name,
            loads: LoadLedger::new(sharded.source()),
        };
        Self {
            sharded,
            engines,
            stats: StreamStats::default(),
            spanning: SpanningStats::default(),
            rerouted: HashMap::new(),
            stub,
            step_secs: 0.0,
            steps: 0,
        }
    }

    /// The partitioned substrate this coordinator runs on.
    pub fn sharded(&self) -> &ShardedSubstrate {
        &self.sharded
    }

    /// Merged run counters so far (what a [`run`](Self::run) returns).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Spanning-protocol counters so far.
    pub fn spanning_stats(&self) -> SpanningStats {
        self.spanning
    }

    /// Currently active requests summed over all shards.
    pub fn active_count(&self) -> usize {
        self.engines
            .iter()
            .map(|e| e.lock().unwrap().state.active_count())
            .sum()
    }

    /// Measured mean wall-clock per coordinated slot (the pipeline
    /// sizing probe), or `None` before the first step.
    pub fn mean_step_secs(&self) -> Option<f64> {
        (self.steps > 0).then(|| self.step_secs / f64::from(self.steps))
    }

    /// Runs the coordinator over a whole event stream, honoring early
    /// stops, and returns the merged stats. Wall-clock is folded into
    /// [`StreamStats::online_secs`] like the unsharded engine loop.
    pub fn run<O>(
        &mut self,
        events: impl IntoIterator<Item = SlotEvents>,
        observer: &mut O,
    ) -> StreamStats
    where
        O: SimObserver + ?Sized,
    {
        let start = Instant::now();
        for event in events {
            let control = self.step(event, observer);
            self.stats.online_secs = start.elapsed().as_secs_f64();
            if control == SimControl::Stop {
                self.stats.stopped_early = true;
                break;
            }
        }
        self.stats
    }

    /// Advances every shard through exactly one slot (the protocol in
    /// the [module docs](self)) and fans the merged result out to
    /// `observer`.
    ///
    /// # Panics
    ///
    /// Panics like [`EngineState::step`] on non-increasing slots, and
    /// on churn events targeting cut links (unsupported).
    pub fn step<O>(&mut self, event: SlotEvents, observer: &mut O) -> SimControl
    where
        O: SimObserver + ?Sized,
    {
        let started = Instant::now();
        let control = if self.engines.len() == 1 {
            self.step_single(event, observer)
        } else {
            self.step_sharded(event, observer)
        };
        self.step_secs += started.elapsed().as_secs_f64();
        self.steps += 1;
        control
    }

    /// `k = 1` pass-through: the local substrate is a bit-exact copy of
    /// the source with identical ids, so stepping the one engine with
    /// the unmodified event replays the unsharded engine byte for byte.
    fn step_single<O>(&mut self, event: SlotEvents, observer: &mut O) -> SimControl
    where
        O: SimObserver + ?Sized,
    {
        let engine = self.engines[0].get_mut().unwrap();
        let ShardEngine { state, primary, .. } = engine;
        let (_, control) = state.step(
            &mut **primary,
            self.sharded.shard(ShardId(0)),
            event,
            observer,
            &mut ReembedAll,
        );
        let (online, stopped) = (self.stats.online_secs, self.stats.stopped_early);
        self.stats = state.stats();
        self.stats.online_secs = online;
        self.stats.stopped_early = stopped;
        observer.on_slot_committed(&state.view(&**primary));
        control
    }

    fn step_sharded<O>(&mut self, event: SlotEvents, observer: &mut O) -> SimControl
    where
        O: SimObserver + ?Sized,
    {
        let t = event.slot;
        let k = self.engines.len();
        // Original stream position of each arrival: outcomes are
        // reported back in this order.
        let position: HashMap<RequestId, usize> = event
            .arrivals
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id, i))
            .collect();

        // 1. Route arrivals and churn to their home shards.
        let mut arrivals: Vec<Vec<Request>> = vec![Vec::new(); k];
        for r in &event.arrivals {
            let home = self.sharded.home_of(r.ingress);
            let mut local = r.clone();
            local.ingress = home.local;
            arrivals[home.shard.index()].push(local);
        }
        let churn = self.route_churn(&event.churn);

        // 2. Reserve: trial-step shards that have arrivals; their
        // rejects become spanning candidates (skipped entirely when the
        // algorithm cannot snapshot — home-only mode).
        let spanning_enabled = self.engines[0].lock().unwrap().scratch.is_some();
        let mut candidates: Vec<(ShardId, Request)> = Vec::new();
        if spanning_enabled {
            let busy: Vec<usize> = (0..k).filter(|&s| !arrivals[s].is_empty()).collect();
            let rejected: Vec<Vec<RequestId>> = cell_map(&busy, |&s| {
                self.trial(ShardId::from_index(s), t, &arrivals[s], &churn[s])
                    .rejected
            });
            for (&s, ids) in busy.iter().zip(rejected) {
                for id in ids {
                    let i = arrivals[s].iter().position(|r| r.id == id).unwrap();
                    candidates.push((ShardId::from_index(s), arrivals[s][i].clone()));
                }
            }
            // Deterministic tie-break: candidates by ascending id.
            candidates.sort_by_key(|(_, r)| r.id);
        }

        // 3. Span: offer each candidate to neighbors (ascending shard
        // id) through the cheapest-cut gateway; first trial-accept
        // adopts. Sequential so each trial sees earlier adoptions.
        for (home, r) in candidates {
            self.spanning.candidates += 1;
            let mut adopted = None;
            for &nb in self.sharded.neighbors(home) {
                let gw = self
                    .sharded
                    .gateway(home, nb)
                    .expect("neighboring shards share a cut link");
                let mut moved = r.clone();
                moved.ingress = gw.local;
                self.spanning.attempts += 1;
                let mut offer = arrivals[nb.index()].clone();
                offer.push(moved.clone());
                let outcome = self.trial(nb, t, &offer, &churn[nb.index()]);
                if outcome.accepted.contains(&r.id) {
                    adopted = Some((nb, moved));
                    break;
                }
            }
            match adopted {
                Some((nb, moved)) => {
                    self.spanning.granted += 1;
                    // The home engine never sees the request; the
                    // original global ingress is kept for reporting.
                    arrivals[home.index()].retain(|a| a.id != r.id);
                    arrivals[nb.index()].push(moved);
                    let global = self.sharded.global_node(home, r.ingress);
                    self.rerouted.insert(r.id, global);
                }
                None => self.spanning.denied += 1,
            }
        }

        // 4. Commit: every shard steps its live engine exactly once.
        let all: Vec<usize> = (0..k).collect();
        let steps: Vec<SlotStep> = cell_map(&all, |&s| {
            let mut engine = self.engines[s].lock().unwrap();
            let ShardEngine { state, primary, .. } = &mut *engine;
            let ev = SlotEvents {
                slot: t,
                arrivals: arrivals[s].clone(),
                churn: churn[s].clone(),
            };
            let (step, _) = state.step(
                &mut **primary,
                self.sharded.shard(ShardId::from_index(s)),
                ev,
                &mut NullObserver,
                &mut ReembedAll,
            );
            step
        });

        // 5. Report: synthesize the global observer dispatch.
        observer.on_slot_start(t);
        let mut merged_churn = vne_sim::engine::ChurnStats::default();
        for step in &steps {
            merged_churn.absorb(&step.churn);
        }
        if !merged_churn.is_empty() {
            observer.on_churn(t, &merged_churn);
        }
        let mut outcomes: Vec<(usize, RequestOutcome)> = Vec::new();
        for (s, step) in steps.iter().enumerate() {
            for o in &step.arrivals {
                let global = self.globalize(ShardId::from_index(s), o);
                outcomes.push((position[&o.id], global));
            }
        }
        outcomes.sort_by_key(|&(pos, _)| pos);
        for (_, outcome) in &outcomes {
            observer.on_arrival(outcome);
        }
        let mut metrics = SlotMetrics::default();
        for (s, step) in steps.iter().enumerate() {
            for o in &step.preemptions {
                observer.on_preemption(&self.globalize(ShardId::from_index(s), o));
            }
            metrics.requested_demand += step.metrics.requested_demand;
            metrics.allocated_demand += step.metrics.allocated_demand;
            metrics.resource_cost += step.metrics.resource_cost;
        }
        let control = observer.on_slot_end(t, &metrics, &self.stub);

        // Merge run counters. `on_slot_committed` is not emitted for
        // k > 1 — sharded checkpointing is a recorded follow-up.
        self.stats.slots_run = t + 1;
        self.stats.arrivals += event.arrivals.len();
        let active: usize = self
            .engines
            .iter_mut()
            .map(|e| e.get_mut().unwrap().state.active_count())
            .sum();
        self.stats.peak_active = self.stats.peak_active.max(active);
        control
    }

    /// Runs one reserve trial for `shard`: clones the engine state,
    /// restores the live algorithm's snapshot into the scratch
    /// instance, and steps the clone — the live engine is untouched.
    fn trial(
        &self,
        shard: ShardId,
        t: Slot,
        arrivals: &[Request],
        churn: &[ChurnEvent],
    ) -> SlotOutcome {
        let mut engine = self.engines[shard.index()].lock().unwrap();
        let ShardEngine {
            state,
            primary,
            scratch,
        } = &mut *engine;
        let scratch = scratch.as_mut().expect("trial requires a scratch instance");
        let blob = primary
            .snapshot_state()
            .expect("scratch exists only for snapshot-capable algorithms");
        scratch
            .restore_state(&blob)
            .expect("snapshot round-trips into the same configuration");
        let mut trial_state = state.clone();
        let ev = SlotEvents {
            slot: t,
            arrivals: arrivals.to_vec(),
            churn: churn.to_vec(),
        };
        let (step, _) = trial_state.step(
            &mut **scratch,
            self.sharded.shard(shard),
            ev,
            &mut NullObserver,
            &mut ReembedAll,
        );
        let mut outcome = SlotOutcome::default();
        for o in &step.arrivals {
            match o.status {
                RequestStatus::Accepted => outcome.accepted.push(o.id),
                _ => outcome.rejected.push(o.id),
            }
        }
        outcome
    }

    /// Routes global churn events to per-shard local events.
    ///
    /// # Panics
    ///
    /// Panics on events targeting cut links: a cut link belongs to no
    /// shard engine, so its capacity change cannot be applied locally.
    fn route_churn(&self, churn: &[ChurnEvent]) -> Vec<Vec<ChurnEvent>> {
        let mut routed: Vec<Vec<ChurnEvent>> = vec![Vec::new(); self.engines.len()];
        for ev in churn {
            let (shard, local) = match ev {
                ChurnEvent::NodeDown(n)
                | ChurnEvent::NodeUp(n)
                | ChurnEvent::NodeDrain { node: n, .. } => {
                    let home = self.sharded.home_of(*n);
                    let local = match ev {
                        ChurnEvent::NodeDown(_) => ChurnEvent::NodeDown(home.local),
                        ChurnEvent::NodeUp(_) => ChurnEvent::NodeUp(home.local),
                        ChurnEvent::NodeDrain { factor, .. } => ChurnEvent::NodeDrain {
                            node: home.local,
                            factor: *factor,
                        },
                        _ => unreachable!(),
                    };
                    (home.shard, local)
                }
                ChurnEvent::LinkDown(l)
                | ChurnEvent::LinkUp(l)
                | ChurnEvent::LinkDrain { link: l, .. } => match self.sharded.link_home(*l) {
                    LinkHome::Internal { shard, local } => {
                        let mapped = match ev {
                            ChurnEvent::LinkDown(_) => ChurnEvent::LinkDown(local),
                            ChurnEvent::LinkUp(_) => ChurnEvent::LinkUp(local),
                            ChurnEvent::LinkDrain { factor, .. } => ChurnEvent::LinkDrain {
                                link: local,
                                factor: *factor,
                            },
                            _ => unreachable!(),
                        };
                        (shard, mapped)
                    }
                    LinkHome::Cut { .. } => {
                        panic!("churn on cut link {l:?} is unsupported in sharded runs")
                    }
                },
            };
            routed[shard.index()].push(local);
        }
        routed
    }

    /// Maps a shard-local outcome back to global ids: the class ingress
    /// becomes the request's original global ingress.
    fn globalize(&self, shard: ShardId, o: &RequestOutcome) -> RequestOutcome {
        let ingress = match self.rerouted.get(&o.id) {
            Some(&original) => original,
            None => self.sharded.global_node(shard, o.class.ingress),
        };
        let mut out = o.clone();
        out.class = ClassId::new(o.class.app, ingress);
        out
    }
}

/// Stands in for "the algorithm" in `on_slot_end` when `k > 1`: the
/// real algorithms are per-shard and their ledgers cannot be merged
/// through the trait, so observers get the shared name and an all-zero
/// ledger over the *source* substrate. Observers needing drill-down
/// ([`OnlineAlgorithm::as_any`]) see `None`, same as the pipelined
/// engine's detached stub.
struct StubAlgorithm {
    name: String,
    loads: LoadLedger,
}

impl OnlineAlgorithm for StubAlgorithm {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_slot(
        &mut self,
        _t: Slot,
        _departures: &[Request],
        _arrivals: &[Request],
    ) -> SlotOutcome {
        unreachable!("the coordinator stub never processes slots")
    }

    fn loads(&self) -> &LoadLedger {
        &self.loads
    }
}
