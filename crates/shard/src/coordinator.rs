//! The cross-shard coordinator: per-shard engines behind one stream.
//!
//! [`ShardCoordinator`] drives one [`vne_sim::EngineState`] + algorithm
//! instance per shard through the engine's public single-slot seam
//! ([`EngineState::step`]) and presents them to an observer as a single
//! run. Per slot:
//!
//! 1. **Route** — every arrival goes to the shard owning its ingress
//!    (its class set), with the ingress remapped to the shard-local id.
//!    Churn events on internal nodes/links route the same way; churn on
//!    a *cut* link is translated into capacity drains applied
//!    idempotently to both gateway-endpoint nodes (see
//!    [Cut-link churn](#cut-link-churn) below).
//! 2. **Reserve** — shards with arrivals run a *trial* step on a clone
//!    of their engine state and a scratch copy of their algorithm
//!    (restored from a state snapshot, so the live algorithm is never
//!    touched). Arrivals the home shard would reject become *spanning
//!    candidates*.
//! 3. **Span** — candidates are offered to neighboring shards in
//!    deterministic tie-break order (candidates by ascending request
//!    id, neighbors by ascending shard id), entering through the
//!    cheapest *live* cut-link gateway (cuts churned down to factor 0
//!    are skipped; ties break by global link id). The first neighbor
//!    whose trial accepts adopts the request; candidates nobody adopts
//!    stay home and are rejected there for real.
//! 4. **Commit** — every shard steps its live engine exactly once with
//!    its final arrival list. Commit is authoritative: the reserve
//!    phase only *routes*, it reserves no resources, so a non-monotone
//!    algorithm may in principle decide differently at commit time (the
//!    builtins are deterministic in (state, slot events), so their
//!    commit replays the trial exactly).
//! 5. **Report** — the coordinator synthesizes the global observer
//!    dispatch: one `on_slot_start`, merged churn counters, arrival
//!    outcomes in original stream order with classes mapped back to
//!    global ids, preemptions in (shard, local-order), then one
//!    `on_slot_end` with summed [`SlotMetrics`], and finally one
//!    `on_slot_committed` carrying a deferred [`EngineView`]: its
//!    capture — every shard's engine + algorithm snapshot plus the
//!    coordinator's cursors, packed as a [`ShardCheckpoint`] — is
//!    materialized only if an observer actually checkpoints the slot,
//!    so a [`Checkpointer`] works unmodified at any cadence and
//!    un-checkpointed slots pay nothing.
//!
//! With `k = 1` the coordinator collapses to a pass-through of the
//! unsharded engine — same state transitions, same observer dispatch,
//! same (monolithic) checkpoint bytes — so a single-shard run is
//! fingerprint-identical to [`run_stream`] (pinned by the golden parity
//! suite) and its checkpoints are interchangeable with monolithic
//! [`EngineCheckpoint`] resumes.
//!
//! # Cut-link churn
//!
//! A cut link belongs to no shard engine, so its capacity change cannot
//! be applied locally as a link event. Instead, Down/Up/Drain on a cut
//! link updates the coordinator's per-cut factor and is applied as a
//! [`ChurnEvent::NodeDrain`] on *both* gateway-endpoint nodes, with the
//! effective factor of an endpoint node being the minimum of its own
//! node-churn factor and the factors of all its incident cut links (the
//! tightest constraint governs; node events targeting endpoint nodes
//! are translated the same way so a later `NodeUp` cannot erase a cut
//! drain). Factors are absolute, so the translation is idempotent like
//! the engine's own churn folding. Requests stranded by the drain —
//! including spanning embeddings that entered through the gateway — go
//! through the configured [`ReembedPolicy`] inside each shard engine's
//! regular churn machinery, and dead cuts (factor 0) are skipped by the
//! spanning gateway selection until churned back up.
//!
//! Trials and commits across shards run on [`cell_map`]'s scoped worker
//! pool (the shard pool). Stranded-by-churn requests go through the
//! configured [`ReembedKind`] policy
//! ([`ShardCoordinator::with_reembed`]; re-embed-all by default, like
//! the unsharded engine).
//!
//! [`run_stream`]: vne_sim::engine::run_stream
//! [`cell_map`]: vne_sim::runner::cell_map
//! [`Checkpointer`]: vne_sim::observe::Checkpointer
//! [`ChurnEvent::NodeDrain`]: vne_model::churn::ChurnEvent::NodeDrain
//! [`ShardCheckpoint`]: vne_model::state::ShardCheckpoint
//! [`EngineCheckpoint`]: vne_sim::engine::EngineCheckpoint
//! [`ReembedPolicy`]: vne_sim::engine::ReembedPolicy

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use vne_model::churn::ChurnEvent;
use vne_model::ids::{ClassId, NodeId, RequestId};
use vne_model::invariant::InvariantViolation;
use vne_model::load::LoadLedger;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::shard::{LinkHome, ShardId, ShardNodeRef, ShardedSubstrate};
use vne_model::state::{ShardCheckpoint, Snapshot, StateBlob, StateError};
use vne_model::substrate::SubstrateNetwork;
use vne_olive::algorithm::{OnlineAlgorithm, SlotOutcome};
use vne_sim::engine::{
    restore_engine, EngineCapture, EngineCheckpoint, EngineView, ReembedKind, RequestOutcome,
    RequestStatus, SimControl, SimObserver, SlotMetrics, SlotStep, StreamStats,
};
use vne_sim::runner::cell_map;
use vne_sim::{EngineState, NullObserver};

use crate::checkpoint::CoordinatorCursors;

/// Counters for the two-phase reserve/commit spanning protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanningStats {
    /// Arrivals the home shard's reserve trial rejected (spanning
    /// candidates).
    pub candidates: usize,
    /// Neighbor-shard trial steps run for candidates.
    pub attempts: usize,
    /// Candidates adopted by a neighboring shard.
    pub granted: usize,
    /// Candidates no neighbor adopted (rejected at home for real).
    pub denied: usize,
}

/// One shard's planning/admission island: the engine state plus the
/// live algorithm, and a scratch algorithm instance for reserve trials.
struct ShardEngine {
    state: EngineState,
    primary: Box<dyn OnlineAlgorithm>,
    /// Same configuration as `primary`; overwritten from a `primary`
    /// snapshot before every trial. `None` when the algorithm does not
    /// support snapshots — spanning is then disabled (home-only mode).
    scratch: Option<Box<dyn OnlineAlgorithm>>,
}

/// Coordinates per-shard engines over a partitioned substrate — see the
/// [module docs](self) for the slot protocol.
pub struct ShardCoordinator {
    sharded: ShardedSubstrate,
    engines: Vec<Mutex<ShardEngine>>,
    stats: StreamStats,
    spanning: SpanningStats,
    /// Original global ingress of requests adopted by a foreign shard,
    /// for mapping their outcome classes back to global ids (bounded by
    /// the number of spanning grants).
    rerouted: BTreeMap<RequestId, NodeId>,
    /// The policy deciding the fate of churn-stranded requests, in
    /// every shard engine and every trial.
    reembed: ReembedKind,
    /// Churn factor per cut link (absolute, 1.0 = pristine) — the
    /// coordinator-side fold of cut-link churn events.
    cut_factor: Vec<f64>,
    /// Own node-churn factor of cut-endpoint nodes (global ids),
    /// tracked so node and cut constraints compose by minimum. Nodes
    /// not incident to a cut are never tracked (their events pass
    /// through untranslated).
    node_factor: BTreeMap<NodeId, f64>,
    /// Global endpoint node → indices of its incident cut links.
    /// Derived from `sharded` at construction, not checkpointed.
    incident_cuts: BTreeMap<NodeId, Vec<usize>>,
    /// Name + an all-zero ledger handed to `on_slot_end` for `k > 1`
    /// (per-shard ledgers cannot be merged through the trait).
    stub: StubAlgorithm,
    /// Cumulative wall-clock spent in [`ShardCoordinator::step`] and
    /// the number of steps — the measured per-slot cost probe that
    /// sizes the pipeline when the shard pool leaves cores idle.
    /// Not checkpointed: a resumed run re-probes from scratch.
    step_secs: f64,
    steps: u32,
}

impl ShardCoordinator {
    /// Builds one engine per shard, calling `build` with each shard id
    /// and its local substrate (twice per shard when the algorithm
    /// supports state snapshots — the second instance is the reserve
    /// trial scratch).
    pub fn new(
        sharded: ShardedSubstrate,
        mut build: impl FnMut(ShardId, &SubstrateNetwork) -> Box<dyn OnlineAlgorithm>,
    ) -> Self {
        let mut engines = Vec::with_capacity(sharded.shard_count());
        let mut name = String::new();
        for (sid, local) in sharded.shards() {
            let primary = build(sid, local);
            if name.is_empty() {
                name = primary.name().to_string();
            }
            let scratch = primary
                .snapshot_state()
                .is_some()
                .then(|| build(sid, local));
            engines.push(Mutex::new(ShardEngine {
                state: EngineState::fresh(),
                primary,
                scratch,
            }));
        }
        let stub = StubAlgorithm {
            name,
            loads: LoadLedger::new(sharded.source()),
        };
        let mut incident_cuts: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, cut) in sharded.cut_links().iter().enumerate() {
            for end in [cut.a, cut.b] {
                let global = sharded.global_node(end.shard, end.local);
                incident_cuts.entry(global).or_default().push(i);
            }
        }
        let cut_factor = vec![1.0; sharded.cut_count()];
        Self {
            sharded,
            engines,
            stats: StreamStats::default(),
            spanning: SpanningStats::default(),
            rerouted: BTreeMap::new(),
            reembed: ReembedKind::default(),
            cut_factor,
            node_factor: BTreeMap::new(),
            incident_cuts,
            stub,
            step_secs: 0.0,
            steps: 0,
        }
    }

    /// Selects the [`ReembedKind`] policy for churn-stranded requests
    /// (builder style; re-embed-all by default). A resumed run must use
    /// the same policy as the checkpointed one to stay byte-identical,
    /// same as the unsharded engine's resume contract.
    pub fn with_reembed(mut self, kind: ReembedKind) -> Self {
        self.reembed = kind;
        self
    }

    /// The configured re-embed policy kind.
    pub fn reembed_kind(&self) -> ReembedKind {
        self.reembed
    }

    /// The partitioned substrate this coordinator runs on.
    pub fn sharded(&self) -> &ShardedSubstrate {
        &self.sharded
    }

    /// Merged run counters so far (what a [`run`](Self::run) returns).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Spanning-protocol counters so far.
    pub fn spanning_stats(&self) -> SpanningStats {
        self.spanning
    }

    /// Currently active requests summed over all shards.
    pub fn active_count(&self) -> usize {
        self.engines
            .iter()
            .map(|e| e.lock().unwrap().state.active_count())
            .sum()
    }

    /// The next slot this coordinator will accept: 0 when fresh, the
    /// checkpoint slot + 1 after [`ShardCoordinator::resume_from`]. A
    /// resume feeds `run` the original stream with slots below this
    /// filtered out.
    pub fn next_slot(&self) -> u64 {
        self.engines
            .iter()
            .map(|e| e.lock().unwrap().state.next_slot())
            .max()
            .unwrap_or(0)
    }

    /// Measured mean wall-clock per coordinated slot (the pipeline
    /// sizing probe), or `None` before the first step.
    pub fn mean_step_secs(&self) -> Option<f64> {
        (self.steps > 0).then(|| self.step_secs / f64::from(self.steps))
    }

    /// Runs the coordinator over a whole event stream, honoring early
    /// stops, and returns the merged stats. Wall-clock is folded into
    /// [`StreamStats::online_secs`] like the unsharded engine loop.
    pub fn run<O>(
        &mut self,
        events: impl IntoIterator<Item = SlotEvents>,
        observer: &mut O,
    ) -> StreamStats
    where
        O: SimObserver + ?Sized,
    {
        // audit:allow(D2, "set_online_secs feeder: measures the run to stamp stats.online_secs")
        let start = Instant::now();
        for event in events {
            let control = self.step(event, observer);
            self.stats.online_secs = start.elapsed().as_secs_f64();
            if control == SimControl::Stop {
                self.stats.stopped_early = true;
                break;
            }
        }
        self.stats
    }

    /// Advances every shard through exactly one slot (the protocol in
    /// the [module docs](self)) and fans the merged result out to
    /// `observer`.
    ///
    /// # Panics
    ///
    /// Panics like [`EngineState::step`] on non-increasing slots.
    pub fn step<O>(&mut self, event: SlotEvents, observer: &mut O) -> SimControl
    where
        O: SimObserver + ?Sized,
    {
        // audit:allow(D2, "per-slot cost probe sizing the pipeline; never feeds results")
        let started = Instant::now();
        let control = if self.engines.len() == 1 {
            self.step_single(event, observer)
        } else {
            self.step_sharded(event, observer)
        };
        self.step_secs += started.elapsed().as_secs_f64();
        self.steps += 1;

        #[cfg(feature = "strict-invariants")]
        vne_model::invariant::enforce("shard coordinator step", &self.audit());

        control
    }

    /// Audits the coordinator's derived and churn-folded state:
    ///
    /// 1. the sharded substrate's global↔local maps round-trip and
    ///    every link is internal XOR cut
    ///    ([`vne_model::invariant::audit_sharded`]);
    /// 2. the cut-link churn-factor table covers exactly the cut links,
    ///    with every factor in `[0, 1]` (factors are absolute, so
    ///    re-folding the same event is idempotent — a factor outside
    ///    the unit interval means an event was compounded instead);
    /// 3. tracked node factors are in `[0, 1]` and belong to
    ///    cut-endpoint nodes (others must pass through untranslated);
    /// 4. the incident-cuts index is exactly the inverse of the
    ///    cut-link endpoint table;
    /// 5. re-route cursors reference valid global nodes.
    ///
    /// Returns the violations instead of panicking so tests can inspect
    /// them; the `strict-invariants` per-step hook feeds the result
    /// through [`vne_model::invariant::enforce`].
    pub fn audit(&self) -> Vec<InvariantViolation> {
        let mut out = vne_model::invariant::audit_sharded(&self.sharded);

        if self.cut_factor.len() != self.sharded.cut_count() {
            out.push(InvariantViolation {
                invariant: "coordinator-cut-factor-shape",
                detail: format!(
                    "{} cut factors over {} cut links",
                    self.cut_factor.len(),
                    self.sharded.cut_count()
                ),
            });
        }
        for (i, &f) in self.cut_factor.iter().enumerate() {
            if !(0.0..=1.0).contains(&f) {
                out.push(InvariantViolation {
                    invariant: "coordinator-cut-factor-range",
                    detail: format!("cut {i}: factor {f} outside [0, 1]"),
                });
            }
        }
        for (&node, &f) in &self.node_factor {
            if !(0.0..=1.0).contains(&f) {
                out.push(InvariantViolation {
                    invariant: "coordinator-node-factor-range",
                    detail: format!("node {node}: factor {f} outside [0, 1]"),
                });
            }
            if !self.incident_cuts.contains_key(&node) {
                out.push(InvariantViolation {
                    invariant: "coordinator-node-factor-orphan",
                    detail: format!("node {node} tracked but incident to no cut link"),
                });
            }
        }

        // The incident-cuts index must be exactly the inverse of the
        // cut-link endpoint table.
        let mut expected: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, cut) in self.sharded.cut_links().iter().enumerate() {
            for end in [cut.a, cut.b] {
                let global = self.sharded.global_node(end.shard, end.local);
                expected.entry(global).or_default().push(i);
            }
        }
        if expected != self.incident_cuts {
            out.push(InvariantViolation {
                invariant: "coordinator-incident-cuts",
                detail: format!(
                    "incident-cuts index over {} nodes does not match the {} cut links",
                    self.incident_cuts.len(),
                    self.sharded.cut_count()
                ),
            });
        }

        let nodes = self.sharded.source().node_count();
        for (&id, &ingress) in &self.rerouted {
            if ingress.index() >= nodes {
                out.push(InvariantViolation {
                    invariant: "coordinator-reroute-cursor",
                    detail: format!("rerouted request {id}: global ingress {ingress} out of range"),
                });
            }
        }
        out
    }

    /// Mutable access to the cut-link churn factors. Test seam for the
    /// `strict-invariants` auditor (corrupts state on purpose so the
    /// audit can be shown to catch it); never called by the
    /// coordinator.
    #[doc(hidden)]
    pub fn debug_cut_factor_mut(&mut self) -> &mut Vec<f64> {
        &mut self.cut_factor
    }

    /// Mutable access to the sharded substrate. Test seam for the
    /// `strict-invariants` auditor; never called by the coordinator.
    #[doc(hidden)]
    pub fn debug_sharded_mut(&mut self) -> &mut ShardedSubstrate {
        &mut self.sharded
    }

    /// Resumes a checkpointed sharded run: rebuilds the coordinator
    /// from the same deterministic configuration (`sharded`, `build`,
    /// the caller re-applies [`ShardCoordinator::with_reembed`]), then
    /// restores every shard's engine + algorithm state, the
    /// coordinator's cursors, and `observer` from `checkpoint`.
    /// Feeding [`run`](Self::run) the original stream with slots below
    /// [`next_slot`](Self::next_slot) filtered out then finishes the
    /// run **byte-identically** to the uninterrupted one — the
    /// guarantee pinned by the sharded resume proptest battery.
    ///
    /// The checkpoint is the [`EngineCheckpoint`] envelope a
    /// [`Checkpointer`] produced over this coordinator: for `k > 1` its
    /// blobs carry a packed [`ShardCheckpoint`]; for `k = 1` they carry
    /// plain monolithic engine state, so single-shard coordinators and
    /// [`run_stream_from`] accept each other's checkpoints
    /// interchangeably. Use [`crate::checkpoint::engine_checkpoint`] to
    /// resume from a typed [`ShardCheckpoint`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] when the checkpoint's shape does not
    /// match this coordinator (shard count, partition map, algorithm
    /// name, cut count) or any blob fails to restore.
    ///
    /// [`Checkpointer`]: vne_sim::observe::Checkpointer
    /// [`run_stream_from`]: vne_sim::engine::run_stream_from
    pub fn resume_from<O>(
        sharded: ShardedSubstrate,
        build: impl FnMut(ShardId, &SubstrateNetwork) -> Box<dyn OnlineAlgorithm>,
        checkpoint: &EngineCheckpoint,
        observer: &mut O,
    ) -> Result<Self, StateError>
    where
        O: Snapshot + ?Sized,
    {
        let mut this = Self::new(sharded, build);
        if this.engines.len() == 1 {
            if ShardCheckpoint::is_packed(&checkpoint.engine) {
                return Err(StateError::Mismatch {
                    expected: "a monolithic engine checkpoint for k = 1".into(),
                    found: "a packed multi-shard checkpoint".into(),
                });
            }
            let engine = this.engines[0].get_mut().unwrap();
            engine.state = restore_engine(
                checkpoint,
                &mut *engine.primary,
                this.sharded.shard(ShardId(0)),
                observer,
            )?;
            this.stats = engine.state.stats();
            return Ok(this);
        }
        let shard = ShardCheckpoint::unpack(
            checkpoint.slot,
            &checkpoint.algorithm,
            &checkpoint.engine,
            &checkpoint.algorithm_state,
            checkpoint.observer_state.clone(),
        )?;
        this.restore_sharded(&shard)?;
        observer.restore(&checkpoint.observer_state)?;
        Ok(this)
    }

    /// Restores per-shard engines, algorithms and coordinator cursors
    /// from an unpacked `k > 1` checkpoint (everything except the
    /// observer, which [`resume_from`](Self::resume_from) owns).
    fn restore_sharded(&mut self, checkpoint: &ShardCheckpoint) -> Result<(), StateError> {
        let k = self.engines.len();
        if checkpoint.shard_count() != k {
            return Err(StateError::Mismatch {
                expected: format!("{k} shards"),
                found: format!("{}", checkpoint.shard_count()),
            });
        }
        let nodes = self.sharded.source().node_count();
        let same_partition = checkpoint.partition.len() == nodes
            && checkpoint
                .partition
                .iter()
                .enumerate()
                .all(|(i, &s)| self.sharded.home_of(NodeId::from_index(i)).shard == ShardId(s));
        if !same_partition {
            return Err(StateError::Mismatch {
                expected: "the coordinator's partition map".into(),
                found: "a checkpoint cut under a different partition".into(),
            });
        }
        for (s, engine) in self.engines.iter_mut().enumerate() {
            let engine = engine.get_mut().unwrap();
            if engine.primary.name() != checkpoint.algorithm {
                return Err(StateError::Mismatch {
                    expected: format!("algorithm {}", checkpoint.algorithm),
                    found: format!("algorithm {}", engine.primary.name()),
                });
            }
            engine.primary.restore_state(&checkpoint.algorithms[s])?;
            engine.state.restore(&checkpoint.engines[s])?;
            engine.state.reapply_churn(
                &mut *engine.primary,
                self.sharded.shard(ShardId::from_index(s)),
            );
        }
        let cursors = CoordinatorCursors::decode(&checkpoint.coordinator)?;
        if cursors.cut_factor.len() != self.cut_factor.len() {
            return Err(StateError::Mismatch {
                expected: format!("{} cut-link factors", self.cut_factor.len()),
                found: format!("{}", cursors.cut_factor.len()),
            });
        }
        self.stats = cursors.stats;
        // The resumed segment gets its own early-stop verdict.
        self.stats.stopped_early = false;
        self.spanning = cursors.spanning;
        self.rerouted = cursors.rerouted.into_iter().collect();
        self.cut_factor = cursors.cut_factor;
        self.node_factor = cursors.node_factor.into_iter().collect();
        Ok(())
    }

    /// Materializes the deferred capture: every shard's engine +
    /// algorithm snapshot plus the coordinator cursors, packed as a
    /// [`ShardCheckpoint`] into the engine-checkpoint blob pair.
    fn capture(&self) -> Result<EngineCapture, StateError> {
        let mut engines = Vec::with_capacity(self.engines.len());
        let mut algorithms = Vec::with_capacity(self.engines.len());
        for e in &self.engines {
            let engine = e.lock().unwrap();
            let blob = engine.primary.snapshot_state().ok_or_else(|| {
                StateError::Unsupported(format!("algorithm {}", engine.primary.name()))
            })?;
            engines.push(engine.state.snapshot());
            algorithms.push(blob);
        }
        let nodes = self.sharded.source().node_count();
        let partition: Vec<u32> = (0..nodes)
            .map(|i| self.sharded.home_of(NodeId::from_index(i)).shard.0)
            .collect();
        // Both maps are BTreeMaps, so the drains below are already in
        // ascending key order — the checkpoint layout is unchanged.
        let rerouted: Vec<(RequestId, NodeId)> =
            self.rerouted.iter().map(|(&k, &v)| (k, v)).collect();
        let node_factor: Vec<(NodeId, f64)> =
            self.node_factor.iter().map(|(&k, &v)| (k, v)).collect();
        let cursors = CoordinatorCursors {
            stats: self.stats,
            spanning: self.spanning,
            rerouted,
            cut_factor: self.cut_factor.clone(),
            node_factor,
        };
        let checkpoint = ShardCheckpoint {
            // Slot and observer state belong to the envelope the
            // Checkpointer assembles around this capture.
            slot: 0,
            algorithm: self.stub.name.clone(),
            partition,
            engines,
            algorithms,
            coordinator: cursors.encode(),
            observer_state: StateBlob::default(),
        };
        let (engine, algorithm_state) = checkpoint.pack();
        Ok(EngineCapture {
            engine,
            algorithm_state: Some(algorithm_state),
        })
    }

    /// `k = 1` pass-through: the local substrate is a bit-exact copy of
    /// the source with identical ids, so stepping the one engine with
    /// the unmodified event replays the unsharded engine byte for byte.
    fn step_single<O>(&mut self, event: SlotEvents, observer: &mut O) -> SimControl
    where
        O: SimObserver + ?Sized,
    {
        let mut policy = self.reembed.policy();
        let engine = self.engines[0].get_mut().unwrap();
        let ShardEngine { state, primary, .. } = engine;
        let (_, control) = state.step(
            &mut **primary,
            self.sharded.shard(ShardId(0)),
            event,
            observer,
            &mut *policy,
        );
        let (online, stopped) = (self.stats.online_secs, self.stats.stopped_early);
        self.stats = state.stats();
        self.stats.online_secs = online;
        self.stats.stopped_early = stopped;
        observer.on_slot_committed(&state.view(&**primary));
        control
    }

    fn step_sharded<O>(&mut self, event: SlotEvents, observer: &mut O) -> SimControl
    where
        O: SimObserver + ?Sized,
    {
        let t = event.slot;
        let k = self.engines.len();
        // Original stream position of each arrival: outcomes are
        // reported back in this order.
        let position: BTreeMap<RequestId, usize> = event
            .arrivals
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id, i))
            .collect();

        // 1. Route arrivals and churn to their home shards.
        let mut arrivals: Vec<Vec<Request>> = vec![Vec::new(); k];
        for r in &event.arrivals {
            let home = self.sharded.home_of(r.ingress);
            let mut local = r.clone();
            local.ingress = home.local;
            arrivals[home.shard.index()].push(local);
        }
        let churn = self.route_churn(&event.churn);

        // 2. Reserve: trial-step shards that have arrivals; their
        // rejects become spanning candidates (skipped entirely when the
        // algorithm cannot snapshot — home-only mode).
        let spanning_enabled = self.engines[0].lock().unwrap().scratch.is_some();
        let mut candidates: Vec<(ShardId, Request)> = Vec::new();
        if spanning_enabled {
            let busy: Vec<usize> = (0..k).filter(|&s| !arrivals[s].is_empty()).collect();
            let rejected: Vec<Vec<RequestId>> = cell_map(&busy, |&s| {
                self.trial(ShardId::from_index(s), t, &arrivals[s], &churn[s])
                    .rejected
            });
            for (&s, ids) in busy.iter().zip(rejected) {
                for id in ids {
                    let i = arrivals[s].iter().position(|r| r.id == id).unwrap();
                    candidates.push((ShardId::from_index(s), arrivals[s][i].clone()));
                }
            }
            // Deterministic tie-break: candidates by ascending id.
            candidates.sort_by_key(|(_, r)| r.id);
        }

        // 3. Span: offer each candidate to neighbors (ascending shard
        // id) through the cheapest live cut-link gateway; first
        // trial-accept adopts. Sequential so each trial sees earlier
        // adoptions.
        for (home, r) in candidates {
            self.spanning.candidates += 1;
            let mut adopted = None;
            for &nb in self.sharded.neighbors(home) {
                let Some(gw) = self.live_gateway(home, nb) else {
                    // Every cut to this neighbor is churned down.
                    continue;
                };
                let mut moved = r.clone();
                moved.ingress = gw.local;
                self.spanning.attempts += 1;
                let mut offer = arrivals[nb.index()].clone();
                offer.push(moved.clone());
                let outcome = self.trial(nb, t, &offer, &churn[nb.index()]);
                if outcome.accepted.contains(&r.id) {
                    adopted = Some((nb, moved));
                    break;
                }
            }
            match adopted {
                Some((nb, moved)) => {
                    self.spanning.granted += 1;
                    // The home engine never sees the request; the
                    // original global ingress is kept for reporting.
                    arrivals[home.index()].retain(|a| a.id != r.id);
                    arrivals[nb.index()].push(moved);
                    let global = self.sharded.global_node(home, r.ingress);
                    self.rerouted.insert(r.id, global);
                }
                None => self.spanning.denied += 1,
            }
        }

        // 4. Commit: every shard steps its live engine exactly once.
        let all: Vec<usize> = (0..k).collect();
        let reembed = self.reembed;
        let steps: Vec<SlotStep> = cell_map(&all, |&s| {
            let mut engine = self.engines[s].lock().unwrap();
            let ShardEngine { state, primary, .. } = &mut *engine;
            let ev = SlotEvents {
                slot: t,
                arrivals: arrivals[s].clone(),
                churn: churn[s].clone(),
            };
            let mut policy = reembed.policy();
            let (step, _) = state.step(
                &mut **primary,
                self.sharded.shard(ShardId::from_index(s)),
                ev,
                &mut NullObserver,
                &mut *policy,
            );
            step
        });

        // 5. Report: synthesize the global observer dispatch.
        observer.on_slot_start(t);
        let mut merged_churn = vne_sim::engine::ChurnStats::default();
        for step in &steps {
            merged_churn.absorb(&step.churn);
        }
        if !merged_churn.is_empty() {
            observer.on_churn(t, &merged_churn);
        }
        let mut outcomes: Vec<(usize, RequestOutcome)> = Vec::new();
        for (s, step) in steps.iter().enumerate() {
            for o in &step.arrivals {
                let global = self.globalize(ShardId::from_index(s), o);
                outcomes.push((position[&o.id], global));
            }
        }
        outcomes.sort_by_key(|&(pos, _)| pos);
        for (_, outcome) in &outcomes {
            observer.on_arrival(outcome);
        }
        let mut metrics = SlotMetrics::default();
        for (s, step) in steps.iter().enumerate() {
            for o in &step.preemptions {
                observer.on_preemption(&self.globalize(ShardId::from_index(s), o));
            }
            metrics.requested_demand += step.metrics.requested_demand;
            metrics.allocated_demand += step.metrics.allocated_demand;
            metrics.resource_cost += step.metrics.resource_cost;
        }
        let control = observer.on_slot_end(t, &metrics, &self.stub);

        // Merge run counters, then emit the commit hook with a deferred
        // view: the multi-shard capture is assembled only if an
        // observer actually checkpoints this slot.
        self.stats.slots_run = t + 1;
        self.stats.arrivals += event.arrivals.len();
        let active: usize = self
            .engines
            .iter_mut()
            .map(|e| e.get_mut().unwrap().state.active_count())
            .sum();
        self.stats.peak_active = self.stats.peak_active.max(active);
        let produce = || self.capture();
        let view = EngineView::deferred(t, self.stats, active, &self.stub.name, &produce);
        observer.on_slot_committed(&view);
        control
    }

    /// Runs one reserve trial for `shard`: clones the engine state,
    /// restores the live algorithm's snapshot into the scratch
    /// instance, and steps the clone — the live engine is untouched.
    fn trial(
        &self,
        shard: ShardId,
        t: Slot,
        arrivals: &[Request],
        churn: &[ChurnEvent],
    ) -> SlotOutcome {
        let mut engine = self.engines[shard.index()].lock().unwrap();
        let ShardEngine {
            state,
            primary,
            scratch,
        } = &mut *engine;
        let scratch = scratch.as_mut().expect("trial requires a scratch instance");
        let blob = primary
            .snapshot_state()
            .expect("scratch exists only for snapshot-capable algorithms");
        scratch
            .restore_state(&blob)
            .expect("snapshot round-trips into the same configuration");
        let mut trial_state = state.clone();
        let ev = SlotEvents {
            slot: t,
            arrivals: arrivals.to_vec(),
            churn: churn.to_vec(),
        };
        let mut policy = self.reembed.policy();
        let (step, _) = trial_state.step(
            &mut **scratch,
            self.sharded.shard(shard),
            ev,
            &mut NullObserver,
            &mut *policy,
        );
        let mut outcome = SlotOutcome::default();
        for o in &step.arrivals {
            match o.status {
                RequestStatus::Accepted => outcome.accepted.push(o.id),
                _ => outcome.rejected.push(o.id),
            }
        }
        outcome
    }

    /// The `to`-side endpoint of the cheapest cut link between `from`
    /// and `to` whose churn factor is non-zero, ties broken by global
    /// link id — [`ShardedSubstrate::gateway`] overlaid with the
    /// coordinator's cut-link churn fold. `None` when every cut between
    /// the pair is down.
    fn live_gateway(&self, from: ShardId, to: ShardId) -> Option<ShardNodeRef> {
        self.sharded
            .cut_indices_between(from, to)
            .iter()
            .find(|&&i| self.cut_factor[i] > 0.0)
            .and_then(|&i| self.sharded.cut_links()[i].endpoint_in(to))
    }

    /// The effective drain factor of cut-endpoint node `global`: the
    /// minimum of its own node-churn factor and all incident cut-link
    /// factors (the tightest constraint governs).
    fn endpoint_factor(&self, global: NodeId) -> f64 {
        let own = self.node_factor.get(&global).copied().unwrap_or(1.0);
        let cuts = self.incident_cuts[&global]
            .iter()
            .map(|&i| self.cut_factor[i])
            .fold(1.0, f64::min);
        own.min(cuts)
    }

    /// Routes global churn events to per-shard local events.
    ///
    /// Internal node/link events map 1:1 onto their home shard. Events
    /// touching the cut — a cut-link event, or a node event on a
    /// cut-endpoint node — update the coordinator's absolute factor
    /// fold and are emitted as [`ChurnEvent::NodeDrain`]s carrying the
    /// combined endpoint factor (see the [module docs](self)), one per
    /// affected endpoint: two for a cut-link event (both gateway
    /// shards), one for an endpoint-node event.
    fn route_churn(&mut self, churn: &[ChurnEvent]) -> Vec<Vec<ChurnEvent>> {
        let mut routed: Vec<Vec<ChurnEvent>> = vec![Vec::new(); self.engines.len()];
        for ev in churn {
            match ev {
                ChurnEvent::NodeDown(n)
                | ChurnEvent::NodeUp(n)
                | ChurnEvent::NodeDrain { node: n, .. } => {
                    let home = self.sharded.home_of(*n);
                    if self.incident_cuts.contains_key(n) {
                        let factor = match ev {
                            ChurnEvent::NodeDown(_) => 0.0,
                            ChurnEvent::NodeUp(_) => 1.0,
                            ChurnEvent::NodeDrain { factor, .. } => *factor,
                            _ => unreachable!(),
                        };
                        self.node_factor.insert(*n, factor);
                        routed[home.shard.index()].push(ChurnEvent::NodeDrain {
                            node: home.local,
                            factor: self.endpoint_factor(*n),
                        });
                        continue;
                    }
                    let local = match ev {
                        ChurnEvent::NodeDown(_) => ChurnEvent::NodeDown(home.local),
                        ChurnEvent::NodeUp(_) => ChurnEvent::NodeUp(home.local),
                        ChurnEvent::NodeDrain { factor, .. } => ChurnEvent::NodeDrain {
                            node: home.local,
                            factor: *factor,
                        },
                        _ => unreachable!(),
                    };
                    routed[home.shard.index()].push(local);
                }
                ChurnEvent::LinkDown(l)
                | ChurnEvent::LinkUp(l)
                | ChurnEvent::LinkDrain { link: l, .. } => match self.sharded.link_home(*l) {
                    LinkHome::Internal { shard, local } => {
                        let mapped = match ev {
                            ChurnEvent::LinkDown(_) => ChurnEvent::LinkDown(local),
                            ChurnEvent::LinkUp(_) => ChurnEvent::LinkUp(local),
                            ChurnEvent::LinkDrain { factor, .. } => ChurnEvent::LinkDrain {
                                link: local,
                                factor: *factor,
                            },
                            _ => unreachable!(),
                        };
                        routed[shard.index()].push(mapped);
                    }
                    LinkHome::Cut { index } => {
                        let factor = match ev {
                            ChurnEvent::LinkDown(_) => 0.0,
                            ChurnEvent::LinkUp(_) => 1.0,
                            ChurnEvent::LinkDrain { factor, .. } => *factor,
                            _ => unreachable!(),
                        };
                        self.cut_factor[index] = factor;
                        let cut = self.sharded.cut_links()[index];
                        for end in [cut.a, cut.b] {
                            let global = self.sharded.global_node(end.shard, end.local);
                            routed[end.shard.index()].push(ChurnEvent::NodeDrain {
                                node: end.local,
                                factor: self.endpoint_factor(global),
                            });
                        }
                    }
                },
            }
        }
        routed
    }

    /// Maps a shard-local outcome back to global ids: the class ingress
    /// becomes the request's original global ingress.
    fn globalize(&self, shard: ShardId, o: &RequestOutcome) -> RequestOutcome {
        let ingress = match self.rerouted.get(&o.id) {
            Some(&original) => original,
            None => self.sharded.global_node(shard, o.class.ingress),
        };
        let mut out = o.clone();
        out.class = ClassId::new(o.class.app, ingress);
        out
    }
}

/// Stands in for "the algorithm" in `on_slot_end` when `k > 1`: the
/// real algorithms are per-shard and their ledgers cannot be merged
/// through the trait, so observers get the shared name and an all-zero
/// ledger over the *source* substrate. Observers needing drill-down
/// ([`OnlineAlgorithm::as_any`]) see `None`, same as the pipelined
/// engine's detached stub.
struct StubAlgorithm {
    name: String,
    loads: LoadLedger,
}

impl OnlineAlgorithm for StubAlgorithm {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_slot(
        &mut self,
        _t: Slot,
        _departures: &[Request],
        _arrivals: &[Request],
    ) -> SlotOutcome {
        unreachable!("the coordinator stub never processes slots")
    }

    fn loads(&self) -> &LoadLedger {
        &self.loads
    }
}
