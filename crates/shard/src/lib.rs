#![warn(missing_docs)]
//! # vne-shard — partitioned substrates behind one coordinator
//!
//! The paper's evaluation stops at topology-zoo scale because every
//! algorithm sees one monolithic substrate. This crate takes the
//! decomposition that is already latent in the planning layer — pricing
//! subproblems are per-region and embarrassingly parallel — to its
//! operational conclusion: partition the substrate into `k` shards, run
//! one engine + algorithm instance per shard, and coordinate admission
//! across them.
//!
//! * [`coordinator`] — the [`ShardCoordinator`]: routes each arriving
//!   request to the shard owning its classes, trial-steps shards for
//!   would-be rejects (reserve), offers them to neighboring shards in
//!   deterministic order (span), then commits every shard through the
//!   engine's public single-slot seam. A `k = 1` run replays the
//!   unsharded engine byte-identically. Commit hooks fire for every
//!   `k`, so a [`Checkpointer`] checkpoints sharded runs unmodified,
//!   and [`ShardCoordinator::resume_from`] continues them
//!   byte-identically; churn on cut links is applied as idempotent
//!   endpoint drains on both gateway shards.
//! * [`checkpoint`] — the typed sharded-checkpoint semantics:
//!   [`shard_checkpoint`] / [`engine_checkpoint`] convert between the
//!   [`Checkpointer`]'s envelope and the typed
//!   [`ShardCheckpoint`](vne_model::state::ShardCheckpoint).
//! * [`plan`] — per-shard PLAN-VNE: [`shard_demands`] routes the
//!   history stream into one [`DemandEstimator`] per shard (planning
//!   memory `O(classes per shard)`), [`shard_plans`] solves the shard
//!   LPs in parallel.
//!
//! The partitioners that feed this crate live in `vne-topology`
//! (`Partitioner`, `RegionGrow`, `GreedyEdgeCut`, `large_synthetic`);
//! the partitioned-substrate view ([`ShardedSubstrate`]) lives in
//! `vne-model`.
//!
//! ## Example
//!
//! ```
//! use vne_model::prelude::*;
//! use vne_shard::{ShardCoordinator, SpanningStats};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 4-node ring split into 2 shards of 2 nodes each.
//! let mut s = SubstrateNetwork::new("ring");
//! let n: Vec<_> = (0..4)
//!     .map(|i| s.add_node(format!("n{i}"), Tier::Edge, 100.0, 1.0).unwrap())
//!     .collect();
//! for i in 0..4 {
//!     s.add_link(n[i], n[(i + 1) % 4], 100.0, 1.0)?;
//! }
//! let assignment = PartitionAssignment::new(vec![0, 0, 1, 1])?;
//! let sharded = ShardedSubstrate::new(&s, &assignment)?;
//! assert_eq!(sharded.shard_count(), 2);
//! assert_eq!(sharded.cut_count(), 2); // the two ring edges crossing
//! # Ok(())
//! # }
//! ```
//!
//! [`DemandEstimator`]: vne_workload::estimator::DemandEstimator
//! [`ShardedSubstrate`]: vne_model::shard::ShardedSubstrate
//! [`Checkpointer`]: vne_sim::observe::Checkpointer

pub mod checkpoint;
pub mod coordinator;
pub mod plan;

pub use checkpoint::{engine_checkpoint, shard_checkpoint};
pub use coordinator::{ShardCoordinator, SpanningStats};
pub use plan::{shard_demands, shard_plans};
