//! Known-optimum unit tests for the LP/MILP substrate (the CPLEX
//! replacement): a hand-solvable 3-variable LP and a small knapsack
//! MILP whose LP relaxation is fractional, forcing `branch_bound` to
//! actually branch.

use vne_lp::problem::{Problem, Relation};
use vne_lp::simplex::solve_lp;
use vne_lp::{solve_mip, BranchBoundOptions};

const TOL: f64 = 1e-6;

/// min x + y + z  s.t.  x + y ≥ 2,  y + z ≥ 3,  x + z ≥ 4.
///
/// Summing the constraints gives 2(x + y + z) ≥ 9, so the objective is
/// bounded below by 4.5; (1.5, 0.5, 2.5) attains it with every row
/// tight, hence the optimum is exactly 4.5.
#[test]
fn three_variable_lp_hits_known_optimum() {
    let mut p = Problem::new();
    let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
    let y = p.add_var("y", 1.0, 0.0, f64::INFINITY);
    let z = p.add_var("z", 1.0, 0.0, f64::INFINITY);
    let r1 = p.add_row("xy", Relation::Ge, 2.0);
    let r2 = p.add_row("yz", Relation::Ge, 3.0);
    let r3 = p.add_row("xz", Relation::Ge, 4.0);
    p.set_coeff(r1, x, 1.0);
    p.set_coeff(r1, y, 1.0);
    p.set_coeff(r2, y, 1.0);
    p.set_coeff(r2, z, 1.0);
    p.set_coeff(r3, x, 1.0);
    p.set_coeff(r3, z, 1.0);

    let sol = solve_lp(&p);
    assert!(sol.status.is_optimal(), "status {:?}", sol.status);
    assert!(
        (sol.objective - 4.5).abs() < TOL,
        "objective {} != 4.5",
        sol.objective
    );
    assert!(p.is_feasible(&sol.x, TOL));
    // Every constraint is tight at the unique optimum.
    assert!((sol.x[x.0] - 1.5).abs() < TOL, "x = {}", sol.x[x.0]);
    assert!((sol.x[y.0] - 0.5).abs() < TOL, "y = {}", sol.x[y.0]);
    assert!((sol.x[z.0] - 2.5).abs() < TOL, "z = {}", sol.x[z.0]);
}

/// A bounded LP with an equality row: min 2x + 3y s.t. x + y = 10,
/// x ≤ 6 → optimum at x = 6, y = 4 with objective 24.
#[test]
fn equality_lp_with_upper_bound() {
    let mut p = Problem::new();
    let x = p.add_var("x", 2.0, 0.0, 6.0);
    let y = p.add_var("y", 3.0, 0.0, f64::INFINITY);
    let r = p.add_row("sum", Relation::Eq, 10.0);
    p.set_coeff(r, x, 1.0);
    p.set_coeff(r, y, 1.0);

    let sol = solve_lp(&p);
    assert!(sol.status.is_optimal(), "status {:?}", sol.status);
    assert!(
        (sol.objective - 24.0).abs() < TOL,
        "objective {} != 24",
        sol.objective
    );
    assert!((sol.x[x.0] - 6.0).abs() < TOL);
    assert!((sol.x[y.0] - 4.0).abs() < TOL);
}

/// Knapsack as a MILP: values (10, 6, 4), weights (5, 4, 3), capacity
/// 10. The LP relaxation packs a fractional third item (bound 17.33…),
/// while the best integral pack is items 1 + 2 with value 16 — so
/// branch-and-bound must branch to find min obj = −16.
#[test]
fn knapsack_milp_through_branch_bound() {
    let mut p = Problem::new();
    let items = [(10.0, 5.0), (6.0, 4.0), (4.0, 3.0)];
    let vars: Vec<_> = items
        .iter()
        .enumerate()
        .map(|(i, &(value, _))| p.add_binary_var(format!("x{i}"), -value))
        .collect();
    let cap = p.add_row("capacity", Relation::Le, 10.0);
    for (var, &(_, weight)) in vars.iter().zip(&items) {
        p.set_coeff(cap, *var, weight);
    }

    // The relaxation is fractional: x = (1, 1, 1/3), bound −52/3.
    let relaxed = solve_lp(&p);
    assert!(relaxed.status.is_optimal());
    assert!(
        (relaxed.objective - (-52.0 / 3.0)).abs() < TOL,
        "relaxation {} != -52/3",
        relaxed.objective
    );

    let sol = solve_mip(&p, BranchBoundOptions::default());
    assert!(sol.status.is_optimal(), "status {:?}", sol.status);
    assert!(
        (sol.objective - (-16.0)).abs() < TOL,
        "objective {} != -16",
        sol.objective
    );
    assert!(p.is_feasible(&sol.x, TOL));
    let x: Vec<f64> = vars.iter().map(|v| sol.x[v.0]).collect();
    assert!(
        (x[0] - 1.0).abs() < TOL && (x[1] - 1.0).abs() < TOL && x[2].abs() < TOL,
        "expected pack (1, 1, 0), got {x:?}"
    );
}

/// An infeasible system must not report an optimum.
#[test]
fn infeasible_lp_is_detected() {
    let mut p = Problem::new();
    let x = p.add_var("x", 1.0, 0.0, 1.0);
    let r = p.add_row("impossible", Relation::Ge, 5.0);
    p.set_coeff(r, x, 1.0);
    let sol = solve_lp(&p);
    assert!(!sol.status.is_optimal(), "x ≤ 1 cannot satisfy x ≥ 5");
}
