//! Stress and regression tests for the simplex beyond the unit suite:
//! larger structured LPs with known optima, repeated column generation,
//! and numerically awkward cases.

use vne_lp::problem::{Problem, Relation};
use vne_lp::simplex::{solve_lp, Simplex, SimplexOptions};
use vne_lp::solution::SolveStatus;

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "{a} vs {b}");
}

/// Transportation problem with known optimum: 3 supplies × 4 demands.
#[test]
fn transportation_problem() {
    // Classic instance: supplies [35, 50, 40]; demands [45, 20, 30, 30];
    // costs rows:
    let cost = [
        [8.0, 6.0, 10.0, 9.0],
        [9.0, 12.0, 13.0, 7.0],
        [14.0, 9.0, 16.0, 5.0],
    ];
    let supply = [35.0, 50.0, 40.0];
    let demand = [45.0, 20.0, 30.0, 30.0];
    let mut p = Problem::new();
    let mut vars = [[vne_lp::problem::VarId(0); 4]; 3];
    for i in 0..3 {
        for j in 0..4 {
            vars[i][j] = p.add_var(format!("x{i}{j}"), cost[i][j], 0.0, f64::INFINITY);
        }
    }
    for (i, &s) in supply.iter().enumerate() {
        let r = p.add_row(format!("s{i}"), Relation::Le, s);
        for &var in &vars[i] {
            p.set_coeff(r, var, 1.0);
        }
    }
    for (j, &d) in demand.iter().enumerate() {
        let r = p.add_row(format!("d{j}"), Relation::Ge, d);
        for row in &vars {
            p.set_coeff(r, row[j], 1.0);
        }
    }
    let sol = solve_lp(&p);
    assert_eq!(sol.status, SolveStatus::Optimal);
    // Optimal objective, verified independently by min-cost flow: 1020.
    assert_close(sol.objective, 1020.0, 1e-6);
}

/// A chain of equality rows (tridiagonal system) with bounds.
#[test]
fn tridiagonal_equalities() {
    let n = 40;
    let mut p = Problem::new();
    let vars: Vec<_> = (0..n)
        .map(|j| p.add_var(format!("x{j}"), 1.0, 0.0, 10.0))
        .collect();
    for i in 0..n - 1 {
        let r = p.add_row(format!("e{i}"), Relation::Eq, 3.0);
        p.set_coeff(r, vars[i], 1.0);
        p.set_coeff(r, vars[i + 1], 2.0);
    }
    let sol = solve_lp(&p);
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert!(p.is_feasible(&sol.x, 1e-6));
}

/// Repeated add_column / reoptimize cycles stay consistent (the column
/// generation workload at larger scale).
#[test]
fn repeated_column_generation_cycles() {
    // Covering LP: min Σ c_j x_j s.t. Σ a_ij x_j ≥ b_i.
    let m = 30;
    let mut p = Problem::new();
    // Expensive seed columns (one per row).
    for i in 0..m {
        let v = p.add_var(format!("seed{i}"), 100.0, 0.0, f64::INFINITY);
        let r = p.add_row(format!("r{i}"), Relation::Ge, 1.0 + (i % 5) as f64);
        p.set_coeff(r, v, 1.0);
    }
    let mut s = Simplex::with_options(&p, SimplexOptions::default());
    let first = s.solve();
    assert_eq!(first.status, SolveStatus::Optimal);
    let mut last_obj = first.objective;

    let mut state = 0x853c49e6748fea9bu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    // 200 generated columns in 20 rounds.
    for _round in 0..20 {
        for _ in 0..10 {
            let nnz = 2 + (rng() * 4.0) as usize;
            let coeffs: Vec<(usize, f64)> = (0..nnz)
                .map(|_| ((rng() * m as f64) as usize % m, 0.5 + rng()))
                .collect();
            s.add_column(1.0 + rng() * 5.0, 0.0, f64::INFINITY, &coeffs);
        }
        let sol = s.reoptimize();
        assert_eq!(sol.status, SolveStatus::Optimal);
        // Objective can only improve as columns are added.
        assert!(
            sol.objective <= last_obj + 1e-6,
            "{} > {}",
            sol.objective,
            last_obj
        );
        last_obj = sol.objective;
    }
    assert!(last_obj < first.objective, "columns should have helped");
}

/// Dual values price equality rows correctly: for `min cᵀx, Ax = b`,
/// strong duality gives `cᵀx* = yᵀb` when all bounds are slack.
#[test]
fn equality_duals_satisfy_strong_duality() {
    let mut p = Problem::new();
    let x = p.add_var("x", 3.0, 0.0, 100.0);
    let y = p.add_var("y", 5.0, 0.0, 100.0);
    let z = p.add_var("z", 4.0, 0.0, 100.0);
    let r1 = p.add_row("r1", Relation::Eq, 5.0);
    let r2 = p.add_row("r2", Relation::Eq, 8.0);
    p.set_coeff(r1, x, 1.0);
    p.set_coeff(r1, y, 1.0);
    p.set_coeff(r2, y, 1.0);
    p.set_coeff(r2, z, 2.0);
    let sol = solve_lp(&p);
    assert_eq!(sol.status, SolveStatus::Optimal);
    let dual_obj = sol.duals[0] * 5.0 + sol.duals[1] * 8.0;
    assert_close(sol.objective, dual_obj, 1e-6);
}

/// Badly scaled coefficients (1e-3 … 1e6) still solve.
#[test]
fn wide_coefficient_range() {
    let mut p = Problem::new();
    let x = p.add_var("x", 1e-3, 0.0, 1e9);
    let y = p.add_var("y", 1e3, 0.0, 1e9);
    let r1 = p.add_row("r1", Relation::Ge, 1e6);
    p.set_coeff(r1, x, 1e-2);
    p.set_coeff(r1, y, 1e4);
    let sol = solve_lp(&p);
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert!(p.is_feasible(&sol.x, 1.0));
    // Cheapest way: x = 1e8 (obj 1e5) vs y = 100 (obj 1e5) — both equal;
    // any convex mix is optimal with objective 1e5.
    assert_close(sol.objective, 1e5, 1e-1);
}

/// Many bound flips: box-constrained LP with a single coupling row.
#[test]
fn box_lp_with_coupling_row() {
    let n = 100;
    let mut p = Problem::new();
    let vars: Vec<_> = (0..n)
        .map(|j| {
            let sign = if j % 2 == 0 { -1.0 } else { 1.0 };
            p.add_var(format!("x{j}"), sign * (1.0 + j as f64), 0.0, 1.0)
        })
        .collect();
    let r = p.add_row("sum", Relation::Le, 30.0);
    for &v in &vars {
        p.set_coeff(r, v, 1.0);
    }
    let sol = solve_lp(&p);
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert!(p.is_feasible(&sol.x, 1e-6));
    // The 30 cheapest (most negative) coefficients are the even indices
    // with largest magnitude: x_98, x_96, … The optimum picks exactly 30
    // of the 50 negative-cost variables.
    let picked: f64 = sol.x.iter().sum();
    assert_close(picked, 30.0, 1e-6);
}

/// Degenerate + redundant structure at moderate scale.
#[test]
fn redundancy_stress() {
    let mut p = Problem::new();
    let n = 20;
    let vars: Vec<_> = (0..n)
        .map(|j| p.add_var(format!("x{j}"), (j % 3) as f64 + 1.0, 0.0, 5.0))
        .collect();
    // The same equality row repeated 5 times + its doubled version.
    for k in 0..5 {
        let r = p.add_row(format!("dup{k}"), Relation::Eq, 10.0);
        for &v in &vars {
            p.set_coeff(r, v, 1.0);
        }
    }
    let r2 = p.add_row("double", Relation::Eq, 20.0);
    for &v in &vars {
        p.set_coeff(r2, v, 2.0);
    }
    let sol = solve_lp(&p);
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert!(p.is_feasible(&sol.x, 1e-6));
    // All mass on the cheapest cost class (cost 1): objective 10.
    assert_close(sol.objective, 10.0, 1e-6);
}
