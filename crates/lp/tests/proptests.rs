//! Property-based correctness tests for the simplex and branch-and-bound.
//!
//! * Strong duality on random always-feasible `≤`-form LPs;
//! * dual sign and reduced-cost optimality conditions;
//! * branch-and-bound vs exhaustive enumeration on random binary MILPs.

use proptest::prelude::*;
use vne_lp::problem::{Problem, Relation};
use vne_lp::simplex::solve_lp;
use vne_lp::solution::SolveStatus;
use vne_lp::{solve_mip, BranchBoundOptions};

/// Random LP: min c x, A x ≤ b, 0 ≤ x ≤ u with b ≥ 0 (x = 0 feasible).
fn arb_le_lp() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<f64>>, Vec<f64>, Vec<f64>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(n, m)| {
        (
            proptest::collection::vec(-5.0f64..5.0, n),
            proptest::collection::vec(proptest::collection::vec(0.0f64..3.0, n), m),
            proptest::collection::vec(0.5f64..10.0, m),
            proptest::collection::vec(0.5f64..4.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strong_duality_on_le_form_lps((c, a, b, u) in arb_le_lp()) {
        let n = c.len();
        let m = b.len();
        let mut p = Problem::new();
        let vars: Vec<_> = (0..n)
            .map(|j| p.add_var(format!("x{j}"), c[j], 0.0, u[j]))
            .collect();
        let mut rows = Vec::new();
        for i in 0..m {
            let r = p.add_row(format!("r{i}"), Relation::Le, b[i]);
            for j in 0..n {
                if a[i][j] != 0.0 {
                    p.set_coeff(r, vars[j], a[i][j]);
                }
            }
            rows.push(r);
        }
        let sol = solve_lp(&p);
        // x = 0 is feasible and all variables are bounded: must be optimal.
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(p.is_feasible(&sol.x, 1e-6));

        // Dual feasibility: y ≤ 0 for ≤ rows in a minimization.
        for &d in &sol.duals {
            prop_assert!(d <= 1e-6);
        }
        // KKT / strong duality with bound duals:
        // obj = y·b + Σ_j min(0, c_j − y·A_j)·u_j  (variables at upper bound
        // contribute their bound dual; reduced costs of basic vars are 0).
        let mut dual_obj: f64 = sol.duals.iter().zip(&b).map(|(y, bi)| y * bi).sum();
        for j in 0..n {
            let mut red = c[j];
            for (y, ai) in sol.duals.iter().zip(&a) {
                red -= y * ai[j];
            }
            if red < 0.0 {
                dual_obj += red * u[j];
            }
        }
        prop_assert!((sol.objective - dual_obj).abs() < 1e-5,
            "primal {} vs dual {}", sol.objective, dual_obj);
    }

    #[test]
    fn binary_milp_matches_enumeration(
        (c, a, b, _u) in arb_le_lp(),
    ) {
        let n = c.len();
        let m = b.len();
        let mut p = Problem::new();
        let vars: Vec<_> = (0..n)
            .map(|j| p.add_binary_var(format!("x{j}"), c[j]))
            .collect();
        for i in 0..m {
            let r = p.add_row(format!("r{i}"), Relation::Le, b[i]);
            for j in 0..n {
                if a[i][j] != 0.0 {
                    p.set_coeff(r, vars[j], a[i][j]);
                }
            }
        }
        let sol = solve_mip(&p, BranchBoundOptions::default());
        prop_assert_eq!(sol.status, SolveStatus::Optimal);

        // Exhaustive enumeration of all 2^n assignments.
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| f64::from((mask >> j) & 1)).collect();
            let feas = (0..m).all(|i| {
                let act: f64 = (0..n).map(|j| a[i][j] * x[j]).sum();
                act <= b[i] + 1e-9
            });
            if feas {
                let obj: f64 = (0..n).map(|j| c[j] * x[j]).sum();
                best = best.min(obj);
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-5,
            "bb {} vs enum {}", sol.objective, best);
        // The reported solution must be integral and feasible.
        prop_assert!(p.is_feasible(&sol.x, 1e-6));
        for &v in &sol.x {
            prop_assert!((v - v.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn equality_lps_solutions_satisfy_rows(
        n in 2usize..5,
        seed in any::<u64>(),
    ) {
        // Build a random feasible equality system by picking a feasible
        // point first: A x0 = b with x0 in [0, 3]^n.
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let m = n - 1;
        let x0: Vec<f64> = (0..n).map(|_| rng() * 3.0).collect();
        let a: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng() * 2.0).collect())
            .collect();
        let b: Vec<f64> = a.iter().map(|row| {
            row.iter().zip(&x0).map(|(aij, xj)| aij * xj).sum()
        }).collect();

        let mut p = Problem::new();
        let vars: Vec<_> = (0..n)
            .map(|j| p.add_var(format!("x{j}"), 1.0 + rng(), 0.0, 10.0))
            .collect();
        for i in 0..m {
            let r = p.add_row(format!("e{i}"), Relation::Eq, b[i]);
            for j in 0..n {
                p.set_coeff(r, vars[j], a[i][j]);
            }
        }
        let sol = solve_lp(&p);
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(p.is_feasible(&sol.x, 1e-5));
        // The optimum can be no worse than the known feasible point.
        let x0_obj = p.objective_value(&x0);
        prop_assert!(sol.objective <= x0_obj + 1e-6);
    }
}
