//! Branch-and-bound for mixed-integer linear programs.
//!
//! Used by the FULLG baseline, which solves an exact per-request
//! embedding ILP (node-link formulation) like the paper does with CPLEX.
//! The search is best-first on the LP relaxation bound with
//! most-fractional branching; problems at VNE request scale (a few
//! hundred binaries) solve in milliseconds-to-seconds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::problem::{Problem, VarId};
use crate::simplex::{Simplex, SimplexOptions};
use crate::solution::{MipSolution, SolveStatus};

/// Tunable branch-and-bound parameters.
#[derive(Debug, Clone)]
pub struct BranchBoundOptions {
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
    /// Tolerance for considering a value integral.
    pub int_tol: f64,
    /// Relative optimality gap at which the search stops.
    pub gap_tol: f64,
    /// Options for the LP relaxations.
    pub simplex: SimplexOptions,
}

impl Default for BranchBoundOptions {
    fn default() -> Self {
        Self {
            max_nodes: 50_000,
            int_tol: 1e-6,
            gap_tol: 1e-9,
            simplex: SimplexOptions::default(),
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    bound: f64,
    lb: Vec<f64>,
    ub: Vec<f64>,
    depth: usize,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on bound (BinaryHeap is a max-heap), deeper first on ties.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

/// Solves a mixed-integer program by LP-based branch-and-bound.
///
/// # Examples
///
/// ```
/// use vne_lp::problem::{Problem, Relation};
/// use vne_lp::branch_bound::solve_mip;
///
/// // 0/1 knapsack: max 10x + 6y + 4z, 5x + 4y + 3z ≤ 9  (min of negation)
/// let mut p = Problem::new();
/// let x = p.add_binary_var("x", -10.0);
/// let y = p.add_binary_var("y", -6.0);
/// let z = p.add_binary_var("z", -4.0);
/// let r = p.add_row("w", Relation::Le, 9.0);
/// p.set_coeff(r, x, 5.0);
/// p.set_coeff(r, y, 4.0);
/// p.set_coeff(r, z, 3.0);
/// let sol = solve_mip(&p, Default::default());
/// assert!(sol.status.is_optimal());
/// assert_eq!(sol.objective, -16.0); // x + y
/// ```
pub fn solve_mip(problem: &Problem, opts: BranchBoundOptions) -> MipSolution {
    let int_vars = problem.integer_vars();
    if int_vars.is_empty() {
        let sol = Simplex::with_options(problem, opts.simplex.clone()).solve();
        return MipSolution {
            status: sol.status,
            objective: sol.objective,
            x: sol.x,
            nodes: 1,
            best_bound: sol.objective,
        };
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: f64::NEG_INFINITY,
        lb: problem.lb.clone(),
        ub: problem.ub.clone(),
        depth: 0,
    });

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let mut best_open_bound = f64::NEG_INFINITY;
    let mut any_lp_solved = false;

    while let Some(node) = heap.pop() {
        if nodes >= opts.max_nodes {
            return MipSolution {
                status: SolveStatus::Limit,
                objective: incumbent.as_ref().map(|(o, _)| *o).unwrap_or(f64::INFINITY),
                x: incumbent.map(|(_, x)| x).unwrap_or_default(),
                nodes,
                best_bound: node.bound,
            };
        }
        if let Some((best, _)) = &incumbent {
            if node.bound >= *best - opts.gap_tol {
                continue;
            }
        }
        nodes += 1;

        let mut sub = problem.clone();
        sub.lb = node.lb.clone();
        sub.ub = node.ub.clone();
        let lp = Simplex::with_options(&sub, opts.simplex.clone()).solve();
        match lp.status {
            SolveStatus::Infeasible => continue,
            SolveStatus::Unbounded => {
                // Unbounded relaxation of a node: the MIP itself is
                // unbounded (or this subtree cannot be pruned soundly).
                return MipSolution {
                    status: SolveStatus::Unbounded,
                    objective: f64::NEG_INFINITY,
                    x: Vec::new(),
                    nodes,
                    best_bound: f64::NEG_INFINITY,
                };
            }
            SolveStatus::Limit => continue,
            SolveStatus::Optimal => {}
        }
        any_lp_solved = true;
        best_open_bound = best_open_bound.max(lp.objective);
        if let Some((best, _)) = &incumbent {
            if lp.objective >= *best - opts.gap_tol {
                continue;
            }
        }

        // Most-fractional branching variable.
        let mut branch: Option<(VarId, f64, f64)> = None; // (var, value, fractionality)
        for &v in &int_vars {
            let val = lp.x[v.0];
            let frac = (val - val.round()).abs();
            if frac > opts.int_tol {
                let dist_to_half = (val.fract().abs() - 0.5).abs();
                match branch {
                    Some((_, _, best_dist)) if dist_to_half >= best_dist => {}
                    _ => branch = Some((v, val, dist_to_half)),
                }
            }
        }

        match branch {
            None => {
                // Integral solution.
                let better = incumbent
                    .as_ref()
                    .map(|(best, _)| lp.objective < *best - opts.gap_tol)
                    .unwrap_or(true);
                if better {
                    incumbent = Some((lp.objective, lp.x.clone()));
                }
            }
            Some((v, val, _)) => {
                let floor = val.floor();
                // Down branch: ub := floor.
                if node.lb[v.0] <= floor {
                    let mut child = node.clone();
                    child.ub[v.0] = floor;
                    child.bound = lp.objective;
                    child.depth = node.depth + 1;
                    heap.push(child);
                }
                // Up branch: lb := floor + 1.
                if node.ub[v.0] >= floor + 1.0 {
                    let mut child = node.clone();
                    child.lb[v.0] = floor + 1.0;
                    child.bound = lp.objective;
                    child.depth = node.depth + 1;
                    heap.push(child);
                }
            }
        }
    }

    match incumbent {
        Some((obj, x)) => MipSolution {
            status: SolveStatus::Optimal,
            objective: obj,
            x,
            nodes,
            best_bound: obj,
        },
        None => MipSolution {
            status: if any_lp_solved {
                // LPs solved but no integral point found and tree exhausted.
                SolveStatus::Infeasible
            } else {
                SolveStatus::Infeasible
            },
            objective: f64::INFINITY,
            x: Vec::new(),
            nodes,
            best_bound: best_open_bound,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Relation;

    #[test]
    fn knapsack_matches_brute_force() {
        // max Σ v_i x_i s.t. Σ w_i x_i ≤ W — minimize the negation.
        let values = [10.0, 13.0, 7.0, 8.0, 6.0];
        let weights = [5.0, 6.0, 3.0, 4.0, 2.0];
        let cap = 10.0;
        let mut p = Problem::new();
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| p.add_binary_var(format!("x{i}"), -v))
            .collect();
        let r = p.add_row("w", Relation::Le, cap);
        for (i, &v) in vars.iter().enumerate() {
            p.set_coeff(r, v, weights[i]);
        }
        let sol = solve_mip(&p, Default::default());
        assert!(sol.status.is_optimal());

        // Brute force.
        let mut best = 0.0f64;
        for mask in 0u32..32 {
            let (mut w, mut v) = (0.0, 0.0);
            for i in 0..5 {
                if mask & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= cap {
                best = best.max(v);
            }
        }
        assert!(
            (sol.objective + best).abs() < 1e-6,
            "got {}, want -{best}",
            sol.objective
        );
    }

    #[test]
    fn assignment_problem_is_integral() {
        // 3×3 assignment: minimize cost, one per row/column.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut p = Problem::new();
        let mut vars = [[VarId(0); 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                vars[i][j] = p.add_binary_var(format!("x{i}{j}"), cost[i][j]);
            }
        }
        for (i, row) in vars.iter().enumerate() {
            let r = p.add_row(format!("row{i}"), Relation::Eq, 1.0);
            for &var in row {
                p.set_coeff(r, var, 1.0);
            }
        }
        for j in 0..3 {
            let c = p.add_row(format!("col{j}"), Relation::Eq, 1.0);
            for row in &vars {
                p.set_coeff(c, row[j], 1.0);
            }
        }
        let sol = solve_mip(&p, Default::default());
        assert!(sol.status.is_optimal());
        // Optimal assignment: (0,1)=2? Enumerate: perms of columns:
        // 012: 4+3+6=13; 021: 4+7+1=12; 102: 2+4+6=12; 120: 2+7+3=12;
        // 201: 8+4+1=13; 210: 8+3+3=14 → best 12.
        assert!((sol.objective - 12.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        let mut p = Problem::new();
        let x = p.add_binary_var("x", 1.0);
        let r = p.add_row("r", Relation::Ge, 2.0);
        p.set_coeff(r, x, 1.0);
        let sol = solve_mip(&p, Default::default());
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn pure_lp_shortcut() {
        let mut p = Problem::new();
        let x = p.add_var("x", -1.0, 0.0, 5.0);
        let r = p.add_row("r", Relation::Le, 3.0);
        p.set_coeff(r, x, 1.0);
        let sol = solve_mip(&p, Default::default());
        assert!(sol.status.is_optimal());
        assert_eq!(sol.nodes, 1);
        assert!((sol.objective + 3.0).abs() < 1e-6);
    }

    #[test]
    fn general_integer_variables() {
        // min -x - y  s.t. 2x + 3y ≤ 12, x,y ∈ {0..4} integer.
        // Best: x=4 (8) leaves 4/3 → y=1 → obj -5. Check alternatives:
        // y=2 → 2x ≤ 6 → x=3 → -5. Either way obj = -5.
        let mut p = Problem::new();
        let x = p.add_int_var("x", -1.0, 0.0, 4.0);
        let y = p.add_int_var("y", -1.0, 0.0, 4.0);
        let r = p.add_row("r", Relation::Le, 12.0);
        p.set_coeff(r, x, 2.0);
        p.set_coeff(r, y, 3.0);
        let sol = solve_mip(&p, Default::default());
        assert!(sol.status.is_optimal());
        assert!((sol.objective + 5.0).abs() < 1e-6);
        for v in [x, y] {
            let val = sol.x[v.0];
            assert!((val - val.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn node_limit_reports_limit_status() {
        // A problem needing branching with max_nodes = 1.
        let mut p = Problem::new();
        let x = p.add_binary_var("x", -1.0);
        let y = p.add_binary_var("y", -1.0);
        let r = p.add_row("r", Relation::Le, 1.0);
        p.set_coeff(r, x, 1.0);
        p.set_coeff(r, y, 1.0);
        let opts = BranchBoundOptions {
            max_nodes: 1,
            ..Default::default()
        };
        let sol = solve_mip(&p, opts);
        // Either it finds the optimum in the single node (integral LP) or
        // reports the limit. The LP here is integral at a vertex, so both
        // outcomes are legal; just check coherence.
        assert!(sol.nodes <= 2);
    }
}
