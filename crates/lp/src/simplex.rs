//! Bounded-variable revised simplex method.
//!
//! This is the workhorse that replaces CPLEX for the reproduction: a
//! two-phase primal simplex over variables with `[lb, ub]` bounds, with a
//! densely maintained basis inverse (product-form eta updates plus
//! periodic refactorization), Dantzig pricing with a Bland anti-cycling
//! fallback, and support for appending columns to a solved instance and
//! re-optimizing — the operation Dantzig-Wolfe column generation needs.
//!
//! The implementation targets the problem sizes of PLAN-VNE masters
//! (hundreds of rows, thousands of columns), where a dense `B⁻¹` is both
//! simple and fast.

use crate::problem::{Problem, Relation};
use crate::solution::{LpSolution, SolveStatus};

/// Tunable solver parameters.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on simplex iterations across both phases.
    pub max_iterations: usize,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Dual (reduced-cost) optimality tolerance.
    pub opt_tol: f64,
    /// Refactorize the basis inverse every this many pivots.
    pub refactor_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_trigger: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200_000,
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            refactor_every: 100,
            bland_trigger: 2000,
        }
    }
}

/// Coefficients smaller than this are treated as zero in pivoting.
const PIVOT_ZERO: f64 = 1e-10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic,
    AtLower,
    AtUpper,
    /// Nonbasic free variable resting at value 0.
    FreeZero,
}

/// A bounded-variable revised primal simplex solver.
///
/// The solver owns an expanded copy of the problem: structural columns,
/// then one logical (slack) column per row, then one artificial column
/// per row. It can be queried for duals after solving and accepts new
/// columns via [`Simplex::add_column`] followed by
/// [`Simplex::reoptimize`].
///
/// # Examples
///
/// ```
/// use vne_lp::problem::{Problem, Relation};
/// use vne_lp::simplex::Simplex;
///
/// // minimize -3x - 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 (Dantzig's example)
/// let mut p = Problem::new();
/// let x = p.add_var("x", -3.0, 0.0, f64::INFINITY);
/// let y = p.add_var("y", -5.0, 0.0, f64::INFINITY);
/// let r1 = p.add_row("r1", Relation::Le, 4.0);
/// let r2 = p.add_row("r2", Relation::Le, 12.0);
/// let r3 = p.add_row("r3", Relation::Le, 18.0);
/// p.set_coeff(r1, x, 1.0);
/// p.set_coeff(r2, y, 2.0);
/// p.set_coeff(r3, x, 3.0);
/// p.set_coeff(r3, y, 2.0);
///
/// let mut s = Simplex::from_problem(&p);
/// let sol = s.solve();
/// assert!(sol.status.is_optimal());
/// assert!((sol.objective - (-36.0)).abs() < 1e-6);
/// assert!((sol.x[0] - 2.0).abs() < 1e-6 && (sol.x[1] - 6.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Simplex {
    opts: SimplexOptions,
    m: usize,
    n_struct: usize,
    /// Expanded columns: structural | logical | artificial.
    cols: Vec<Vec<(usize, f64)>>,
    /// Phase-2 objective (artificials have 0).
    obj: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    state: Vec<VarState>,
    /// Current value of every variable.
    x: Vec<f64>,
    /// Dense basis inverse, row-major `m × m`.
    binv: Vec<f64>,
    pivots_since_refactor: usize,
    iterations: usize,
    solved_once: bool,
}

impl Simplex {
    /// Builds a solver instance from a problem (integrality is ignored;
    /// use [`crate::branch_bound`] for MILPs).
    pub fn from_problem(problem: &Problem) -> Self {
        Self::with_options(problem, SimplexOptions::default())
    }

    /// Builds a solver with explicit options.
    pub fn with_options(problem: &Problem, opts: SimplexOptions) -> Self {
        let m = problem.num_rows();
        let n = problem.num_vars();
        let mut cols = problem.consolidated_cols();
        let mut obj = problem.obj.clone();
        let mut lb = problem.lb.clone();
        let mut ub = problem.ub.clone();
        // Logical columns: A x + s = b.
        for (i, row) in problem.rows.iter().enumerate() {
            cols.push(vec![(i, 1.0)]);
            obj.push(0.0);
            match row.relation {
                Relation::Le => {
                    lb.push(0.0);
                    ub.push(f64::INFINITY);
                }
                Relation::Ge => {
                    lb.push(f64::NEG_INFINITY);
                    ub.push(0.0);
                }
                Relation::Eq => {
                    lb.push(0.0);
                    ub.push(0.0);
                }
            }
        }
        // Artificial columns (coefficient signs set at solve time).
        for i in 0..m {
            cols.push(vec![(i, 1.0)]);
            obj.push(0.0);
            lb.push(0.0);
            ub.push(f64::INFINITY);
        }
        let rhs = problem.rows.iter().map(|r| r.rhs).collect();
        let ncols = n + 2 * m;
        Self {
            opts,
            m,
            n_struct: n,
            cols,
            obj,
            lb,
            ub,
            rhs,
            basis: Vec::new(),
            state: vec![VarState::AtLower; ncols],
            x: vec![0.0; ncols],
            binv: vec![0.0; m * m],
            pivots_since_refactor: 0,
            iterations: 0,
            solved_once: false,
        }
    }

    fn ncols(&self) -> usize {
        self.cols.len()
    }

    fn art_index(&self, row: usize) -> usize {
        self.ncols() - self.m + row
    }

    fn is_artificial(&self, j: usize) -> bool {
        j >= self.ncols() - self.m
    }

    /// Initial nonbasic resting value for variable `j`.
    fn resting(&self, j: usize) -> (f64, VarState) {
        if self.lb[j].is_finite() {
            (self.lb[j], VarState::AtLower)
        } else if self.ub[j].is_finite() {
            (self.ub[j], VarState::AtUpper)
        } else {
            (0.0, VarState::FreeZero)
        }
    }

    /// Solves the LP from scratch (two phases).
    pub fn solve(&mut self) -> LpSolution {
        self.iterations = 0;
        // Rest every non-artificial variable at a bound.
        for j in 0..self.ncols() - self.m {
            let (v, s) = self.resting(j);
            self.x[j] = v;
            self.state[j] = s;
        }
        // Residual rhs given the resting point.
        let mut btilde = self.rhs.clone();
        for j in 0..self.ncols() - self.m {
            if self.x[j] != 0.0 {
                for &(r, a) in &self.cols[j] {
                    btilde[r] -= a * self.x[j];
                }
            }
        }
        // Artificial basis: coefficient sign(b̃ᵢ) so values are |b̃ᵢ| ≥ 0.
        self.basis = (0..self.m).map(|i| self.art_index(i)).collect();
        for (i, &bt) in btilde.iter().enumerate() {
            let j = self.art_index(i);
            let sigma = if bt >= 0.0 { 1.0 } else { -1.0 };
            self.cols[j] = vec![(i, sigma)];
            self.lb[j] = 0.0;
            self.ub[j] = f64::INFINITY;
            self.state[j] = VarState::Basic;
            self.x[j] = bt.abs();
        }
        self.binv = vec![0.0; self.m * self.m];
        for i in 0..self.m {
            let sigma = self.cols[self.art_index(i)][0].1;
            self.binv[i * self.m + i] = sigma;
        }
        self.pivots_since_refactor = 0;

        // Phase 1: minimize the sum of artificials, unless they are all 0.
        let needs_phase1 = (0..self.m).any(|i| self.x[self.art_index(i)] > self.opts.feas_tol);
        if needs_phase1 {
            let phase1_cost: Vec<f64> = (0..self.ncols())
                .map(|j| if self.is_artificial(j) { 1.0 } else { 0.0 })
                .collect();
            let status = self.optimize(&phase1_cost, true);
            if status == SolveStatus::Limit {
                return self.make_solution(SolveStatus::Limit);
            }
            let infeas: f64 = (0..self.m)
                .map(|i| self.x[self.art_index(i)])
                .filter(|v| *v > 0.0)
                .sum();
            let scale = 1.0 + self.rhs.iter().map(|b| b.abs()).fold(0.0, f64::max);
            if infeas > self.opts.feas_tol * scale * 10.0 {
                return self.make_solution(SolveStatus::Infeasible);
            }
            self.evict_artificials();
        }
        // Lock artificials to zero for Phase 2.
        for i in 0..self.m {
            let j = self.art_index(i);
            self.ub[j] = 0.0;
            if self.state[j] != VarState::Basic {
                self.state[j] = VarState::AtLower;
                self.x[j] = 0.0;
            }
        }
        let status = self.optimize(&self.obj.clone(), false);
        self.solved_once = true;
        self.make_solution(status)
    }

    /// Appends a structural column (entering nonbasic at its lower bound)
    /// and returns its index among structural variables.
    ///
    /// Primal feasibility of the current basis is preserved as long as
    /// `lb` is finite (column generation always uses `lb = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `lb` is not finite or a row index is out of range.
    pub fn add_column(&mut self, obj: f64, lb: f64, ub: f64, coeffs: &[(usize, f64)]) -> usize {
        assert!(lb.is_finite(), "new columns must have a finite lower bound");
        for &(r, _) in coeffs {
            assert!(r < self.m, "row index out of range");
        }
        let j = self.n_struct;
        let mut col: Vec<(usize, f64)> = coeffs.to_vec();
        col.sort_by_key(|&(r, _)| r);
        self.cols.insert(j, col);
        self.obj.insert(j, obj);
        self.lb.insert(j, lb);
        self.ub.insert(j, ub);
        self.state.insert(j, VarState::AtLower);
        self.x.insert(j, lb);
        self.n_struct += 1;
        // Shift basis references to logical/artificial columns.
        for b in &mut self.basis {
            if *b >= j {
                *b += 1;
            }
        }
        if lb != 0.0 {
            // The new column shifts basic values; recompute them.
            self.recompute_basic_values();
        }
        j
    }

    /// Re-optimizes after columns were appended (phase 2 only; the
    /// current basis must be primal feasible, which `add_column`
    /// guarantees).
    ///
    /// # Panics
    ///
    /// Panics if called before [`Simplex::solve`].
    pub fn reoptimize(&mut self) -> LpSolution {
        assert!(self.solved_once, "call solve() before reoptimize()");
        self.iterations = 0;
        let status = self.optimize(&self.obj.clone(), false);
        self.make_solution(status)
    }

    /// The dual vector `y = c_B B⁻¹` of the last solve.
    pub fn duals(&self) -> Vec<f64> {
        self.btran(&self.obj)
    }

    /// The value of structural variable `j`.
    pub fn value(&self, j: usize) -> f64 {
        self.x[j]
    }

    /// Values of all structural variables.
    pub fn values(&self) -> Vec<f64> {
        self.x[..self.n_struct].to_vec()
    }

    /// Objective value `cᵀx` over structural variables.
    pub fn objective_value(&self) -> f64 {
        (0..self.n_struct).map(|j| self.obj[j] * self.x[j]).sum()
    }

    fn make_solution(&self, status: SolveStatus) -> LpSolution {
        LpSolution {
            status,
            objective: self.objective_value(),
            x: self.values(),
            duals: self.duals(),
            iterations: self.iterations,
        }
    }

    /// y = c_B^T · B⁻¹ restricted to basic costs of `cost`.
    fn btran(&self, cost: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (pos, &bj) in self.basis.iter().enumerate() {
            let cb = cost[bj];
            if cb != 0.0 {
                let row = &self.binv[pos * m..(pos + 1) * m];
                for i in 0..m {
                    y[i] += cb * row[i];
                }
            }
        }
        y
    }

    /// w = B⁻¹ · A_j.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for &(r, a) in &self.cols[j] {
            if a != 0.0 {
                for (i, wi) in w.iter_mut().enumerate() {
                    *wi += self.binv[i * m + r] * a;
                }
            }
        }
        w
    }

    fn reduced_cost(&self, j: usize, y: &[f64], cost: &[f64]) -> f64 {
        let mut d = cost[j];
        for &(r, a) in &self.cols[j] {
            d -= y[r] * a;
        }
        d
    }

    /// The primal simplex loop for a given cost vector.
    fn optimize(&mut self, cost: &[f64], phase1: bool) -> SolveStatus {
        let mut consecutive_degenerate = 0usize;
        let mut use_bland = false;
        loop {
            if self.iterations >= self.opts.max_iterations {
                return SolveStatus::Limit;
            }
            self.iterations += 1;
            let y = self.btran(cost);

            // Pricing.
            let mut entering: Option<(usize, f64, i8)> = None;
            for j in 0..self.ncols() {
                match self.state[j] {
                    VarState::Basic => continue,
                    _ if self.lb[j] == self.ub[j] => continue, // fixed
                    _ => {}
                }
                if phase1 && self.is_artificial(j) {
                    // Never re-enter an artificial in phase 1.
                    continue;
                }
                let d = self.reduced_cost(j, &y, cost);
                let (viol, dir) = match self.state[j] {
                    VarState::AtLower => (-d, 1i8),
                    VarState::AtUpper => (d, -1i8),
                    VarState::FreeZero => (d.abs(), if d < 0.0 { 1 } else { -1 }),
                    VarState::Basic => unreachable!(),
                };
                if viol > self.opts.opt_tol {
                    if use_bland {
                        entering = Some((j, viol, dir));
                        break;
                    }
                    match entering {
                        Some((_, best, _)) if viol <= best => {}
                        _ => entering = Some((j, viol, dir)),
                    }
                }
            }
            let Some((j, _, dir)) = entering else {
                return SolveStatus::Optimal;
            };
            let dir = f64::from(dir);

            // Ratio test.
            let w = self.ftran(j);
            let range = self.ub[j] - self.lb[j];
            let mut t_star = if range.is_finite() {
                range
            } else {
                f64::INFINITY
            };
            let mut leaving: Option<usize> = None;
            let mut leaving_coef: f64 = 0.0;
            for (i, &wi) in w.iter().enumerate() {
                if wi.abs() <= PIVOT_ZERO {
                    continue;
                }
                let bj = self.basis[i];
                let xv = self.x[bj];
                let rate = dir * wi; // x_basic(i) decreases at `rate` per unit t
                let t_i = if rate > 0.0 {
                    if self.lb[bj].is_finite() {
                        ((xv - self.lb[bj]) / rate).max(0.0)
                    } else {
                        continue;
                    }
                } else if self.ub[bj].is_finite() {
                    ((self.ub[bj] - xv) / -rate).max(0.0)
                } else {
                    continue;
                };
                let better = match leaving {
                    None => t_i < t_star - 1e-12,
                    Some(_) => {
                        t_i < t_star - 1e-12
                            || (t_i < t_star + 1e-12 && wi.abs() > leaving_coef.abs())
                    }
                };
                if better {
                    t_star = t_i;
                    leaving = Some(i);
                    leaving_coef = wi;
                }
            }

            if t_star.is_infinite() {
                return SolveStatus::Unbounded;
            }
            if t_star <= 1e-10 {
                consecutive_degenerate += 1;
                if consecutive_degenerate > self.opts.bland_trigger {
                    use_bland = true;
                }
            } else {
                consecutive_degenerate = 0;
                use_bland = false;
            }

            match leaving {
                None => {
                    // Bound flip: j travels to its opposite bound.
                    for (i, &wi) in w.iter().enumerate() {
                        if wi != 0.0 {
                            let bj = self.basis[i];
                            self.x[bj] -= dir * t_star * wi;
                        }
                    }
                    self.x[j] += dir * t_star;
                    self.state[j] = match self.state[j] {
                        VarState::AtLower => VarState::AtUpper,
                        VarState::AtUpper => VarState::AtLower,
                        s => s,
                    };
                }
                Some(r) => {
                    // Update basic values, move j into the basis at row r.
                    for (i, &wi) in w.iter().enumerate() {
                        if wi != 0.0 {
                            let bj = self.basis[i];
                            self.x[bj] -= dir * t_star * wi;
                        }
                    }
                    let out = self.basis[r];
                    // The leaving variable rests at the bound it hit.
                    let out_rate = dir * w[r];
                    if out_rate > 0.0 {
                        self.x[out] = self.lb[out];
                        self.state[out] = VarState::AtLower;
                    } else {
                        self.x[out] = self.ub[out];
                        self.state[out] = VarState::AtUpper;
                    }
                    self.x[j] += dir * t_star;
                    self.state[j] = VarState::Basic;
                    self.basis[r] = j;
                    self.update_binv(r, &w);
                    self.pivots_since_refactor += 1;
                    if self.pivots_since_refactor >= self.opts.refactor_every {
                        self.refactor();
                    }
                }
            }
        }
    }

    /// Product-form update of `B⁻¹` after `basis[r]` was replaced; `w` is
    /// the FTRAN of the entering column.
    fn update_binv(&mut self, r: usize, w: &[f64]) {
        let m = self.m;
        let pivot = w[r];
        debug_assert!(pivot.abs() > PIVOT_ZERO, "singular pivot");
        let inv = 1.0 / pivot;
        for k in 0..m {
            self.binv[r * m + k] *= inv;
        }
        for (i, &f) in w.iter().enumerate() {
            if i != r && f != 0.0 {
                for k in 0..m {
                    self.binv[i * m + k] -= f * self.binv[r * m + k];
                }
            }
        }
    }

    /// Rebuilds `B⁻¹` from the basis by Gauss-Jordan elimination with
    /// partial pivoting, then recomputes basic values. If the basis is
    /// numerically singular the offending column is replaced by the
    /// artificial of that row.
    fn refactor(&mut self) {
        let m = self.m;
        loop {
            // Dense B from basis columns.
            let mut bmat = vec![0.0; m * m];
            for (pos, &j) in self.basis.iter().enumerate() {
                for &(r, a) in &self.cols[j] {
                    bmat[r * m + pos] = a;
                }
            }
            match invert(&mut bmat, m) {
                Some(inv) => {
                    self.binv = inv;
                    break;
                }
                None => {
                    // Basis repair: find a row whose basic column made B
                    // singular by testing rank incrementally is costly;
                    // instead swap every near-dependent position for its
                    // artificial. Rare in practice.
                    let mut replaced = false;
                    for i in 0..m {
                        let j = self.art_index(i);
                        if !self.basis.contains(&j) {
                            let old = self.basis[i];
                            self.basis[i] = j;
                            self.state[old] = VarState::AtLower;
                            self.x[old] = if self.lb[old].is_finite() {
                                self.lb[old]
                            } else {
                                0.0
                            };
                            self.state[j] = VarState::Basic;
                            replaced = true;
                            break;
                        }
                    }
                    assert!(replaced, "unable to repair singular basis");
                }
            }
        }
        self.pivots_since_refactor = 0;
        self.recompute_basic_values();
    }

    /// x_B = B⁻¹ (b − N x_N).
    fn recompute_basic_values(&mut self) {
        let m = self.m;
        let mut btilde = self.rhs.clone();
        for j in 0..self.ncols() {
            if self.state[j] != VarState::Basic && self.x[j] != 0.0 {
                for &(r, a) in &self.cols[j] {
                    btilde[r] -= a * self.x[j];
                }
            }
        }
        for (pos, &j) in self.basis.iter().enumerate() {
            let mut v = 0.0;
            let row = &self.binv[pos * m..(pos + 1) * m];
            for i in 0..m {
                v += row[i] * btilde[i];
            }
            self.x[j] = v;
        }
    }

    /// After phase 1, pivots remaining basic artificials out where a
    /// non-artificial column with nonzero pivot exists.
    fn evict_artificials(&mut self) {
        let m = self.m;
        for pos in 0..m {
            let bj = self.basis[pos];
            if !self.is_artificial(bj) {
                continue;
            }
            // ρ = row `pos` of B⁻¹; candidate pivot element is ρ·A_j.
            let rho: Vec<f64> = self.binv[pos * m..(pos + 1) * m].to_vec();
            let mut found = None;
            for j in 0..self.ncols() - self.m {
                if self.state[j] == VarState::Basic || self.lb[j] == self.ub[j] {
                    continue;
                }
                let mut piv = 0.0;
                for &(r, a) in &self.cols[j] {
                    piv += rho[r] * a;
                }
                if piv.abs() > 1e-7 {
                    found = Some(j);
                    break;
                }
            }
            if let Some(j) = found {
                // Degenerate pivot: artificial leaves at value 0.
                let w = self.ftran(j);
                let out = self.basis[pos];
                self.x[j] = match self.state[j] {
                    VarState::AtLower => self.lb[j],
                    VarState::AtUpper => self.ub[j],
                    _ => 0.0,
                };
                self.state[out] = VarState::AtLower;
                self.x[out] = 0.0;
                self.state[j] = VarState::Basic;
                self.basis[pos] = j;
                self.update_binv(pos, &w);
                self.pivots_since_refactor += 1;
            }
            // Otherwise the row is linearly dependent: the artificial
            // stays basic, fixed to zero by phase-2 bounds.
        }
        if self.pivots_since_refactor >= self.opts.refactor_every {
            self.refactor();
        }
    }
}

/// Inverts a dense row-major `m × m` matrix by Gauss-Jordan with partial
/// pivoting. Returns `None` if a pivot smaller than `PIVOT_ZERO` is met.
fn invert(a: &mut [f64], m: usize) -> Option<Vec<f64>> {
    let mut inv = vec![0.0; m * m];
    for i in 0..m {
        inv[i * m + i] = 1.0;
    }
    for col in 0..m {
        // Partial pivot.
        let mut best = col;
        let mut best_abs = a[col * m + col].abs();
        for r in col + 1..m {
            let v = a[r * m + col].abs();
            if v > best_abs {
                best = r;
                best_abs = v;
            }
        }
        if best_abs <= PIVOT_ZERO {
            return None;
        }
        if best != col {
            for k in 0..m {
                a.swap(col * m + k, best * m + k);
                inv.swap(col * m + k, best * m + k);
            }
        }
        let piv = a[col * m + col];
        let inv_piv = 1.0 / piv;
        for k in 0..m {
            a[col * m + k] *= inv_piv;
            inv[col * m + k] *= inv_piv;
        }
        for r in 0..m {
            if r != col {
                let f = a[r * m + col];
                if f != 0.0 {
                    for k in 0..m {
                        a[r * m + k] -= f * a[col * m + k];
                        inv[r * m + k] -= f * inv[col * m + k];
                    }
                }
            }
        }
    }
    Some(inv)
}

/// Convenience one-shot LP solve.
pub fn solve_lp(problem: &Problem) -> LpSolution {
    Simplex::from_problem(problem).solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn dantzig_example() {
        let mut p = Problem::new();
        let x = p.add_var("x", -3.0, 0.0, f64::INFINITY);
        let y = p.add_var("y", -5.0, 0.0, f64::INFINITY);
        let r1 = p.add_row("r1", Relation::Le, 4.0);
        let r2 = p.add_row("r2", Relation::Le, 12.0);
        let r3 = p.add_row("r3", Relation::Le, 18.0);
        p.set_coeff(r1, x, 1.0);
        p.set_coeff(r2, y, 2.0);
        p.set_coeff(r3, x, 3.0);
        p.set_coeff(r3, y, 2.0);
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.objective, -36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
        // Duals: y1 = 0 (slack), y2 = -3/2, y3 = -1.
        assert_close(sol.duals[0], 0.0);
        assert_close(sol.duals[1], -1.5);
        assert_close(sol.duals[2], -1.0);
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y  s.t. x + y = 10, x - y = 2  → x=6, y=4, obj 10.
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
        let y = p.add_var("y", 1.0, 0.0, f64::INFINITY);
        let r1 = p.add_row("sum", Relation::Eq, 10.0);
        let r2 = p.add_row("diff", Relation::Eq, 2.0);
        p.set_coeff(r1, x, 1.0);
        p.set_coeff(r1, y, 1.0);
        p.set_coeff(r2, x, 1.0);
        p.set_coeff(r2, y, -1.0);
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.x[0], 6.0);
        assert_close(sol.x[1], 4.0);
        assert_close(sol.objective, 10.0);
    }

    #[test]
    fn ge_rows_and_duals() {
        // min 2x + 3y  s.t. x + y ≥ 4, x ≥ 1 → x=4,y=0? obj: x=4 → 8;
        // candidates: (4,0): 8, (1,3): 11 → optimum (4,0).
        let mut p = Problem::new();
        let x = p.add_var("x", 2.0, 0.0, f64::INFINITY);
        let y = p.add_var("y", 3.0, 0.0, f64::INFINITY);
        let r1 = p.add_row("cover", Relation::Ge, 4.0);
        let r2 = p.add_row("xmin", Relation::Ge, 1.0);
        p.set_coeff(r1, x, 1.0);
        p.set_coeff(r1, y, 1.0);
        p.set_coeff(r2, x, 1.0);
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.objective, 8.0);
        assert_close(sol.x[0], 4.0);
        assert_close(sol.x[1], 0.0);
        // Binding Ge row in a min problem has dual ≥ 0: y1 = 2.
        assert_close(sol.duals[0], 2.0);
        assert_close(sol.duals[1], 0.0);
    }

    #[test]
    fn upper_bounded_variables() {
        // min -x - 2y  s.t. x + y ≤ 4, 0 ≤ x ≤ 3, 0 ≤ y ≤ 2 → y=2, x=2, obj -6.
        let mut p = Problem::new();
        let x = p.add_var("x", -1.0, 0.0, 3.0);
        let y = p.add_var("y", -2.0, 0.0, 2.0);
        let r = p.add_row("r", Relation::Le, 4.0);
        p.set_coeff(r, x, 1.0);
        p.set_coeff(r, y, 1.0);
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.objective, -6.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 2.0);
    }

    #[test]
    fn bound_flip_only_problem() {
        // min -x - y with 0 ≤ x ≤ 1, 0 ≤ y ≤ 2 and a vacuous row.
        let mut p = Problem::new();
        let _x = p.add_var("x", -1.0, 0.0, 1.0);
        let _y = p.add_var("y", -1.0, 0.0, 2.0);
        let r = p.add_row("r", Relation::Le, 100.0);
        p.set_coeff(r, VarId0(0), 1.0);
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.objective, -3.0);
    }

    // Helper to construct VarId without importing (tests readability).
    #[allow(non_snake_case)]
    fn VarId0(i: usize) -> crate::problem::VarId {
        crate::problem::VarId(i)
    }

    #[test]
    fn infeasible_detection() {
        // x ≤ 1 and x ≥ 3.
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, 0.0, f64::INFINITY);
        let r1 = p.add_row("le", Relation::Le, 1.0);
        let r2 = p.add_row("ge", Relation::Ge, 3.0);
        p.set_coeff(r1, x, 1.0);
        p.set_coeff(r2, x, 1.0);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_detection() {
        // min -x, x ≥ 0 free of rows except vacuous.
        let mut p = Problem::new();
        let x = p.add_var("x", -1.0, 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, 0.0, 1.0);
        let r = p.add_row("r", Relation::Le, 5.0);
        p.set_coeff(r, y, 1.0);
        let _ = x;
        let sol = solve_lp(&p);
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn free_variables() {
        // min x  s.t. x ≥ -5 expressed via row (x free).
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, f64::NEG_INFINITY, f64::INFINITY);
        let r = p.add_row("r", Relation::Ge, -5.0);
        p.set_coeff(r, x, 1.0);
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.x[0], -5.0);
        assert_close(sol.objective, -5.0);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x + y s.t. -x - y ≤ -3 (i.e. x + y ≥ 3), x,y ∈ [0,10].
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, 0.0, 10.0);
        let y = p.add_var("y", 1.0, 0.0, 10.0);
        let r = p.add_row("r", Relation::Le, -3.0);
        p.set_coeff(r, x, -1.0);
        p.set_coeff(r, y, -1.0);
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the optimum.
        let mut p = Problem::new();
        let x = p.add_var("x", -1.0, 0.0, f64::INFINITY);
        let y = p.add_var("y", -1.0, 0.0, f64::INFINITY);
        for rhs in [2.0, 2.0, 2.0, 2.0] {
            let r = p.add_row("r", Relation::Le, rhs);
            p.set_coeff(r, x, 1.0);
            p.set_coeff(r, y, 1.0);
        }
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.objective, -2.0);
    }

    #[test]
    fn redundant_equalities_keep_artificial_basic() {
        // x + y = 2 twice (linearly dependent equality rows).
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
        let y = p.add_var("y", 2.0, 0.0, f64::INFINITY);
        for _ in 0..2 {
            let r = p.add_row("r", Relation::Eq, 2.0);
            p.set_coeff(r, x, 1.0);
            p.set_coeff(r, y, 1.0);
        }
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.objective, 2.0);
        assert_close(sol.x[0], 2.0);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, 2.0, 2.0); // fixed at 2
        let y = p.add_var("y", 1.0, 0.0, f64::INFINITY);
        let r = p.add_row("r", Relation::Eq, 5.0);
        p.set_coeff(r, x, 1.0);
        p.set_coeff(r, y, 1.0);
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 3.0);
    }

    #[test]
    fn column_generation_workflow() {
        // Cutting-stock-like master: cover demand 7 with pattern columns.
        // Start with a trivial expensive column, add a better one, check
        // the objective improves after reoptimize.
        let mut p = Problem::new();
        let expensive = p.add_var("slack-col", 10.0, 0.0, f64::INFINITY);
        let r = p.add_row("demand", Relation::Ge, 7.0);
        p.set_coeff(r, expensive, 1.0);
        let mut s = Simplex::from_problem(&p);
        let sol1 = s.solve();
        assert!(sol1.status.is_optimal());
        assert_close(sol1.objective, 70.0);
        let duals = s.duals();
        assert_close(duals[0], 10.0);
        // New column with cost 3, coefficient 2: reduced cost 3 - 2·10 < 0.
        let j = s.add_column(3.0, 0.0, f64::INFINITY, &[(0, 2.0)]);
        let sol2 = s.reoptimize();
        assert!(sol2.status.is_optimal());
        assert_close(sol2.objective, 10.5);
        assert_close(s.value(j), 3.5);
    }

    #[test]
    fn larger_random_lp_against_feasibility() {
        // A pseudo-random dense-ish LP; verify the solution is feasible
        // and complementary-slackness-consistent.
        let mut p = Problem::new();
        let n = 12;
        let m = 8;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let vars: Vec<_> = (0..n)
            .map(|j| p.add_var(format!("x{j}"), rng() * 2.0 - 1.0, 0.0, 2.0))
            .collect();
        for i in 0..m {
            let r = p.add_row(format!("r{i}"), Relation::Le, 3.0 + rng() * 3.0);
            for &v in &vars {
                if rng() < 0.5 {
                    p.set_coeff(r, v, rng());
                }
            }
        }
        let sol = solve_lp(&p);
        assert!(sol.status.is_optimal());
        assert!(p.is_feasible(&sol.x, 1e-6));
        // Le rows must have non-positive duals.
        for &d in &sol.duals {
            assert!(d <= 1e-7);
        }
    }
}
