#![warn(missing_docs)]
//! # vne-lp — LP/MILP solver substrate
//!
//! The OLIVE paper solves its PLAN-VNE linear program and the FULLG
//! baseline's per-request ILPs with IBM CPLEX. This crate is the
//! from-scratch replacement used by the reproduction:
//!
//! * [`problem`] — a column-major LP/MILP model builder;
//! * [`simplex`] — a bounded-variable two-phase revised primal simplex
//!   with dense basis-inverse maintenance, dual extraction, and
//!   incremental column addition (the substrate for Dantzig-Wolfe column
//!   generation in `vne-olive`);
//! * [`branch_bound`] — best-first branch-and-bound over the simplex for
//!   mixed-integer programs;
//! * [`solution`] — shared status/solution types.
//!
//! ## Example
//!
//! ```
//! use vne_lp::problem::{Problem, Relation};
//! use vne_lp::simplex::solve_lp;
//!
//! // minimize x + y subject to x + 2y ≥ 4, 3x + y ≥ 6
//! let mut p = Problem::new();
//! let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
//! let y = p.add_var("y", 1.0, 0.0, f64::INFINITY);
//! let r1 = p.add_row("r1", Relation::Ge, 4.0);
//! let r2 = p.add_row("r2", Relation::Ge, 6.0);
//! p.set_coeff(r1, x, 1.0);
//! p.set_coeff(r1, y, 2.0);
//! p.set_coeff(r2, x, 3.0);
//! p.set_coeff(r2, y, 1.0);
//! let sol = solve_lp(&p);
//! assert!(sol.status.is_optimal());
//! assert!((sol.objective - 2.8).abs() < 1e-6); // x = 1.6, y = 1.2
//! ```

pub mod branch_bound;
pub mod problem;
pub mod simplex;
pub mod solution;

pub use branch_bound::{solve_mip, BranchBoundOptions};
pub use problem::{Problem, Relation, RowId, VarId};
pub use simplex::{solve_lp, Simplex, SimplexOptions};
pub use solution::{LpSolution, MipSolution, SolveStatus};
