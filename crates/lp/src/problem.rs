//! Linear / mixed-integer program model builder.
//!
//! A [`Problem`] is a minimization program
//!
//! ```text
//!   minimize    cᵀ x
//!   subject to  aᵢ x  {≤,=,≥}  bᵢ       for every row i
//!               lbⱼ ≤ xⱼ ≤ ubⱼ          for every variable j
//!               xⱼ ∈ ℤ                   for integer-flagged variables
//! ```
//!
//! Columns are stored sparsely (column-major), which is what both the
//! revised simplex and Dantzig-Wolfe column generation want.

/// Index of a decision variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// Index of a constraint row in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub usize);

/// Relation of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `aᵢ x ≤ bᵢ`
    Le,
    /// `aᵢ x = bᵢ`
    Eq,
    /// `aᵢ x ≥ bᵢ`
    Ge,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear (or mixed-integer) minimization program.
///
/// # Examples
///
/// ```
/// use vne_lp::problem::{Problem, Relation};
///
/// // minimize -x - 2y  s.t.  x + y ≤ 4,  y ≤ 2,  x,y ≥ 0
/// let mut p = Problem::new();
/// let x = p.add_var("x", -1.0, 0.0, f64::INFINITY);
/// let y = p.add_var("y", -2.0, 0.0, 2.0);
/// let r = p.add_row("cap", Relation::Le, 4.0);
/// p.set_coeff(r, x, 1.0);
/// p.set_coeff(r, y, 1.0);
/// assert_eq!(p.num_vars(), 2);
/// assert_eq!(p.num_rows(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) obj: Vec<f64>,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) integer: Vec<bool>,
    /// Column-major coefficients: `cols[j] = [(row, coeff), …]`.
    pub(crate) cols: Vec<Vec<(usize, f64)>>,
    pub(crate) rows: Vec<Row>,
    pub(crate) var_names: Vec<String>,
    pub(crate) row_names: Vec<String>,
}

impl Problem {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable with objective coefficient `obj` and
    /// bounds `[lb, ub]` (use `f64::NEG_INFINITY` / `f64::INFINITY` for
    /// free directions). Returns the variable id.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or a bound is NaN.
    pub fn add_var(&mut self, name: impl Into<String>, obj: f64, lb: f64, ub: f64) -> VarId {
        assert!(
            !lb.is_nan() && !ub.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(lb <= ub, "variable lower bound exceeds upper bound");
        let id = VarId(self.obj.len());
        self.obj.push(obj);
        self.lb.push(lb);
        self.ub.push(ub);
        self.integer.push(false);
        self.cols.push(Vec::new());
        self.var_names.push(name.into());
        id
    }

    /// Adds an integer variable (used by branch-and-bound).
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or a bound is NaN.
    pub fn add_int_var(&mut self, name: impl Into<String>, obj: f64, lb: f64, ub: f64) -> VarId {
        let id = self.add_var(name, obj, lb, ub);
        self.integer[id.0] = true;
        id
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary_var(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_int_var(name, obj, 0.0, 1.0)
    }

    /// Adds a constraint row `… {relation} rhs` with no coefficients yet.
    pub fn add_row(&mut self, name: impl Into<String>, relation: Relation, rhs: f64) -> RowId {
        let id = RowId(self.rows.len());
        self.rows.push(Row { relation, rhs });
        self.row_names.push(name.into());
        id
    }

    /// Sets (accumulates) the coefficient of `var` in `row`.
    ///
    /// Multiple calls for the same `(row, var)` pair add up, which is
    /// convenient when building flow-conservation rows incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `var` is out of range.
    pub fn set_coeff(&mut self, row: RowId, var: VarId, coeff: f64) {
        assert!(row.0 < self.rows.len(), "row out of range");
        assert!(var.0 < self.cols.len(), "variable out of range");
        if coeff != 0.0 {
            self.cols[var.0].push((row.0, coeff));
        }
    }

    /// Adds a variable together with its full column of coefficients
    /// (the column-generation entry point).
    pub fn add_var_with_column(
        &mut self,
        name: impl Into<String>,
        obj: f64,
        lb: f64,
        ub: f64,
        coeffs: &[(RowId, f64)],
    ) -> VarId {
        let id = self.add_var(name, obj, lb, ub);
        for &(row, c) in coeffs {
            self.set_coeff(row, id, c);
        }
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether any variable is integer-flagged.
    pub fn has_integers(&self) -> bool {
        self.integer.iter().any(|&i| i)
    }

    /// The ids of integer-flagged variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.integer
            .iter()
            .enumerate()
            .filter(|(_, &i)| i)
            .map(|(j, _)| VarId(j))
            .collect()
    }

    /// The objective coefficient of `var`.
    pub fn objective(&self, var: VarId) -> f64 {
        self.obj[var.0]
    }

    /// The bounds of `var`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.lb[var.0], self.ub[var.0])
    }

    /// Overrides the bounds of `var` (used by branch-and-bound).
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or a bound is NaN.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        assert!(
            !lb.is_nan() && !ub.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(lb <= ub, "variable lower bound exceeds upper bound");
        self.lb[var.0] = lb;
        self.ub[var.0] = ub;
    }

    /// The name of `var`.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.var_names[var.0]
    }

    /// The name of `row`.
    pub fn row_name(&self, row: RowId) -> &str {
        &self.row_names[row.0]
    }

    /// Consolidates duplicate `(row, var)` entries within each column
    /// (summing them) and drops exact zeros. Called by solvers before use.
    pub(crate) fn consolidated_cols(&self) -> Vec<Vec<(usize, f64)>> {
        self.cols
            .iter()
            .map(|col| {
                let mut c = col.clone();
                c.sort_by_key(|&(r, _)| r);
                let mut out: Vec<(usize, f64)> = Vec::with_capacity(c.len());
                for (r, v) in c {
                    match out.last_mut() {
                        Some((lr, lv)) if *lr == r => *lv += v,
                        _ => out.push((r, v)),
                    }
                }
                out.retain(|&(_, v)| v != 0.0);
                out
            })
            .collect()
    }

    /// Evaluates `cᵀ x` for a candidate solution.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.obj.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of `x` within tolerance `tol`
    /// (row activities and variable bounds).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (j, &v) in x.iter().enumerate() {
            if v < self.lb[j] - tol || v > self.ub[j] + tol {
                return false;
            }
        }
        let mut activity = vec![0.0; self.num_rows()];
        for (j, col) in self.cols.iter().enumerate() {
            for &(r, a) in col {
                activity[r] += a * x[j];
            }
        }
        for (i, row) in self.rows.iter().enumerate() {
            let ok = match row.relation {
                Relation::Le => activity[i] <= row.rhs + tol,
                Relation::Ge => activity[i] >= row.rhs - tol,
                Relation::Eq => (activity[i] - row.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_problem() {
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, 0.0, 10.0);
        let y = p.add_int_var("y", 2.0, 0.0, 1.0);
        let r = p.add_row("r", Relation::Le, 5.0);
        p.set_coeff(r, x, 1.0);
        p.set_coeff(r, y, 3.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_rows(), 1);
        assert!(p.has_integers());
        assert_eq!(p.integer_vars(), vec![y]);
        assert_eq!(p.objective(x), 1.0);
        assert_eq!(p.bounds(y), (0.0, 1.0));
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.row_name(r), "r");
    }

    #[test]
    fn coefficients_accumulate() {
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, 0.0, 1.0);
        let r = p.add_row("r", Relation::Eq, 2.0);
        p.set_coeff(r, x, 1.0);
        p.set_coeff(r, x, 2.0);
        let cols = p.consolidated_cols();
        assert_eq!(cols[0], vec![(0, 3.0)]);
    }

    #[test]
    fn consolidation_drops_cancelled_terms() {
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, 0.0, 1.0);
        let r = p.add_row("r", Relation::Eq, 0.0);
        p.set_coeff(r, x, 1.0);
        p.set_coeff(r, x, -1.0);
        let cols = p.consolidated_cols();
        assert!(cols[0].is_empty());
    }

    #[test]
    fn feasibility_check() {
        let mut p = Problem::new();
        let x = p.add_var("x", -1.0, 0.0, 4.0);
        let y = p.add_var("y", -1.0, 0.0, 4.0);
        let r = p.add_row("r", Relation::Le, 5.0);
        p.set_coeff(r, x, 1.0);
        p.set_coeff(r, y, 1.0);
        assert!(p.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!p.is_feasible(&[3.0, 3.0], 1e-9)); // row violated
        assert!(!p.is_feasible(&[5.0, 0.0], 1e-9)); // bound violated
        assert!(!p.is_feasible(&[1.0], 1e-9)); // wrong arity
        assert_eq!(p.objective_value(&[2.0, 3.0]), -5.0);
    }

    #[test]
    fn add_var_with_column() {
        let mut p = Problem::new();
        let r1 = p.add_row("r1", Relation::Le, 1.0);
        let r2 = p.add_row("r2", Relation::Eq, 2.0);
        let v = p.add_var_with_column("v", 3.0, 0.0, 1.0, &[(r1, 1.5), (r2, -1.0)]);
        let cols = p.consolidated_cols();
        assert_eq!(cols[v.0], vec![(0, 1.5), (1, -1.0)]);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper")]
    fn rejects_crossed_bounds() {
        let mut p = Problem::new();
        p.add_var("x", 0.0, 1.0, 0.0);
    }
}
