//! Solver outcome types shared by the simplex and branch-and-bound.

/// Termination status of an LP or MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// An optimal solution was found.
    Optimal,
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The iteration or node limit was reached before proving optimality.
    Limit,
}

impl SolveStatus {
    /// Whether a usable (optimal) solution is available.
    pub fn is_optimal(self) -> bool {
        self == SolveStatus::Optimal
    }
}

impl std::fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::Unbounded => "unbounded",
            SolveStatus::Limit => "limit reached",
        };
        f.write_str(s)
    }
}

/// Solution of a linear program.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status.
    pub status: SolveStatus,
    /// Optimal objective value (meaningful when `status` is optimal).
    pub objective: f64,
    /// Values of the structural variables, indexed like the problem.
    pub x: Vec<f64>,
    /// Dual values `y` per row (`y = c_B B⁻¹`): the reduced cost of a
    /// column `j` is `c_j − y·A_j`. For a minimization problem binding
    /// `≤` rows have `y ≤ 0`.
    pub duals: Vec<f64>,
    /// Number of simplex iterations performed.
    pub iterations: usize,
}

/// Solution of a mixed-integer program.
#[derive(Debug, Clone)]
pub struct MipSolution {
    /// Termination status (`Optimal` means proven optimal).
    pub status: SolveStatus,
    /// Objective of the best integral solution found.
    pub objective: f64,
    /// Best integral solution found (empty if none).
    pub x: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
    /// Best lower bound proven (equals `objective` at optimality).
    pub best_bound: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display_and_query() {
        assert!(SolveStatus::Optimal.is_optimal());
        assert!(!SolveStatus::Infeasible.is_optimal());
        assert_eq!(SolveStatus::Unbounded.to_string(), "unbounded");
        assert_eq!(SolveStatus::Limit.to_string(), "limit reached");
    }
}
