//! Sampling distributions implemented from first principles.
//!
//! The offline dependency set provides only uniform randomness (`rand`),
//! so the distributions the paper's workload needs — normal (element and
//! request sizes), exponential (durations), Zipf (node popularity),
//! Poisson (arrivals), lognormal (CAIDA-like flow sizes) — are
//! implemented here and unit-tested against their analytic moments.

use rand::Rng;

/// Normal distribution via the Box-Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean μ.
    pub mean: f64,
    /// Standard deviation σ ≥ 0.
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution `N(mean, std_dev²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite(),
            "parameters must be finite"
        );
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Self { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; u ∈ (0, 1] to avoid ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        let v: f64 = rng.gen();
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        self.mean + self.std_dev * z
    }

    /// Draws a sample truncated below at `min` (resampling, with a final
    /// clamp after 64 attempts to guarantee termination).
    pub fn sample_truncated<R: Rng + ?Sized>(&self, rng: &mut R, min: f64) -> f64 {
        for _ in 0..64 {
            let x = self.sample(rng);
            if x >= min {
                return x;
            }
        }
        min
    }
}

/// Exponential distribution parameterized by its mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Mean `1/λ`.
    pub mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Self { mean }
    }

    /// Draws one sample by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        -self.mean * u.ln()
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `alpha`
/// (`P(k) ∝ k^−α`), sampled through a precomputed CDF.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The probability weight of 0-based rank `i`.
    pub fn weight(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Poisson distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    /// Rate λ.
    pub lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with rate `lambda ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be non-negative"
        );
        Self { lambda }
    }

    /// Draws one sample (Knuth's method for small λ, normal approximation
    /// with continuity correction for λ > 30).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda > 30.0 {
            let n = Normal::new(self.lambda, self.lambda.sqrt());
            return n.sample(rng).round().max(0.0) as u64;
        }
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

/// Lognormal distribution parameterized by the *target* mean and the σ of
/// the underlying normal (used by the CAIDA-like heavy-tailed trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal whose mean is `mean` and whose underlying
    /// normal has standard deviation `sigma` (larger σ ⇒ heavier tail).
    ///
    /// # Panics
    ///
    /// Panics if `mean ≤ 0` or `sigma < 0`.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        // E[X] = exp(μ + σ²/2) ⇒ μ = ln(mean) − σ²/2.
        Self {
            mu: mean.ln() - sigma * sigma / 2.0,
            sigma,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let n = Normal::new(self.mu, self.sigma);
        n.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeededRng::new(42);
        let d = Normal::new(50.0, 30.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = mean_and_var(&samples);
        assert!((m - 50.0).abs() < 0.8, "mean {m}");
        assert!((v.sqrt() - 30.0).abs() < 0.8, "std {}", v.sqrt());
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let mut rng = SeededRng::new(1);
        let d = Normal::new(1.0, 5.0);
        for _ in 0..1000 {
            assert!(d.sample_truncated(&mut rng, 0.5) >= 0.5);
        }
    }

    #[test]
    fn exponential_moments() {
        let mut rng = SeededRng::new(7);
        let d = Exponential::new(10.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = mean_and_var(&samples);
        assert!((m - 10.0).abs() < 0.3, "mean {m}");
        // Var = mean² for exponential.
        assert!((v - 100.0).abs() < 8.0, "var {v}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = SeededRng::new(3);
        let d = Zipf::new(10, 1.0);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        // Rank 1 weight is 1/H_10 ≈ 0.341; rank 10 is ≈ 0.034.
        assert!(counts[0] > 5 * counts[9]);
        let w0 = d.weight(0);
        assert!((w0 - 0.3414).abs() < 0.01, "w0 {w0}");
        assert!((counts[0] as f64 / 20_000.0 - w0).abs() < 0.02);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let d = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((d.weight(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = SeededRng::new(9);
        let d = Poisson::new(3.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (m, v) = mean_and_var(&samples);
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
        assert!((v - 3.0).abs() < 0.2, "var {v}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut rng = SeededRng::new(11);
        let d = Poisson::new(100.0);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (m, v) = mean_and_var(&samples);
        assert!((m - 100.0).abs() < 1.0, "mean {m}");
        assert!((v - 100.0).abs() < 8.0, "var {v}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = SeededRng::new(1);
        assert_eq!(Poisson::new(0.0).sample(&mut rng), 0);
    }

    #[test]
    fn lognormal_hits_target_mean() {
        let mut rng = SeededRng::new(13);
        let d = LogNormal::with_mean(10.0, 1.2);
        let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (m, _) = mean_and_var(&samples);
        assert!((m - 10.0).abs() < 0.4, "mean {m}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn normal_rejects_negative_std() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }
}
