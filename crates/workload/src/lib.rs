#![warn(missing_docs)]
//! # vne-workload — workload generation and statistics for online VNE
//!
//! Reproduces the paper's experimental workloads (Table III):
//!
//! * [`dist`] — normal, exponential, Zipf, Poisson and lognormal samplers
//!   built on uniform randomness;
//! * [`arrival`] — Poisson and bursty MMPP arrival processes;
//! * [`appgen`] — random application instances (chains, trees,
//!   accelerator chains, GPU chains);
//! * [`tracegen`] — the synthetic MMPP trace with Zipf node popularity
//!   and utilization calibration;
//! * [`caida`] — the CAIDA-like heavy-tailed trace (Fig. 15);
//! * [`adversary`] — adversarial workloads (revenue bursts, lifetime
//!   cliffs, plan-adversarial mixes), arrival modulators and
//!   substrate-churn schedules for the scenario suite;
//! * [`stats`] — ECDF, percentiles, bootstrap estimation (Eq. 6);
//! * [`sketch`] — the P² streaming quantile sketch;
//! * [`history`] — per-class concurrent-demand series and the demand
//!   conformance check;
//! * [`estimator`] — the streaming [`estimator::DemandEstimator`] API
//!   folding a slot-event stream into per-class expected demands
//!   (exact dense+bootstrap oracle, or O(classes) P² sketches);
//! * [`rng`] — seeded, replayable randomness.
//!
//! ## Example
//!
//! ```
//! use vne_workload::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let substrate = vne_topology::zoo::citta_studi()?;
//! let mut rng = SeededRng::new(7);
//! let apps = paper_mix(&AppGenConfig::default(), &mut rng);
//! let config = TraceConfig { slots: 100, ..TraceConfig::default() };
//! let trace = generate(&substrate, &apps, &config, &mut rng);
//! let history = ClassDemandSeries::from_requests(&trace, 100);
//! let demands = history.expected_demands(80.0, 50, &mut rng);
//! assert!(!demands.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod adversary;
pub mod appgen;
pub mod arrival;
pub mod caida;
pub mod dist;
pub mod estimator;
pub mod history;
pub mod rng;
pub mod sketch;
pub mod stats;
pub mod tracegen;

/// Commonly used types, re-exported for one-line imports.
pub mod prelude {
    pub use crate::adversary::{AdversaryProfile, ChurnProfile, ChurnSchedule, Modulation};
    pub use crate::appgen::{gpu_set, paper_mix, uniform_shape_set, AppGenConfig};
    pub use crate::arrival::{ArrivalProcess, Mmpp, PoissonArrivals};
    pub use crate::caida::CaidaConfig;
    pub use crate::estimator::{
        AggregationConfig, DemandEstimator, EstimatorKind, ExactEstimator, SketchEstimator,
    };
    pub use crate::history::ClassDemandSeries;
    pub use crate::rng::SeededRng;
    pub use crate::sketch::P2Quantile;
    pub use crate::stats::{bootstrap_percentile, mean_and_ci, Ecdf};
    pub use crate::tracegen::{generate, shift_ingress, split_trace, ArrivalKind, TraceConfig};
}
