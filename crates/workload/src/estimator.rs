//! Streaming per-class demand estimation (§III-A as a fold).
//!
//! The offline planning phase aggregates the history `R_HIST` into one
//! expected demand `P̂_α` per class (Eqs. 5–6). A [`DemandEstimator`]
//! consumes that history as a *stream* — one [`SlotEvents`] at a time
//! via [`DemandEstimator::observe_slot`] — and is finalized into the
//! per-class demands, so the planner never needs the trace in memory:
//!
//! * [`ExactEstimator`] — the paper-faithful oracle: an incremental
//!   [`ClassDemandSeries`] fold plus the bootstrap `P̂_α`. Memory is
//!   `O(classes × slots)` (the dense series is what the bootstrap
//!   resamples), identical bit for bit to the batch path.
//! * [`SketchEstimator`] — a zero-inflated [`P2Quantile`] sketch per
//!   class: `O(classes + active requests)` memory independent of the
//!   horizon, no bootstrap replay, a percentile approximation suitable
//!   for long-horizon planning.
//!
//! Which estimator a scenario uses is an [`EstimatorKind`] switch, and
//! [`EstimatorKind::Custom`] accepts user-defined estimators — the
//! planning input is an open API surface like the algorithm registry.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use vne_model::ids::ClassId;
use vne_model::request::{Slot, SlotEvents};
use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};

// Re-exported so downstream estimator impls need no direct `rand`
// dependency to name the `finalize` RNG parameter.
pub use rand::RngCore;

use crate::history::ClassDemandSeries;
use crate::sketch::P2Quantile;

/// Parameters of the aggregation step (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationConfig {
    /// The percentile α of Eq. 6 (the paper uses 80).
    pub alpha: f64,
    /// Bootstrap replicates for `P̂_α` (the paper’s estimator \[25\];
    /// used by the exact estimator, ignored by sketches).
    pub bootstrap_replicates: usize,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        Self {
            alpha: 80.0,
            bootstrap_replicates: 100,
        }
    }
}

/// A streaming fold of the request history into per-class expected
/// demands — the input of PLAN-VNE.
///
/// Feed slots in increasing order via [`DemandEstimator::observe_slot`]
/// (one event per slot, as the trace streams produce), then call
/// [`DemandEstimator::finalize`] once. The estimator defines what
/// "expected demand" means; the trait is object-safe so scenarios can
/// swap estimators at runtime.
pub trait DemandEstimator {
    /// Folds one slot of history into the estimator state. Slots must
    /// arrive in increasing order; skipped (quiet) slots count toward
    /// the window as zero-arrival slots.
    fn observe_slot(&mut self, events: &SlotEvents);

    /// Number of history slots covered so far (`last slot + 1`; equals
    /// the number of events folded on a dense stream).
    fn slots_observed(&self) -> Slot;

    /// Finalizes the fold into the per-class expected demands `d(r̃)`.
    /// `rng` feeds randomized estimators (the exact bootstrap); sketch
    /// estimators ignore it.
    fn finalize(&mut self, rng: &mut dyn RngCore) -> BTreeMap<ClassId, f64>;

    /// Drains an event stream into the estimator (convenience fold).
    fn observe_all(&mut self, events: impl IntoIterator<Item = SlotEvents>)
    where
        Self: Sized,
    {
        for ev in events {
            self.observe_slot(&ev);
        }
    }

    /// Serializes the estimator's fold state for checkpointing (`None`
    /// when unsupported — the default; [`ExactEstimator`] and
    /// [`SketchEstimator`] implement [`Snapshot`] and forward to it),
    /// so a long history fold can be interrupted and resumed.
    fn snapshot_state(&self) -> Option<StateBlob> {
        None
    }

    /// Restores state produced by [`DemandEstimator::snapshot_state`]
    /// into a freshly constructed estimator of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Unsupported`] by default.
    fn restore_state(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let _ = blob;
        Err(StateError::Unsupported("demand estimator".to_string()))
    }
}

/// The paper's exact aggregation as a streaming fold: dense per-class
/// demand series plus the bootstrap-estimated `P̂_α`.
///
/// Folding slot events through this estimator is bit-identical to
/// [`ClassDemandSeries::from_requests`] over the collected trace — it
/// is the oracle the sketch path is validated against, and the default
/// planning path. Memory is `O(classes × slots)` by design: the
/// bootstrap resamples the dense series.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactEstimator {
    series: ClassDemandSeries,
    config: AggregationConfig,
    observed: Slot,
}

impl ExactEstimator {
    /// Creates an exact estimator over a `slots`-slot history window.
    pub fn new(slots: Slot, config: AggregationConfig) -> Self {
        Self {
            series: ClassDemandSeries::empty(slots),
            config,
            observed: 0,
        }
    }

    /// The accumulated demand series (drill-down inspection).
    pub fn series(&self) -> &ClassDemandSeries {
        &self.series
    }

    /// The paper's demand-conformance check (§III-A) against an online
    /// window, using this estimator's α and bootstrap replicates: the
    /// fraction of classes whose online `P_α` falls inside the 95%
    /// bootstrap CI of this history estimate.
    pub fn conformance<R: rand::Rng + ?Sized>(
        &self,
        online: &ClassDemandSeries,
        rng: &mut R,
    ) -> f64 {
        self.series.conformance(
            online,
            self.config.alpha,
            self.config.bootstrap_replicates,
            rng,
        )
    }
}

impl DemandEstimator for ExactEstimator {
    fn observe_slot(&mut self, events: &SlotEvents) {
        self.series.observe_slot(events);
        // The dense series covers skipped quiet slots as zeros, so
        // only the covered-slot count needs advancing.
        self.observed = self.observed.max(events.slot + 1);
    }

    fn slots_observed(&self) -> Slot {
        self.observed
    }

    fn finalize(&mut self, rng: &mut dyn RngCore) -> BTreeMap<ClassId, f64> {
        self.series
            .expected_demands(self.config.alpha, self.config.bootstrap_replicates, rng)
    }

    fn snapshot_state(&self) -> Option<StateBlob> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        Snapshot::restore(self, blob)
    }
}

/// Checkpointing: the dense series plus the covered-slot cursor; the
/// aggregation config is a construction input.
impl Snapshot for ExactEstimator {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_u32(self.observed);
        w.write_blob(&self.series.snapshot());
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let observed = r.read_u32()?;
        let series_blob = r.read_blob()?;
        r.finish()?;
        self.series.restore(&series_blob)?;
        self.observed = observed;
        Ok(())
    }
}

/// Per-class activity tracked by the sketch estimator.
#[derive(Debug, Clone, Default)]
struct ClassActivity {
    /// Total demand of currently active requests of the class.
    demand: f64,
    /// Number of currently active requests (exact zero reset on empty).
    active: usize,
}

/// A sketch-based estimator: one zero-inflated [`P2Quantile`] per
/// class, `O(classes + active requests)` memory, no bootstrap replay.
///
/// Per slot it maintains each class's concurrent demand with a
/// departure calendar (the same `O(active)` discipline as the streaming
/// engine) and feeds the *nonzero* values into the class's P² sketch;
/// slots where a class has no active demand are counted, not stored.
/// At finalization the α-percentile is evaluated on the zero-inflated
/// distribution: if the rank falls inside the zero mass the demand is
/// 0, otherwise the sketch's marker curve is queried at the rank
/// shifted past the zeros.
#[derive(Debug, Clone)]
pub struct SketchEstimator {
    alpha: f64,
    observed: Slot,
    active: BTreeMap<ClassId, ClassActivity>,
    /// Departure calendar: slot → (class, demand) decrements.
    departures: BTreeMap<Slot, Vec<(ClassId, f64)>>,
    /// Per-class sketch over the slots with nonzero demand.
    sketches: BTreeMap<ClassId, P2Quantile>,
}

impl SketchEstimator {
    /// Creates a sketch estimator for the `alpha`-percentile
    /// (`alpha ∈ (0, 100)`).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not strictly between 0 and 100.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 100.0,
            "alpha must be in (0, 100), got {alpha}"
        );
        Self {
            alpha,
            observed: 0,
            active: BTreeMap::new(),
            departures: BTreeMap::new(),
            sketches: BTreeMap::new(),
        }
    }

    /// Number of classes with at least one nonzero-demand slot.
    pub fn class_count(&self) -> usize {
        self.sketches.len()
    }

    /// The zero-inflated `alpha`-percentile of one class at
    /// finalization time.
    fn class_percentile(&self, sketch: &P2Quantile) -> f64 {
        let total = u64::from(self.observed);
        let nonzero = sketch.count();
        debug_assert!(nonzero <= total, "sketch fed beyond the horizon");
        if total == 0 || nonzero == 0 {
            return 0.0;
        }
        let zeros = (total - nonzero) as f64;
        // Type-7 rank over the zero-inflated sample of `total` slots.
        let h = (self.alpha / 100.0) * (total - 1) as f64;
        if h <= zeros - 1.0 {
            return 0.0;
        }
        let low = sketch.min().unwrap_or(0.0);
        if h < zeros {
            // Interpolate across the zero / nonzero boundary.
            return (h - (zeros - 1.0)) * low;
        }
        // Rank within the nonzero part, as a fraction of its order
        // statistics.
        let fraction = if nonzero == 1 {
            0.0
        } else {
            ((h - zeros) / (nonzero - 1) as f64).clamp(0.0, 1.0)
        };
        sketch.query(fraction).unwrap_or(0.0)
    }
}

impl SketchEstimator {
    /// Releases the departures due at or before slot `t`.
    fn release_departures(&mut self, t: Slot) {
        while let Some(entry) = self.departures.first_entry() {
            if *entry.key() > t {
                break;
            }
            for (class, demand) in entry.remove() {
                if let Some(activity) = self.active.get_mut(&class) {
                    activity.active -= 1;
                    if activity.active == 0 {
                        // Exact reset: no float residue from the
                        // subtraction chain can linger on idle classes.
                        self.active.remove(&class);
                    } else {
                        activity.demand -= demand;
                    }
                }
            }
        }
    }

    /// Feeds every class's current concurrent demand into its sketch.
    fn sample_active(&mut self) {
        for (&class, activity) in &self.active {
            if activity.demand > 0.0 {
                self.sketches
                    .entry(class)
                    .or_insert_with(|| P2Quantile::new(self.alpha / 100.0))
                    .observe(activity.demand);
            }
        }
    }
}

impl DemandEstimator for SketchEstimator {
    fn observe_slot(&mut self, events: &SlotEvents) {
        let t = events.slot;
        assert!(
            t >= self.observed,
            "slot events must be strictly increasing (got slot {t} after {})",
            self.observed
        );
        // A sparse stream may skip quiet slots; account for them
        // one by one (departures released, the still-active demand
        // sampled) so the zero mass and the per-slot sampling stay
        // faithful to the dense series.
        while self.observed < t {
            let quiet = self.observed;
            self.release_departures(quiet);
            self.sample_active();
            self.observed += 1;
        }
        self.release_departures(t);
        for r in &events.arrivals {
            let entry = self.active.entry(r.class()).or_default();
            entry.demand += r.demand;
            entry.active += 1;
            self.departures
                .entry(r.departure())
                .or_default()
                .push((r.class(), r.demand));
        }
        self.sample_active();
        self.observed = t + 1;
    }

    fn slots_observed(&self) -> Slot {
        self.observed
    }

    fn finalize(&mut self, _rng: &mut dyn RngCore) -> BTreeMap<ClassId, f64> {
        self.sketches
            .iter()
            .map(|(&class, sketch)| (class, self.class_percentile(sketch)))
            .collect()
    }

    fn snapshot_state(&self) -> Option<StateBlob> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        Snapshot::restore(self, blob)
    }
}

/// Checkpointing: the slot cursor, the per-class activity, the
/// departure calendar (vector order preserved — it is release order)
/// and every class's P² markers; `alpha` is validated through the
/// nested sketch blobs.
impl Snapshot for SketchEstimator {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_f64(self.alpha);
        w.write_u32(self.observed);
        w.write_usize(self.active.len());
        for (class, activity) in &self.active {
            w.write(class);
            w.write_f64(activity.demand);
            w.write_usize(activity.active);
        }
        w.write(&self.departures);
        w.write_usize(self.sketches.len());
        for (class, sketch) in &self.sketches {
            w.write(class);
            w.write_blob(&sketch.snapshot());
        }
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let alpha = r.read_f64()?;
        if alpha.to_bits() != self.alpha.to_bits() {
            return Err(StateError::Mismatch {
                expected: format!("sketch estimator for α={}", self.alpha),
                found: format!("blob for α={alpha}"),
            });
        }
        let observed = r.read_u32()?;
        let active_len = r.read_usize()?;
        let mut active = BTreeMap::new();
        for _ in 0..active_len {
            let class: ClassId = r.read()?;
            let demand = r.read_f64()?;
            let count = r.read_usize()?;
            active.insert(
                class,
                ClassActivity {
                    demand,
                    active: count,
                },
            );
        }
        let departures: BTreeMap<Slot, Vec<(ClassId, f64)>> = r.read()?;
        let sketch_len = r.read_usize()?;
        let mut sketches = BTreeMap::new();
        for _ in 0..sketch_len {
            let class: ClassId = r.read()?;
            let sketch_blob = r.read_blob()?;
            let mut sketch = P2Quantile::new(self.alpha / 100.0);
            sketch.restore(&sketch_blob)?;
            sketches.insert(class, sketch);
        }
        r.finish()?;
        self.observed = observed;
        self.active = active;
        self.departures = departures;
        self.sketches = sketches;
        Ok(())
    }
}

/// Builds a [`DemandEstimator`] for one planning window.
pub type EstimatorFactory =
    Arc<dyn Fn(Slot, &AggregationConfig) -> Box<dyn DemandEstimator> + Send + Sync>;

/// Which demand estimator a scenario's planning phase uses.
///
/// `Exact` is the default (paper-faithful, bit-identical to the batch
/// aggregation); `Sketch` trades the bootstrap for `O(classes)`
/// planning memory; `Custom` plugs in any user estimator — the
/// planning-input analogue of registering an algorithm.
#[derive(Clone, Default)]
pub enum EstimatorKind {
    /// Dense series + bootstrap `P̂_α` (the oracle).
    #[default]
    Exact,
    /// Per-class P² quantile sketches, `O(classes)` memory.
    Sketch,
    /// A user-provided estimator factory `(slots, config) → estimator`.
    Custom(EstimatorFactory),
}

impl EstimatorKind {
    /// Wraps a factory closure as [`EstimatorKind::Custom`].
    pub fn custom(
        factory: impl Fn(Slot, &AggregationConfig) -> Box<dyn DemandEstimator> + Send + Sync + 'static,
    ) -> Self {
        Self::Custom(Arc::new(factory))
    }

    /// Instantiates the estimator for a `slots`-slot planning window.
    pub fn build(&self, slots: Slot, config: &AggregationConfig) -> Box<dyn DemandEstimator> {
        match self {
            Self::Exact => Box::new(ExactEstimator::new(slots, *config)),
            Self::Sketch => Box::new(SketchEstimator::new(config.alpha)),
            Self::Custom(factory) => factory(slots, config),
        }
    }
}

impl fmt::Debug for EstimatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Exact => f.write_str("Exact"),
            Self::Sketch => f.write_str("Sketch"),
            Self::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use vne_model::ids::{AppId, NodeId, RequestId};
    use vne_model::request::Request;

    fn req(id: u64, arrival: Slot, duration: Slot, node: u32, app: u32, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival,
            duration,
            ingress: NodeId(node),
            app: AppId(app),
            demand,
        }
    }

    fn events_of(requests: &[Request], slots: Slot) -> Vec<SlotEvents> {
        (0..slots)
            .map(|t| SlotEvents {
                slot: t,
                arrivals: requests
                    .iter()
                    .filter(|r| r.arrival == t)
                    .cloned()
                    .collect(),
                churn: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn exact_fold_matches_batch_series() {
        let requests = vec![
            req(0, 0, 3, 1, 0, 2.0),
            req(1, 1, 2, 1, 0, 5.0),
            req(2, 0, 1, 2, 0, 7.0),
            req(3, 2, 100, 1, 1, 1.5), // clipped at the window edge
        ];
        let mut est = ExactEstimator::new(4, AggregationConfig::default());
        est.observe_all(events_of(&requests, 4));
        assert_eq!(est.slots_observed(), 4);
        let batch = ClassDemandSeries::from_requests(&requests, 4);
        assert_eq!(est.series(), &batch);
        let folded = est.finalize(&mut SeededRng::new(5));
        let direct = batch.expected_demands(80.0, 100, &mut SeededRng::new(5));
        assert_eq!(folded.len(), direct.len());
        for (class, value) in &folded {
            assert_eq!(value.to_bits(), direct[class].to_bits(), "class {class:?}");
        }
    }

    #[test]
    fn sketch_constant_demand_is_exact() {
        // One request active over the whole window: demand 6 in every
        // slot ⇒ every percentile is exactly 6.
        let requests = vec![req(0, 0, 100, 1, 0, 6.0)];
        let mut est = SketchEstimator::new(80.0);
        est.observe_all(events_of(&requests, 100));
        let demands = est.finalize(&mut SeededRng::new(1));
        let c = ClassId::new(AppId(0), NodeId(1));
        assert_eq!(demands[&c], 6.0);
        assert_eq!(est.class_count(), 1);
    }

    #[test]
    fn sketch_zero_heavy_class_estimates_zero() {
        // Active in 10 of 100 slots: the 80th percentile falls deep in
        // the zero mass.
        let requests = vec![req(0, 0, 10, 1, 0, 4.0)];
        let mut est = SketchEstimator::new(80.0);
        est.observe_all(events_of(&requests, 100));
        let demands = est.finalize(&mut SeededRng::new(1));
        let c = ClassId::new(AppId(0), NodeId(1));
        assert_eq!(demands[&c], 0.0);
    }

    #[test]
    fn sketch_mostly_active_class_lands_on_plateau() {
        // Demand 10 in 90 of 100 slots: P80 of the zero-inflated series
        // is 10.
        let requests: Vec<Request> = (0..90).map(|i| req(i, i as Slot, 1, 1, 0, 10.0)).collect();
        let mut est = SketchEstimator::new(80.0);
        est.observe_all(events_of(&requests, 100));
        let demands = est.finalize(&mut SeededRng::new(1));
        let c = ClassId::new(AppId(0), NodeId(1));
        assert!((demands[&c] - 10.0).abs() < 1e-9, "got {}", demands[&c]);
    }

    #[test]
    fn sketch_tracks_overlapping_demand() {
        // Two long-lived requests overlap: the series is 2, then 7,
        // then 5 — the sketch must see the concurrent sums, not the
        // arrival sizes.
        let requests = vec![req(0, 0, 60, 1, 0, 2.0), req(1, 20, 60, 1, 0, 5.0)];
        let mut est = SketchEstimator::new(80.0);
        est.observe_all(events_of(&requests, 80));
        let demands = est.finalize(&mut SeededRng::new(1));
        let c = ClassId::new(AppId(0), NodeId(1));
        // Series: 20 slots at 2, 40 slots at 7, 20 slots at 5.
        // P80 over [2×20, 5×20, 7×40] sits on the 7-plateau.
        assert!((demands[&c] - 7.0).abs() < 0.5, "got {}", demands[&c]);
    }

    #[test]
    fn sketch_departure_reset_leaves_no_residue() {
        // A class that empties out mid-window must contribute exact
        // zeros afterwards (no float residue keeps feeding the sketch).
        let requests = vec![req(0, 0, 5, 1, 0, 0.1), req(1, 2, 3, 1, 0, 0.2)];
        let mut est = SketchEstimator::new(80.0);
        est.observe_all(events_of(&requests, 50));
        let c = ClassId::new(AppId(0), NodeId(1));
        // 5 active slots out of 50 ⇒ P80 in the zero mass.
        let demands = est.finalize(&mut SeededRng::new(1));
        assert_eq!(demands[&c], 0.0);
        assert_eq!(est.sketches[&c].count(), 5);
    }

    #[test]
    fn sketch_handles_sparse_streams_like_dense_ones() {
        // The same history fed densely (one event per slot) and
        // sparsely (quiet slots skipped) must produce identical
        // estimates: skipped slots still count toward the zero mass
        // and still sample the surviving active demand.
        let requests = vec![req(0, 0, 10, 1, 0, 4.0), req(1, 30, 20, 1, 0, 9.0)];
        let mut dense = SketchEstimator::new(80.0);
        dense.observe_all(events_of(&requests, 60));
        let mut sparse = SketchEstimator::new(80.0);
        for ev in events_of(&requests, 60)
            .into_iter()
            .filter(|ev| !ev.arrivals.is_empty() || ev.slot == 59)
        {
            sparse.observe_slot(&ev);
        }
        assert_eq!(dense.slots_observed(), 60);
        assert_eq!(sparse.slots_observed(), 60);
        let c = ClassId::new(AppId(0), NodeId(1));
        assert_eq!(dense.sketches[&c].count(), sparse.sketches[&c].count());
        let d = dense.finalize(&mut SeededRng::new(1));
        let s = sparse.finalize(&mut SeededRng::new(1));
        assert_eq!(d[&c].to_bits(), s[&c].to_bits());
    }

    #[test]
    fn empty_history_finalizes_empty() {
        let mut exact = ExactEstimator::new(10, AggregationConfig::default());
        let mut sketch = SketchEstimator::new(80.0);
        exact.observe_all(events_of(&[], 10));
        sketch.observe_all(events_of(&[], 10));
        assert!(exact.finalize(&mut SeededRng::new(1)).is_empty());
        assert!(sketch.finalize(&mut SeededRng::new(1)).is_empty());
    }

    #[test]
    fn estimator_snapshots_resume_the_fold_exactly() {
        // Fold half the history, checkpoint, restore into a fresh
        // estimator, fold the rest into both: finalize must agree bit
        // for bit (exact and sketch alike).
        let requests = vec![
            req(0, 0, 30, 1, 0, 2.0),
            req(1, 5, 10, 1, 0, 4.5),
            req(2, 12, 40, 2, 1, 1.25),
            req(3, 33, 5, 1, 0, 7.0),
        ];
        let events = events_of(&requests, 60);
        let make = |kind: &EstimatorKind| kind.build(60, &AggregationConfig::default());
        for kind in [EstimatorKind::Exact, EstimatorKind::Sketch] {
            let mut original = make(&kind);
            for ev in &events[..30] {
                original.observe_slot(ev);
            }
            let blob = original
                .snapshot_state()
                .expect("builtin supports snapshots");
            let mut resumed = make(&kind);
            resumed.restore_state(&blob).unwrap();
            assert_eq!(
                resumed.snapshot_state().unwrap(),
                blob,
                "{kind:?}: snapshot→restore→snapshot must be blob-equal"
            );
            for ev in &events[30..] {
                original.observe_slot(ev);
                resumed.observe_slot(ev);
            }
            let a = original.finalize(&mut SeededRng::new(9));
            let b = resumed.finalize(&mut SeededRng::new(9));
            assert_eq!(a.len(), b.len(), "{kind:?}");
            for (class, value) in &a {
                assert_eq!(value.to_bits(), b[class].to_bits(), "{kind:?} {class}");
            }
        }
    }

    #[test]
    fn estimator_snapshot_rejects_foreign_blobs() {
        let mut exact = ExactEstimator::new(10, AggregationConfig::default());
        let sketch = SketchEstimator::new(80.0);
        // A sketch blob cannot restore into an exact estimator and vice
        // versa (both decode fails and α/window mismatches count).
        let sketch_blob = Snapshot::snapshot(&sketch);
        assert!(Snapshot::restore(&mut exact, &sketch_blob).is_err());
        let mut other_alpha = SketchEstimator::new(50.0);
        assert!(Snapshot::restore(&mut other_alpha, &sketch_blob).is_err());
        // An exact blob from a different history window is rejected,
        // not silently reshaped into it.
        let exact_blob = Snapshot::snapshot(&exact);
        let mut other_window = ExactEstimator::new(20, AggregationConfig::default());
        assert!(matches!(
            Snapshot::restore(&mut other_window, &exact_blob),
            Err(StateError::Mismatch { .. })
        ));
        // Custom estimators default to unsupported.
        struct Null;
        impl DemandEstimator for Null {
            fn observe_slot(&mut self, _: &SlotEvents) {}
            fn slots_observed(&self) -> Slot {
                0
            }
            fn finalize(&mut self, _: &mut dyn RngCore) -> BTreeMap<ClassId, f64> {
                BTreeMap::new()
            }
        }
        let mut null = Null;
        assert!(null.snapshot_state().is_none());
        assert!(matches!(
            null.restore_state(&sketch_blob),
            Err(StateError::Unsupported(_))
        ));
    }

    #[test]
    fn kind_builds_the_right_estimator() {
        let config = AggregationConfig::default();
        let mut exact = EstimatorKind::Exact.build(10, &config);
        let mut sketch = EstimatorKind::Sketch.build(10, &config);
        let custom = EstimatorKind::custom(|slots, c| Box::new(ExactEstimator::new(slots, *c)));
        let mut custom_built = custom.build(10, &config);
        let ev = SlotEvents {
            slot: 0,
            arrivals: vec![req(0, 0, 3, 1, 0, 2.0)],
            churn: Vec::new(),
        };
        for est in [&mut exact, &mut sketch, &mut custom_built] {
            est.observe_slot(&ev);
            assert_eq!(est.slots_observed(), 1);
        }
        assert_eq!(format!("{:?}", EstimatorKind::Sketch), "Sketch");
        assert_eq!(format!("{custom:?}"), "Custom(..)");
        assert!(matches!(EstimatorKind::default(), EstimatorKind::Exact));
    }
}
