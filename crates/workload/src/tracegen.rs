//! Synthetic request trace generation (Table III).
//!
//! Requests originate exclusively from edge datacenters; node popularity
//! follows Zipf(α = 1); per-node arrivals follow Poisson or MMPP
//! processes with mean `λ̄ = 10` per slot; request demands are
//! `N(10, 2²)` and durations exponential with mean 10 slots. The mean
//! demand is the knob that sets *edge utilization* (§IV-A): utilization
//! is 100% when the mean total size of active requests equals the total
//! edge-datacenter capacity, which at the defaults means `E[d] = 10`.

use rand::seq::SliceRandom;
use rand::Rng;
use vne_model::app::AppSet;
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::substrate::SubstrateNetwork;

use crate::arrival::{ArrivalProcess, Mmpp, PoissonArrivals};
use crate::dist::{Exponential, Normal, Zipf};

/// The arrival process family for a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless Poisson arrivals.
    Poisson,
    /// Bursty Markov-modulated Poisson arrivals (the paper's default).
    Mmpp,
}

/// Parameters of a synthetic trace (defaults = Table III).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of time slots to generate.
    pub slots: Slot,
    /// Mean arrivals per edge node per slot (`λ`).
    pub mean_rate_per_node: f64,
    /// Mean request demand size (`E[d]`; 10 ⇒ 100% utilization).
    pub demand_mean: f64,
    /// Standard deviation of request demand (`N(10, 4)` ⇒ 2).
    pub demand_std: f64,
    /// Mean request duration in slots.
    pub duration_mean: f64,
    /// Zipf exponent for node popularity.
    pub zipf_alpha: f64,
    /// Arrival process family.
    pub arrivals: ArrivalKind,
    /// Seed of the node-popularity permutation. This is deliberately
    /// *separate* from the trace RNG: the history and online phases of
    /// one experiment must agree on which edge nodes are popular, or the
    /// plan is built for the wrong spatial distribution (that distortion
    /// is an explicit experiment, Fig. 14 — not the default).
    pub popularity_seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            slots: 6000,
            mean_rate_per_node: 10.0,
            demand_mean: 10.0,
            demand_std: 2.0,
            duration_mean: 10.0,
            zipf_alpha: 1.0,
            arrivals: ArrivalKind::Mmpp,
            popularity_seed: 0x90b5,
        }
    }
}

impl TraceConfig {
    /// The mean demand that produces the given edge utilization
    /// (utilization 1.0 = 100%):
    /// `E[d] = u · cap_edge / (λ · E[T] · E[Σ_i β_i])`.
    pub fn demand_mean_for_utilization(
        utilization: f64,
        substrate: &SubstrateNetwork,
        apps: &AppSet,
        mean_rate_per_node: f64,
        duration_mean: f64,
    ) -> f64 {
        let edge_nodes = substrate.edge_nodes().len() as f64;
        if edge_nodes == 0.0 {
            return 0.0;
        }
        let cap_per_edge = substrate.total_edge_capacity() / edge_nodes;
        let mean_footprint = apps.mean_total_node_size();
        utilization * cap_per_edge / (mean_rate_per_node * duration_mean * mean_footprint)
    }

    /// Returns a copy with the demand mean set for the target utilization.
    pub fn at_utilization(
        &self,
        utilization: f64,
        substrate: &SubstrateNetwork,
        apps: &AppSet,
    ) -> Self {
        let mut c = self.clone();
        c.demand_mean = Self::demand_mean_for_utilization(
            utilization,
            substrate,
            apps,
            self.mean_rate_per_node,
            self.duration_mean,
        );
        // Keep the paper's coefficient of variation (σ/μ = 0.2).
        c.demand_std = c.demand_mean * (self.demand_std / self.demand_mean);
        c
    }
}

enum NodeProcess {
    Poisson(PoissonArrivals),
    Mmpp(Mmpp),
}

impl NodeProcess {
    fn arrivals<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        match self {
            NodeProcess::Poisson(p) => p.arrivals(rng),
            NodeProcess::Mmpp(m) => m.arrivals(rng),
        }
    }
}

/// A lazy, slot-by-slot synthetic trace: an `Iterator<Item = SlotEvents>`.
///
/// Holds only the per-node arrival processes and the sampling
/// distributions — memory is `O(edge nodes)`, independent of the number
/// of slots or requests, which is what lets the streaming engine replay
/// arbitrarily long horizons. Construct with [`stream`]; [`generate`]
/// is the eager collecting wrapper (the two produce identical requests
/// for the same RNG by construction).
pub struct TraceStream<R: Rng> {
    slots: Slot,
    next_slot: Slot,
    next_id: u64,
    /// Edge nodes in popularity-rank order (rank 0 = hottest).
    nodes: Vec<NodeId>,
    processes: Vec<NodeProcess>,
    demand: Normal,
    duration: Exponential,
    app_count: usize,
    rng: R,
}

impl<R: Rng> Iterator for TraceStream<R> {
    type Item = SlotEvents;

    fn next(&mut self) -> Option<SlotEvents> {
        if self.next_slot >= self.slots {
            return None;
        }
        let t = self.next_slot;
        self.next_slot += 1;
        let mut arrivals = Vec::new();
        for rank in 0..self.processes.len() {
            let k = self.processes[rank].arrivals(&mut self.rng);
            for _ in 0..k {
                let app = AppId::from_index(self.rng.gen_range(0..self.app_count));
                let d = self.demand.sample_truncated(&mut self.rng, 0.5);
                let dur = self.duration.sample(&mut self.rng).round().max(1.0) as Slot;
                arrivals.push(Request {
                    id: RequestId(self.next_id),
                    arrival: t,
                    duration: dur,
                    ingress: self.nodes[rank],
                    app,
                    demand: d,
                });
                self.next_id += 1;
            }
        }
        Some(SlotEvents {
            slot: t,
            arrivals,
            churn: Vec::new(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.slots - self.next_slot) as usize;
        (left, Some(left))
    }
}

impl<R: Rng> ExactSizeIterator for TraceStream<R> {}

impl<R: Rng> TraceStream<R> {
    /// Fast-forwards the stream so the next yielded event is `slot`
    /// (clamped to the horizon) — the resume path of checkpointed runs,
    /// which must *drop* the slots a checkpoint already consumed.
    ///
    /// Determinism requires replaying the per-slot RNG draws (a request
    /// stream has no random access), so skipping costs the same samples
    /// as yielding; what it skips is handing the requests to a consumer
    /// that has already processed them.
    pub fn skip_to(&mut self, slot: Slot) {
        while self.next_slot < slot.min(self.slots) {
            let _ = self.next();
        }
    }
}

/// Creates a lazy synthetic trace stream over the substrate's edge
/// nodes.
///
/// Popularity ranks are a seeded random permutation of the edge nodes;
/// the total arrival rate `λ̄ · |edge|` is split across nodes by Zipf
/// weight, each node running an independent arrival process. Slots are
/// yielded in order with request ids in arrival order.
///
/// # Panics
///
/// Panics if the substrate has no edge nodes or `apps` is empty.
pub fn stream<R: Rng>(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    config: &TraceConfig,
    rng: R,
) -> TraceStream<R> {
    let mut edge_nodes = substrate.edge_nodes();
    assert!(!edge_nodes.is_empty(), "substrate has no edge nodes");
    assert!(!apps.is_empty(), "application set is empty");
    let mut pop_rng = crate::rng::SeededRng::new(config.popularity_seed);
    edge_nodes.shuffle(&mut pop_rng);
    let zipf = Zipf::new(edge_nodes.len(), config.zipf_alpha);
    let total_rate = config.mean_rate_per_node * edge_nodes.len() as f64;

    let processes: Vec<NodeProcess> = (0..edge_nodes.len())
        .map(|rank| {
            let rate = total_rate * zipf.weight(rank);
            match config.arrivals {
                ArrivalKind::Poisson => NodeProcess::Poisson(PoissonArrivals::new(rate)),
                ArrivalKind::Mmpp => NodeProcess::Mmpp(Mmpp::with_mean(rate)),
            }
        })
        .collect();

    TraceStream {
        slots: config.slots,
        next_slot: 0,
        next_id: 0,
        nodes: edge_nodes,
        processes,
        demand: Normal::new(config.demand_mean, config.demand_std),
        duration: Exponential::new(config.duration_mean),
        app_count: apps.len(),
        rng,
    }
}

/// Generates a request trace eagerly by draining [`stream`]. Kept for
/// offline analysis (conformance checks, history aggregation) — the
/// simulation engine consumes the stream directly.
pub fn generate<R: Rng + ?Sized>(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    config: &TraceConfig,
    rng: &mut R,
) -> Vec<Request> {
    stream(substrate, apps, config, rng)
        .flat_map(|ev| ev.arrivals)
        .collect()
}

/// Remaps every request's ingress to a uniformly random edge node
/// (the Fig. 14 "spatial distribution change": the *plan* is built from
/// shifted history while the online demand keeps the original locations).
pub fn shift_ingress<R: Rng + ?Sized>(
    requests: &[Request],
    substrate: &SubstrateNetwork,
    rng: &mut R,
) -> Vec<Request> {
    let edge_nodes = substrate.edge_nodes();
    requests
        .iter()
        .map(|r| {
            let mut shifted = r.clone();
            shifted.ingress = edge_nodes[rng.gen_range(0..edge_nodes.len())];
            shifted
        })
        .collect()
}

/// A lazy ingress-shifting adapter over a slot-event stream: every
/// arrival's ingress is remapped to a uniformly random edge node, drawn
/// in request order from a *dedicated* shift RNG.
///
/// This is the streaming form of [`shift_ingress`]: because requests
/// flow through in arrival order, wrapping a stream with `shift_stream`
/// produces bit-identical requests to collecting the stream and calling
/// [`shift_ingress`] on it with the same RNG — which is what lets the
/// Fig. 14 planning path stay `O(edge nodes)` instead of collecting the
/// whole history.
pub struct ShiftedStream<I, R: Rng> {
    inner: I,
    edge_nodes: Vec<NodeId>,
    rng: R,
}

impl<I: Iterator<Item = SlotEvents>, R: Rng> Iterator for ShiftedStream<I, R> {
    type Item = SlotEvents;

    fn next(&mut self) -> Option<SlotEvents> {
        let mut event = self.inner.next()?;
        for r in &mut event.arrivals {
            r.ingress = self.edge_nodes[self.rng.gen_range(0..self.edge_nodes.len())];
        }
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<I: ExactSizeIterator<Item = SlotEvents>, R: Rng> ExactSizeIterator for ShiftedStream<I, R> {}

/// Wraps a slot-event stream so every arrival's ingress is remapped to
/// a random edge node of `substrate` (see [`ShiftedStream`]).
///
/// # Panics
///
/// Panics if the substrate has no edge nodes.
pub fn shift_stream<I, R>(inner: I, substrate: &SubstrateNetwork, rng: R) -> ShiftedStream<I, R>
where
    I: Iterator<Item = SlotEvents>,
    R: Rng,
{
    let edge_nodes = substrate.edge_nodes();
    assert!(!edge_nodes.is_empty(), "substrate has no edge nodes");
    ShiftedStream {
        inner,
        edge_nodes,
        rng,
    }
}

/// Splits a trace into history (`arrival < split`) and online
/// (`arrival ≥ split`, shifted so the online part starts at slot 0).
pub fn split_trace(requests: &[Request], split: Slot) -> (Vec<Request>, Vec<Request>) {
    let mut history = Vec::new();
    let mut online = Vec::new();
    for r in requests {
        if r.arrival < split {
            history.push(r.clone());
        } else {
            let mut shifted = r.clone();
            shifted.arrival -= split;
            online.push(shifted);
        }
    }
    (history, online)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appgen::{paper_mix, AppGenConfig};
    use crate::rng::SeededRng;
    use vne_topology::zoo::citta_studi;

    fn small_config() -> TraceConfig {
        TraceConfig {
            slots: 200,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn trace_respects_structure() {
        let s = citta_studi().unwrap();
        let mut rng = SeededRng::new(1);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        let trace = generate(&s, &apps, &small_config(), &mut rng);
        assert!(!trace.is_empty());
        let edge: std::collections::HashSet<_> = s.edge_nodes().into_iter().collect();
        for r in &trace {
            assert!(edge.contains(&r.ingress), "non-edge ingress");
            assert!(r.arrival < 200);
            assert!(r.duration >= 1);
            assert!(r.demand > 0.0);
            assert!(r.app.index() < apps.len());
        }
        // Sorted by arrival with sequential ids.
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(trace.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn mean_rate_is_respected() {
        let s = citta_studi().unwrap();
        let mut rng = SeededRng::new(2);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        let config = TraceConfig {
            slots: 500,
            arrivals: ArrivalKind::Poisson,
            ..TraceConfig::default()
        };
        let trace = generate(&s, &apps, &config, &mut rng);
        let expected = 10.0 * s.edge_nodes().len() as f64 * 500.0;
        let actual = trace.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn zipf_popularity_concentrates_demand() {
        let s = citta_studi().unwrap();
        let mut rng = SeededRng::new(3);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        let trace = generate(&s, &apps, &small_config(), &mut rng);
        let mut counts = std::collections::BTreeMap::new();
        for r in &trace {
            *counts.entry(r.ingress).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap_or(0);
        assert!(max > 3 * min.max(1), "max {max} min {min}");
    }

    #[test]
    fn utilization_calibration_matches_paper() {
        let s = citta_studi().unwrap();
        let mut rng = SeededRng::new(4);
        // Apps with E[Σβ] forced to 200 (4 VNFs × 50) by construction.
        let mut apps = vne_model::app::AppSet::new();
        apps.push(
            "c",
            vne_model::app::AppShape::Chain,
            vne_model::app::shapes::uniform_chain(4, 50.0, 50.0).unwrap(),
        )
        .unwrap();
        let d = TraceConfig::demand_mean_for_utilization(1.0, &s, &apps, 10.0, 10.0);
        assert!((d - 10.0).abs() < 1e-9, "demand mean {d}");
        let d60 = TraceConfig::demand_mean_for_utilization(0.6, &s, &apps, 10.0, 10.0);
        assert!((d60 - 6.0).abs() < 1e-9);
        let cfg = TraceConfig::default().at_utilization(1.4, &s, &apps);
        assert!((cfg.demand_mean - 14.0).abs() < 1e-9);
        assert!((cfg.demand_std - 2.8).abs() < 1e-9);
        let _ = generate(&s, &apps, &small_config(), &mut rng);
    }

    #[test]
    fn shift_ingress_keeps_everything_else() {
        let s = citta_studi().unwrap();
        let mut rng = SeededRng::new(5);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        let trace = generate(&s, &apps, &small_config(), &mut rng);
        let shifted = shift_ingress(&trace, &s, &mut rng);
        assert_eq!(trace.len(), shifted.len());
        let edge: std::collections::HashSet<_> = s.edge_nodes().into_iter().collect();
        let mut moved = 0;
        for (a, b) in trace.iter().zip(&shifted) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.demand, b.demand);
            assert_eq!(a.arrival, b.arrival);
            assert!(edge.contains(&b.ingress));
            if a.ingress != b.ingress {
                moved += 1;
            }
        }
        assert!(moved > trace.len() / 2);
    }

    #[test]
    fn shift_stream_matches_batch_shift_with_the_same_rng() {
        // The lazy Fig. 14 path: wrapping the stream must reproduce the
        // collect-then-shift result bit for bit when both use the same
        // dedicated shift RNG.
        let s = citta_studi().unwrap();
        let apps = paper_mix(&AppGenConfig::default(), &mut SeededRng::new(8));
        let config = small_config();
        let trace = generate(&s, &apps, &config, &mut SeededRng::new(9));
        let batch = shift_ingress(&trace, &s, &mut SeededRng::new(77));
        let streamed: Vec<Request> = shift_stream(
            stream(&s, &apps, &config, SeededRng::new(9)),
            &s,
            SeededRng::new(77),
        )
        .flat_map(|ev| ev.arrivals)
        .collect();
        assert_eq!(streamed, batch);
        // Slot structure is preserved.
        let events: Vec<_> = shift_stream(
            stream(&s, &apps, &config, SeededRng::new(9)),
            &s,
            SeededRng::new(77),
        )
        .collect();
        assert_eq!(events.len(), config.slots as usize);
        for (t, ev) in events.iter().enumerate() {
            assert_eq!(ev.slot, t as Slot);
        }
    }

    #[test]
    fn stream_matches_generate_and_is_slot_complete() {
        let s = citta_studi().unwrap();
        let apps = paper_mix(&AppGenConfig::default(), &mut SeededRng::new(8));
        let config = small_config();
        let eager = generate(&s, &apps, &config, &mut SeededRng::new(9));
        let events: Vec<_> = stream(&s, &apps, &config, SeededRng::new(9)).collect();
        // One SlotEvents per slot, in order, including quiet slots.
        assert_eq!(events.len(), config.slots as usize);
        for (t, ev) in events.iter().enumerate() {
            assert_eq!(ev.slot, t as Slot);
            assert!(ev.arrivals.iter().all(|r| r.arrival == ev.slot));
        }
        let streamed: Vec<Request> = events.into_iter().flat_map(|ev| ev.arrivals).collect();
        assert_eq!(eager, streamed);
    }

    #[test]
    fn skip_to_yields_the_tail_of_the_full_stream() {
        let s = citta_studi().unwrap();
        let apps = paper_mix(&AppGenConfig::default(), &mut SeededRng::new(8));
        let config = small_config();
        let full: Vec<_> = stream(&s, &apps, &config, SeededRng::new(3)).collect();
        let mut skipped = stream(&s, &apps, &config, SeededRng::new(3));
        skipped.skip_to(120);
        let tail: Vec<_> = skipped.collect();
        assert_eq!(tail.len(), 80);
        assert_eq!(tail.as_slice(), &full[120..]);
        // Skipping past the horizon leaves an empty stream.
        let mut over = stream(&s, &apps, &config, SeededRng::new(3));
        over.skip_to(10_000);
        assert_eq!(over.next(), None);
    }

    #[test]
    fn stream_reports_remaining_length() {
        let s = citta_studi().unwrap();
        let apps = paper_mix(&AppGenConfig::default(), &mut SeededRng::new(8));
        let mut st = stream(&s, &apps, &small_config(), SeededRng::new(1));
        assert_eq!(st.len(), 200);
        st.next();
        assert_eq!(st.len(), 199);
    }

    #[test]
    fn split_trace_partitions() {
        let s = citta_studi().unwrap();
        let mut rng = SeededRng::new(6);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        let trace = generate(&s, &apps, &small_config(), &mut rng);
        let (hist, online) = split_trace(&trace, 150);
        assert_eq!(hist.len() + online.len(), trace.len());
        assert!(hist.iter().all(|r| r.arrival < 150));
        // Online arrivals re-based at zero.
        assert!(online.iter().all(|r| r.arrival < 50));
    }
}
