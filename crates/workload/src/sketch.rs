//! Streaming quantile estimation: the P² (piecewise-parabolic)
//! algorithm of Jain & Chlamtac (CACM 1985).
//!
//! A [`P2Quantile`] tracks one target quantile of a stream in O(1)
//! memory — five markers whose heights approximate the quantile curve —
//! without storing the observations. It is the building block of the
//! sketch-based demand estimator: one sketch per request class replaces
//! the dense per-slot demand series, so the offline planning phase folds
//! an arbitrarily long history in `O(classes)` memory.

use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};

/// A P² estimator of the `p`-quantile of a stream.
///
/// The first five observations are stored exactly; from the sixth on,
/// five markers (minimum, `p/2`, `p`, `(1+p)/2`, maximum) are adjusted
/// per observation with the piecewise-parabolic update. Besides the
/// target quantile ([`P2Quantile::estimate`]), any quantile can be
/// interpolated from the marker curve ([`P2Quantile::query`]) — the
/// zero-inflated demand estimator uses that to evaluate shifted ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights `q_1..q_5`.
    heights: [f64; 5],
    /// Actual marker positions `n_1..n_5` (1-based ranks, integral).
    positions: [f64; 5],
    /// Desired marker positions `n'_1..n'_5`.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    /// Exact sample buffer until five observations have been seen.
    initial: Vec<f64>,
    count: u64,
}

impl P2Quantile {
    /// Creates a sketch for the `p`-quantile (`p ∈ (0, 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly between 0 and 1.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        Self {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            initial: Vec::with_capacity(5),
            count: 0,
        }
    }

    /// The target quantile `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation into the sketch.
    ///
    /// # Panics
    ///
    /// Panics on NaN observations.
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "P² cannot observe NaN");
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                for (i, &v) in self.initial.iter().enumerate() {
                    self.heights[i] = v;
                }
            }
            return;
        }

        // Locate the cell k with q_k ≤ x < q_{k+1}, extending the
        // extreme markers when x falls outside them.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // q_k ≤ x < q_{k+1} for some k in 0..=3.
            (1..4).rfind(|&i| self.heights[i] <= x).unwrap_or(0)
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the three interior markers toward their desired
        // positions, parabolic when the interpolated height stays
        // bracketed, linear otherwise.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let ahead = self.positions[i + 1] - self.positions[i];
            let behind = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && ahead > 1.0) || (d <= -1.0 && behind < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// The piecewise-parabolic (P²) height prediction for marker `i`
    /// moved by `d ∈ {-1, +1}`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// The linear fallback height prediction.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The estimate of the target `p`-quantile (`None` before the first
    /// observation).
    pub fn estimate(&self) -> Option<f64> {
        self.query(self.p)
    }

    /// Interpolates the `f`-quantile (`f ∈ [0, 1]`) from the marker
    /// curve — exact (type-7) while ≤ 5 observations are buffered,
    /// piecewise linear between marker ranks afterwards. `None` before
    /// the first observation.
    ///
    /// # Panics
    ///
    /// Panics if `f` is outside `[0, 1]`.
    pub fn query(&self, f: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&f), "quantile fraction {f}");
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let h = f * (sorted.len() - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            return Some(sorted[lo] + (sorted[hi] - sorted[lo]) * (h - lo as f64));
        }
        // 1-based rank of the requested quantile among `count` samples.
        let rank = (f * (self.count - 1) as f64 + 1.0).clamp(1.0, self.count as f64);
        let i = (0..4).rfind(|&i| self.positions[i] <= rank).unwrap_or(0);
        let span = self.positions[i + 1] - self.positions[i];
        if span <= 0.0 {
            return Some(self.heights[i]);
        }
        let t = ((rank - self.positions[i]) / span).clamp(0.0, 1.0);
        Some(self.heights[i] + t * (self.heights[i + 1] - self.heights[i]))
    }

    /// The smallest observation seen so far (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else if self.count <= 5 {
            self.initial
                .iter()
                .copied()
                .min_by(|a, b| a.partial_cmp(b).expect("no NaN"))
        } else {
            Some(self.heights[0])
        }
    }

    /// The largest observation seen so far (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else if self.count <= 5 {
            self.initial
                .iter()
                .copied()
                .max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
        } else {
            Some(self.heights[4])
        }
    }
}

/// Checkpointing: the five marker heights/positions, the desired
/// positions, the initial sample buffer and the count are the complete
/// sketch state; the target quantile is validated so a sketch cannot be
/// restored into an estimator tracking a different percentile.
impl Snapshot for P2Quantile {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_f64(self.p);
        for arr in [
            &self.heights,
            &self.positions,
            &self.desired,
            &self.increments,
        ] {
            for &x in arr {
                w.write_f64(x);
            }
        }
        w.write(&self.initial);
        w.write_u64(self.count);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let p = r.read_f64()?;
        if p.to_bits() != self.p.to_bits() {
            return Err(StateError::Mismatch {
                expected: format!("P² sketch for quantile {}", self.p),
                found: format!("blob for quantile {p}"),
            });
        }
        let mut arrays = [[0.0f64; 5]; 4];
        for arr in &mut arrays {
            for x in arr.iter_mut() {
                *x = r.read_f64()?;
            }
        }
        let initial: Vec<f64> = r.read()?;
        let count = r.read_u64()?;
        r.finish()?;
        if initial.len() > 5 {
            return Err(StateError::Corrupt(format!(
                "P² initial buffer holds {} > 5 samples",
                initial.len()
            )));
        }
        [self.heights, self.positions, self.desired, self.increments] = arrays;
        self.initial = initial;
        self.count = count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use crate::stats::Ecdf;
    use rand::Rng;

    #[test]
    fn small_samples_are_exact() {
        let mut s = P2Quantile::new(0.8);
        assert_eq!(s.estimate(), None);
        for x in [5.0, 1.0, 3.0] {
            s.observe(x);
        }
        // Type-7 p80 of [1, 3, 5]: h = 1.6 → 3 + 0.6·2 = 4.2.
        assert!((s.estimate().unwrap() - 4.2).abs() < 1e-12);
        assert_eq!(s.query(0.0).unwrap(), 1.0);
        assert_eq!(s.query(1.0).unwrap(), 5.0);
        assert_eq!(s.min().unwrap(), 1.0);
        assert_eq!(s.max().unwrap(), 5.0);
    }

    #[test]
    fn tracks_uniform_quantiles() {
        let mut rng = SeededRng::new(7);
        for p in [0.5, 0.8, 0.95] {
            let mut s = P2Quantile::new(p);
            for _ in 0..20_000 {
                s.observe(rng.gen::<f64>() * 100.0);
            }
            let est = s.estimate().unwrap();
            assert!(
                (est - p * 100.0).abs() < 2.0,
                "p{p}: estimate {est} vs {}",
                p * 100.0
            );
        }
    }

    #[test]
    fn tracks_exponential_tail() {
        // Exponential(1): p80 = ln 5 ≈ 1.609.
        let mut rng = SeededRng::new(9);
        let mut s = P2Quantile::new(0.8);
        for _ in 0..50_000 {
            let u: f64 = rng.gen();
            s.observe(-(1.0 - u).ln());
        }
        let est = s.estimate().unwrap();
        assert!((est - 1.609).abs() < 0.08, "estimate {est}");
    }

    #[test]
    fn query_matches_ecdf_on_synthetic_stream() {
        let mut rng = SeededRng::new(11);
        let sample: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>() * 10.0).collect();
        let mut s = P2Quantile::new(0.8);
        for &x in &sample {
            s.observe(x);
        }
        let ecdf = Ecdf::new(sample);
        for f in [0.3, 0.5, 0.8, 0.9] {
            let exact = ecdf.percentile(f * 100.0);
            let est = s.query(f).unwrap();
            assert!((est - exact).abs() < 0.5, "f={f}: {est} vs {exact}");
        }
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut s = P2Quantile::new(0.8);
        for _ in 0..1000 {
            s.observe(6.0);
        }
        assert_eq!(s.estimate().unwrap(), 6.0);
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min().unwrap(), 6.0);
        assert_eq!(s.max().unwrap(), 6.0);
    }

    #[test]
    fn handles_many_ties_with_outliers() {
        let mut s = P2Quantile::new(0.8);
        for i in 0..5000 {
            s.observe(if i % 10 == 0 { 100.0 } else { 1.0 });
        }
        // 90% of mass at 1, 10% at 100: p80 must sit at the low plateau.
        let est = s.estimate().unwrap();
        assert!((1.0..50.0).contains(&est), "estimate {est}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn snapshot_resumes_the_stream_exactly() {
        // Feed half a stream, checkpoint, restore into a fresh sketch,
        // feed the other half to both: estimates must agree bit for bit.
        let mut rng = SeededRng::new(3);
        let sample: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>() * 50.0).collect();
        let mut original = P2Quantile::new(0.8);
        for &x in &sample[..1000] {
            original.observe(x);
        }
        let blob = original.snapshot();
        let mut resumed = P2Quantile::new(0.8);
        resumed.restore(&blob).unwrap();
        assert_eq!(resumed.snapshot(), blob);
        for &x in &sample[1000..] {
            original.observe(x);
            resumed.observe(x);
        }
        assert_eq!(resumed, original);
        assert_eq!(
            resumed.estimate().unwrap().to_bits(),
            original.estimate().unwrap().to_bits()
        );
        // A sketch for a different quantile rejects the blob.
        let mut wrong = P2Quantile::new(0.5);
        assert!(wrong.restore(&blob).is_err());
    }
}
