//! Random application instances per the paper's Table III.
//!
//! Each execution draws an application set from the distribution: two
//! chains, one two-branch tree and one accelerator chain; VNFs per
//! topology `U(3,5)`; VNF and virtual-link sizes `N(50, 30²)` truncated
//! at 1. The GPU scenario (Fig. 10) instead uses four chains with one
//! randomly positioned GPU VNF each.

use rand::Rng;
use vne_model::app::{AppSet, AppShape};
use vne_model::vnet::{VirtualNetwork, VnfKind};

use crate::dist::Normal;

/// Parameters for random application generation (Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppGenConfig {
    /// Mean of VNF / virtual link sizes.
    pub size_mean: f64,
    /// Standard deviation of VNF / virtual link sizes.
    pub size_std: f64,
    /// Minimum VNFs per application (inclusive).
    pub min_vnfs: usize,
    /// Maximum VNFs per application (inclusive).
    pub max_vnfs: usize,
    /// Factor applied to virtual links downstream of an accelerator.
    pub accelerator_factor: f64,
}

impl Default for AppGenConfig {
    fn default() -> Self {
        Self {
            size_mean: 50.0,
            size_std: 30.0,
            min_vnfs: 3,
            max_vnfs: 5,
            accelerator_factor: 0.3,
        }
    }
}

impl AppGenConfig {
    fn vnf_count<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.gen_range(self.min_vnfs..=self.max_vnfs)
    }

    fn size<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal::new(self.size_mean, self.size_std).sample_truncated(rng, 1.0)
    }
}

/// Draws one random application topology of the given shape.
pub fn random_vnet<R: Rng + ?Sized>(
    shape: AppShape,
    config: &AppGenConfig,
    rng: &mut R,
) -> VirtualNetwork {
    let n = config.vnf_count(rng);
    let mut vn = VirtualNetwork::with_root();
    match shape {
        AppShape::Chain | AppShape::Accelerator | AppShape::Gpu => {
            let mut parent = VirtualNetwork::ROOT;
            for _ in 0..n {
                let (v, _) = vn
                    .add_vnf(
                        parent,
                        VnfKind::Standard,
                        config.size(rng),
                        config.size(rng),
                    )
                    .expect("valid parent");
                parent = v;
            }
            if shape == AppShape::Accelerator {
                let pos = rng.gen_range(1..=n); // vnode index (1-based skips root)
                vn.node_mut(vne_model::ids::VnodeId::from_index(pos)).kind = VnfKind::Accelerator;
                vn.apply_accelerator_discount(config.accelerator_factor);
            } else if shape == AppShape::Gpu {
                let pos = rng.gen_range(1..=n);
                vn.node_mut(vne_model::ids::VnodeId::from_index(pos)).kind = VnfKind::Gpu;
            }
        }
        AppShape::Tree => {
            // Head VNF below the root, then two branches splitting the rest.
            let (head, _) = vn
                .add_vnf(
                    VirtualNetwork::ROOT,
                    VnfKind::Standard,
                    config.size(rng),
                    config.size(rng),
                )
                .expect("valid parent");
            let rest = n.saturating_sub(1);
            let left = rest.div_ceil(2);
            let mut parent = head;
            for _ in 0..left {
                let (v, _) = vn
                    .add_vnf(
                        parent,
                        VnfKind::Standard,
                        config.size(rng),
                        config.size(rng),
                    )
                    .expect("valid parent");
                parent = v;
            }
            let mut parent = head;
            for _ in 0..rest - left {
                let (v, _) = vn
                    .add_vnf(
                        parent,
                        VnfKind::Standard,
                        config.size(rng),
                        config.size(rng),
                    )
                    .expect("valid parent");
                parent = v;
            }
        }
    }
    vn
}

/// The paper's standard mix: two chains, one tree, one accelerator
/// (drawn with equal probabilities at request time).
pub fn paper_mix<R: Rng + ?Sized>(config: &AppGenConfig, rng: &mut R) -> AppSet {
    let mut set = AppSet::new();
    for (name, shape) in [
        ("chain-1", AppShape::Chain),
        ("chain-2", AppShape::Chain),
        ("tree", AppShape::Tree),
        ("acc", AppShape::Accelerator),
    ] {
        let vnet = random_vnet(shape, config, rng);
        set.push(name, shape, vnet)
            .expect("generated vnet is valid");
    }
    set
}

/// Four applications of a single shape (the Fig. 9 sensitivity study).
pub fn uniform_shape_set<R: Rng + ?Sized>(
    shape: AppShape,
    config: &AppGenConfig,
    rng: &mut R,
) -> AppSet {
    let mut set = AppSet::new();
    for i in 0..4 {
        let vnet = random_vnet(shape, config, rng);
        set.push(format!("{}-{}", shape.label(), i + 1), shape, vnet)
            .expect("generated vnet is valid");
    }
    set
}

/// Four GPU chains (the Fig. 10 scenario).
pub fn gpu_set<R: Rng + ?Sized>(config: &AppGenConfig, rng: &mut R) -> AppSet {
    uniform_shape_set(AppShape::Gpu, config, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn paper_mix_composition() {
        let mut rng = SeededRng::new(1);
        let set = paper_mix(&AppGenConfig::default(), &mut rng);
        assert_eq!(set.len(), 4);
        let shapes: Vec<_> = set.iter().map(|a| a.shape).collect();
        assert_eq!(
            shapes,
            vec![
                AppShape::Chain,
                AppShape::Chain,
                AppShape::Tree,
                AppShape::Accelerator
            ]
        );
        for app in set.iter() {
            assert!(app.vnet.validate().is_ok());
            let n = app.vnet.vnf_count();
            assert!((3..=5).contains(&n), "vnf count {n}");
        }
    }

    #[test]
    fn sizes_are_positive_and_near_mean() {
        let mut rng = SeededRng::new(2);
        let mut sizes = Vec::new();
        for _ in 0..200 {
            let vn = random_vnet(AppShape::Chain, &AppGenConfig::default(), &mut rng);
            for (_, v) in vn.vnodes() {
                if v.beta > 0.0 {
                    sizes.push(v.beta);
                }
            }
        }
        assert!(sizes.iter().all(|&s| s >= 1.0));
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        // Truncation at 1 lifts the mean slightly above 50 (≈ +2.5).
        assert!((mean - 52.0).abs() < 6.0, "mean {mean}");
    }

    #[test]
    fn accelerator_discounts_downstream_links() {
        let mut rng = SeededRng::new(3);
        let config = AppGenConfig::default();
        // Links leaving the accelerator (or any VNF after it) carry the
        // 0.3 discount, links at or before it keep the full size: over
        // many draws, downstream link sizes must average to roughly the
        // discount factor times the upstream average.
        let (mut up, mut down) = (Vec::new(), Vec::new());
        for _ in 0..100 {
            let vn = random_vnet(AppShape::Accelerator, &config, &mut rng);
            let accel: Vec<usize> = vn
                .vnodes()
                .filter(|(_, v)| v.kind == VnfKind::Accelerator)
                .map(|(id, _)| id.index())
                .collect();
            assert_eq!(accel.len(), 1, "exactly one accelerator VNF");
            // Chain topology: a link is downstream iff its parent
            // endpoint is the accelerator or comes after it.
            for (_, l) in vn.vlinks() {
                if l.from.index() >= accel[0] {
                    down.push(l.beta);
                } else {
                    up.push(l.beta);
                }
            }
        }
        assert!(!down.is_empty(), "no downstream link observed");
        assert!(!up.is_empty(), "no upstream link observed");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ratio = mean(&down) / mean(&up);
        assert!(
            (ratio - config.accelerator_factor).abs() < 0.1,
            "downstream/upstream mean ratio {ratio} far from factor {}",
            config.accelerator_factor
        );
    }

    #[test]
    fn tree_shape_branches() {
        let mut rng = SeededRng::new(4);
        let mut saw_branch = false;
        for _ in 0..20 {
            let vn = random_vnet(AppShape::Tree, &AppGenConfig::default(), &mut rng);
            assert!(vn.validate().is_ok());
            if !vn.is_chain() {
                saw_branch = true;
            }
        }
        assert!(saw_branch);
    }

    #[test]
    fn gpu_set_has_gpu_vnfs() {
        let mut rng = SeededRng::new(5);
        let set = gpu_set(&AppGenConfig::default(), &mut rng);
        assert_eq!(set.len(), 4);
        for app in set.iter() {
            assert!(app.vnet.has_gpu_vnf());
            assert!(app.vnet.is_chain());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = paper_mix(&AppGenConfig::default(), &mut SeededRng::new(9));
        let b = paper_mix(&AppGenConfig::default(), &mut SeededRng::new(9));
        assert_eq!(a, b);
    }
}
