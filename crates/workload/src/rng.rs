//! Seeded random number generation.
//!
//! All stochastic components of the reproduction (trace generation,
//! application sampling, topology cost jitter) take explicit seeds so
//! every experiment is replayable. [`SeededRng`] wraps the standard
//! `StdRng` and implements [`rand::RngCore`], so it can be passed to any
//! rand-based API.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A deterministic RNG with an explicit seed.
///
/// # Examples
///
/// ```
/// use vne_workload::rng::SeededRng;
/// use rand::Rng;
///
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG for a named sub-stream, so that
    /// adding draws to one component does not perturb another.
    pub fn derive(&self, stream: u64) -> Self {
        // SplitMix-style mixing of the parent seed with the stream id.
        let mut z = stream.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let mix = z ^ (z >> 31);
        let mut clone = self.inner.clone();
        let base = clone.next_u64();
        Self::new(base ^ mix)
    }
}

impl RngCore for SeededRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_streams_are_independent_of_draw_count() {
        let parent1 = SeededRng::new(5);
        let parent2 = SeededRng::new(5);
        let mut d1 = parent1.derive(10);
        let mut d2 = parent2.derive(10);
        assert_eq!(d1.gen::<u64>(), d2.gen::<u64>());
        let mut d3 = parent1.derive(11);
        assert_ne!(d1.gen::<u64>(), d3.gen::<u64>());
    }
}
