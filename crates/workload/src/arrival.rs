//! Arrival processes: Poisson and Markov-modulated Poisson (MMPP).
//!
//! The paper's synthetic trace uses a two-state MMPP \[34\]: a high-rate
//! state `λ_h` and a low-rate state `λ_l` with Markov transitions between
//! them, calibrated so the stationary mean rate equals the target `λ̄`.
//! MMPP captures the bursty nature of realistic edge request arrivals.

use rand::Rng;

use crate::dist::Poisson;

/// Per-slot arrival count generator.
pub trait ArrivalProcess {
    /// Number of arrivals in the next time slot.
    fn arrivals<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64;
    /// The long-run mean arrivals per slot.
    fn mean_rate(&self) -> f64;
}

/// Memoryless Poisson arrivals at a fixed rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    rate: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson arrival process with `rate` arrivals per slot.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be non-negative");
        Self { rate }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn arrivals<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        Poisson::new(self.rate).sample(rng)
    }
    fn mean_rate(&self) -> f64 {
        self.rate
    }
}

/// Two-state Markov-modulated Poisson process.
#[derive(Debug, Clone, PartialEq)]
pub struct Mmpp {
    /// Low-state rate `λ_l`.
    pub rate_low: f64,
    /// High-state rate `λ_h`.
    pub rate_high: f64,
    /// Probability of switching low → high at a slot boundary.
    pub p_low_to_high: f64,
    /// Probability of switching high → low at a slot boundary.
    pub p_high_to_low: f64,
    in_high: bool,
}

impl Mmpp {
    /// Creates an MMPP with explicit parameters, starting in the low state.
    ///
    /// # Panics
    ///
    /// Panics if rates are negative or probabilities outside `[0, 1]`.
    pub fn new(rate_low: f64, rate_high: f64, p_low_to_high: f64, p_high_to_low: f64) -> Self {
        assert!(
            rate_low >= 0.0 && rate_high >= 0.0,
            "rates must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&p_low_to_high) && (0.0..=1.0).contains(&p_high_to_low),
            "transition probabilities must be in [0, 1]"
        );
        Self {
            rate_low,
            rate_high,
            p_low_to_high,
            p_high_to_low,
            in_high: false,
        }
    }

    /// The paper-calibrated MMPP for a target mean rate `λ̄`: bursts at
    /// `2.5·λ̄`, lulls at `0.5·λ̄`, and a stationary high-state
    /// probability of 25% (so the stationary mean is exactly `λ̄`).
    /// Expected burst length is ~6.7 slots.
    pub fn with_mean(mean_rate: f64) -> Self {
        Self::new(0.5 * mean_rate, 2.5 * mean_rate, 0.05, 0.15)
    }

    /// Whether the process is currently in the high (burst) state.
    pub fn in_burst(&self) -> bool {
        self.in_high
    }

    /// The stationary probability of the high state.
    pub fn stationary_high(&self) -> f64 {
        let denom = self.p_low_to_high + self.p_high_to_low;
        if denom == 0.0 {
            0.0
        } else {
            self.p_low_to_high / denom
        }
    }
}

impl ArrivalProcess for Mmpp {
    fn arrivals<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        // Transition at the slot boundary, then emit with the new state.
        let flip: f64 = rng.gen();
        if self.in_high {
            if flip < self.p_high_to_low {
                self.in_high = false;
            }
        } else if flip < self.p_low_to_high {
            self.in_high = true;
        }
        let rate = if self.in_high {
            self.rate_high
        } else {
            self.rate_low
        };
        Poisson::new(rate).sample(rng)
    }

    fn mean_rate(&self) -> f64 {
        let ph = self.stationary_high();
        ph * self.rate_high + (1.0 - ph) * self.rate_low
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn poisson_mean_rate_matches() {
        let mut p = PoissonArrivals::new(10.0);
        let mut rng = SeededRng::new(1);
        let total: u64 = (0..20_000).map(|_| p.arrivals(&mut rng)).sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        assert_eq!(p.mean_rate(), 10.0);
    }

    #[test]
    fn mmpp_stationary_mean_matches_target() {
        let mut m = Mmpp::with_mean(10.0);
        assert!((m.mean_rate() - 10.0).abs() < 1e-12);
        assert!((m.stationary_high() - 0.25).abs() < 1e-12);
        let mut rng = SeededRng::new(2);
        let total: u64 = (0..60_000).map(|_| m.arrivals(&mut rng)).sum();
        let mean = total as f64 / 60_000.0;
        assert!((mean - 10.0).abs() < 0.4, "mean {mean}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let mut m = Mmpp::with_mean(10.0);
        let mut p = PoissonArrivals::new(10.0);
        let mut rng = SeededRng::new(3);
        let var = |xs: &[f64]| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64
        };
        let ms: Vec<f64> = (0..30_000).map(|_| m.arrivals(&mut rng) as f64).collect();
        let ps: Vec<f64> = (0..30_000).map(|_| p.arrivals(&mut rng) as f64).collect();
        assert!(
            var(&ms) > 2.0 * var(&ps),
            "mmpp var {} poisson var {}",
            var(&ms),
            var(&ps)
        );
    }

    #[test]
    fn mmpp_state_transitions_occur() {
        let mut m = Mmpp::with_mean(10.0);
        let mut rng = SeededRng::new(4);
        let mut highs = 0;
        for _ in 0..2000 {
            m.arrivals(&mut rng);
            if m.in_burst() {
                highs += 1;
            }
        }
        // Around 25% of slots in burst state.
        assert!(highs > 300 && highs < 700, "high slots {highs}");
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn mmpp_rejects_bad_probability() {
        Mmpp::new(1.0, 2.0, 1.5, 0.1);
    }
}
