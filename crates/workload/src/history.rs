//! Request history recording and per-class demand series (§III-A).
//!
//! The plan pipeline needs, for every class `r̃ = (application, ingress)`,
//! the per-slot concurrent demand `d(r̃, t) = Σ_{r ∈ r̃ ∩ R(t)} d(r)`
//! over the history window, from which the expected demand `d(r̃)` is the
//! bootstrap-estimated `P̂_α` (Eq. 6; the paper uses α = 80 to avoid
//! over-provisioning).

use std::collections::BTreeMap;

use rand::Rng;
use vne_model::ids::ClassId;
use vne_model::request::{Request, Slot};

use crate::stats::{bootstrap_percentile, BootstrapEstimate, Ecdf};

/// Per-class, per-slot concurrent demand series over a history window.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDemandSeries {
    slots: Slot,
    series: BTreeMap<ClassId, Vec<f64>>,
}

impl ClassDemandSeries {
    /// Accumulates the active demand of `requests` over slots
    /// `0..slots` (requests active outside the window are clipped).
    pub fn from_requests(requests: &[Request], slots: Slot) -> Self {
        let mut series: BTreeMap<ClassId, Vec<f64>> = BTreeMap::new();
        for r in requests {
            let start = r.arrival.min(slots);
            let end = r.departure().min(slots);
            if start >= end {
                continue;
            }
            let entry = series
                .entry(r.class())
                .or_insert_with(|| vec![0.0; slots as usize]);
            for t in start..end {
                entry[t as usize] += r.demand;
            }
        }
        Self { slots, series }
    }

    /// Number of slots in the window.
    pub fn slots(&self) -> Slot {
        self.slots
    }

    /// Number of classes observed.
    pub fn class_count(&self) -> usize {
        self.series.len()
    }

    /// The classes observed, in deterministic order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.series.keys().copied()
    }

    /// The demand series of one class (`None` if unobserved).
    pub fn series(&self, class: ClassId) -> Option<&[f64]> {
        self.series.get(&class).map(|v| v.as_slice())
    }

    /// The plain `alpha`-percentile of each class's series.
    pub fn percentile_demands(&self, alpha: f64) -> BTreeMap<ClassId, f64> {
        self.series
            .iter()
            .map(|(&c, s)| (c, Ecdf::new(s.clone()).percentile(alpha)))
            .collect()
    }

    /// The bootstrap-estimated `P̂_α` demand per class (Eq. 6).
    pub fn expected_demands<R: Rng + ?Sized>(
        &self,
        alpha: f64,
        replicates: usize,
        rng: &mut R,
    ) -> BTreeMap<ClassId, f64> {
        self.bootstrap_demands(alpha, replicates, rng)
            .into_iter()
            .map(|(c, est)| (c, est.estimate))
            .collect()
    }

    /// Full bootstrap estimates (with confidence intervals) per class.
    pub fn bootstrap_demands<R: Rng + ?Sized>(
        &self,
        alpha: f64,
        replicates: usize,
        rng: &mut R,
    ) -> BTreeMap<ClassId, BootstrapEstimate> {
        self.series
            .iter()
            .map(|(&c, s)| (c, bootstrap_percentile(s, alpha, replicates, rng)))
            .collect()
    }

    /// The paper's conformance check: for each class present in both
    /// windows, whether the online `P_α` falls within the 95% bootstrap
    /// CI of the history estimate. Returns the conforming fraction.
    pub fn conformance<R: Rng + ?Sized>(
        &self,
        online: &ClassDemandSeries,
        alpha: f64,
        replicates: usize,
        rng: &mut R,
    ) -> f64 {
        let estimates = self.bootstrap_demands(alpha, replicates, rng);
        let mut checked = 0usize;
        let mut conforming = 0usize;
        for (&class, est) in &estimates {
            if let Some(series) = online.series(class) {
                let observed = Ecdf::new(series.to_vec()).percentile(alpha);
                checked += 1;
                if est.contains(observed) {
                    conforming += 1;
                }
            }
        }
        if checked == 0 {
            return 1.0;
        }
        conforming as f64 / checked as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use vne_model::ids::{AppId, NodeId, RequestId};

    fn req(id: u64, arrival: Slot, duration: Slot, node: u32, app: u32, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival,
            duration,
            ingress: NodeId(node),
            app: AppId(app),
            demand,
        }
    }

    #[test]
    fn series_accumulates_active_demand() {
        let requests = vec![
            req(0, 0, 3, 1, 0, 2.0), // active slots 0,1,2
            req(1, 1, 2, 1, 0, 5.0), // active slots 1,2
            req(2, 0, 1, 2, 0, 7.0), // other class
        ];
        let s = ClassDemandSeries::from_requests(&requests, 4);
        assert_eq!(s.class_count(), 2);
        let c = ClassId::new(AppId(0), NodeId(1));
        assert_eq!(s.series(c).unwrap(), &[2.0, 7.0, 7.0, 0.0]);
        let c2 = ClassId::new(AppId(0), NodeId(2));
        assert_eq!(s.series(c2).unwrap(), &[7.0, 0.0, 0.0, 0.0]);
        assert_eq!(s.series(ClassId::new(AppId(9), NodeId(9))), None);
    }

    #[test]
    fn clipping_beyond_window() {
        let requests = vec![req(0, 2, 100, 1, 0, 1.0), req(1, 10, 5, 1, 0, 9.0)];
        let s = ClassDemandSeries::from_requests(&requests, 4);
        let c = ClassId::new(AppId(0), NodeId(1));
        assert_eq!(s.series(c).unwrap(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn percentile_demands_match_ecdf() {
        let requests = vec![req(0, 0, 2, 1, 0, 4.0)];
        let s = ClassDemandSeries::from_requests(&requests, 4);
        let p = s.percentile_demands(100.0);
        assert_eq!(p[&ClassId::new(AppId(0), NodeId(1))], 4.0);
        let p50 = s.percentile_demands(50.0);
        // Series [4, 4, 0, 0] → median 2.
        assert_eq!(p50[&ClassId::new(AppId(0), NodeId(1))], 2.0);
    }

    #[test]
    fn expected_demands_are_reasonable() {
        // Constant demand 6 over all slots: every percentile is 6.
        let requests = vec![req(0, 0, 100, 1, 0, 6.0)];
        let s = ClassDemandSeries::from_requests(&requests, 100);
        let mut rng = SeededRng::new(1);
        let d = s.expected_demands(80.0, 50, &mut rng);
        assert!((d[&ClassId::new(AppId(0), NodeId(1))] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn conformance_of_identical_series_is_high() {
        let mut rng = SeededRng::new(2);
        let mut requests = Vec::new();
        for i in 0..400 {
            use rand::Rng as _;
            let d: f64 = 1.0 + rng.gen::<f64>() * 4.0;
            requests.push(req(i, (i % 100) as Slot, 5, 1, 0, d));
        }
        let hist = ClassDemandSeries::from_requests(&requests, 100);
        let conf = hist.conformance(&hist.clone(), 80.0, 100, &mut rng);
        assert!(conf > 0.99, "conformance {conf}");
    }

    #[test]
    fn conformance_detects_demand_shift() {
        let base: Vec<Request> = (0..200)
            .map(|i| req(i, (i % 100) as Slot, 5, 1, 0, 2.0))
            .collect();
        let shifted: Vec<Request> = (0..200)
            .map(|i| req(i, (i % 100) as Slot, 5, 1, 0, 20.0))
            .collect();
        let hist = ClassDemandSeries::from_requests(&base, 100);
        let online = ClassDemandSeries::from_requests(&shifted, 100);
        let mut rng = SeededRng::new(3);
        let conf = hist.conformance(&online, 80.0, 100, &mut rng);
        assert_eq!(conf, 0.0);
    }
}
