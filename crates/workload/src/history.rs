//! Request history recording and per-class demand series (§III-A).
//!
//! The plan pipeline needs, for every class `r̃ = (application, ingress)`,
//! the per-slot concurrent demand `d(r̃, t) = Σ_{r ∈ r̃ ∩ R(t)} d(r)`
//! over the history window, from which the expected demand `d(r̃)` is the
//! bootstrap-estimated `P̂_α` (Eq. 6; the paper uses α = 80 to avoid
//! over-provisioning).

use std::collections::BTreeMap;

use rand::Rng;
use vne_model::ids::ClassId;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};

use crate::stats::{bootstrap_percentile, BootstrapEstimate, Ecdf};

/// Per-class, per-slot concurrent demand series over a history window.
///
/// The series is an *incremental fold*: start from
/// [`ClassDemandSeries::empty`] and feed requests one at a time
/// ([`ClassDemandSeries::observe_request`]) or one slot of arrivals at
/// a time ([`ClassDemandSeries::observe_slot`]) — the batch
/// [`ClassDemandSeries::from_requests`] is the same fold over a
/// collected trace, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDemandSeries {
    slots: Slot,
    series: BTreeMap<ClassId, Vec<f64>>,
}

impl ClassDemandSeries {
    /// An empty series over a `slots`-slot window, ready to fold
    /// requests into.
    pub fn empty(slots: Slot) -> Self {
        Self {
            slots,
            series: BTreeMap::new(),
        }
    }

    /// Folds one request into the series: its demand is added to every
    /// slot it is active in, clipped to the window.
    pub fn observe_request(&mut self, r: &Request) {
        let start = r.arrival.min(self.slots);
        let end = r.departure().min(self.slots);
        if start >= end {
            return;
        }
        let entry = self
            .series
            .entry(r.class())
            .or_insert_with(|| vec![0.0; self.slots as usize]);
        for t in start..end {
            entry[t as usize] += r.demand;
        }
    }

    /// Folds one slot's arrivals into the series (the
    /// [`crate::estimator::DemandEstimator`] feed).
    pub fn observe_slot(&mut self, events: &SlotEvents) {
        for r in &events.arrivals {
            self.observe_request(r);
        }
    }

    /// Accumulates the active demand of `requests` over slots
    /// `0..slots` (requests active outside the window are clipped).
    pub fn from_requests(requests: &[Request], slots: Slot) -> Self {
        let mut folded = Self::empty(slots);
        for r in requests {
            folded.observe_request(r);
        }
        folded
    }

    /// The sub-series of the slots belonging to one phase of a cyclic
    /// schedule: slot `t` belongs to phase `(t / period_length) %
    /// periods`. The phase's slots are concatenated in time order (the
    /// slicing behind time-varying plans).
    ///
    /// # Panics
    ///
    /// Panics if `period_length == 0` or `periods == 0`.
    pub fn phase_slice(&self, period_length: Slot, periods: usize, phase: usize) -> Self {
        assert!(period_length > 0, "period length must be positive");
        assert!(periods > 0, "need at least one period");
        let picked: Vec<usize> = (0..self.slots)
            .filter(|&t| ((t / period_length) as usize) % periods == phase)
            .map(|t| t as usize)
            .collect();
        let series = self
            .series
            .iter()
            .map(|(&c, full)| (c, picked.iter().map(|&t| full[t]).collect()))
            .collect();
        Self {
            slots: picked.len() as Slot,
            series,
        }
    }

    /// Number of slots in the window.
    pub fn slots(&self) -> Slot {
        self.slots
    }

    /// Number of classes observed.
    pub fn class_count(&self) -> usize {
        self.series.len()
    }

    /// The classes observed, in deterministic order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.series.keys().copied()
    }

    /// The demand series of one class (`None` if unobserved).
    pub fn series(&self, class: ClassId) -> Option<&[f64]> {
        self.series.get(&class).map(|v| v.as_slice())
    }

    /// The plain `alpha`-percentile of each class's series.
    pub fn percentile_demands(&self, alpha: f64) -> BTreeMap<ClassId, f64> {
        self.series
            .iter()
            .map(|(&c, s)| (c, Ecdf::new(s.clone()).percentile(alpha)))
            .collect()
    }

    /// The bootstrap-estimated `P̂_α` demand per class (Eq. 6).
    pub fn expected_demands<R: Rng + ?Sized>(
        &self,
        alpha: f64,
        replicates: usize,
        rng: &mut R,
    ) -> BTreeMap<ClassId, f64> {
        self.bootstrap_demands(alpha, replicates, rng)
            .into_iter()
            .map(|(c, est)| (c, est.estimate))
            .collect()
    }

    /// Full bootstrap estimates (with confidence intervals) per class.
    pub fn bootstrap_demands<R: Rng + ?Sized>(
        &self,
        alpha: f64,
        replicates: usize,
        rng: &mut R,
    ) -> BTreeMap<ClassId, BootstrapEstimate> {
        self.series
            .iter()
            .map(|(&c, s)| (c, bootstrap_percentile(s, alpha, replicates, rng)))
            .collect()
    }

    /// The paper's conformance check: for each class present in both
    /// windows, whether the online `P_α` falls within the 95% bootstrap
    /// CI of the history estimate. Returns the conforming fraction.
    pub fn conformance<R: Rng + ?Sized>(
        &self,
        online: &ClassDemandSeries,
        alpha: f64,
        replicates: usize,
        rng: &mut R,
    ) -> f64 {
        let estimates = self.bootstrap_demands(alpha, replicates, rng);
        let mut checked = 0usize;
        let mut conforming = 0usize;
        for (&class, est) in &estimates {
            if let Some(series) = online.series(class) {
                let observed = Ecdf::new(series.to_vec()).percentile(alpha);
                checked += 1;
                if est.contains(observed) {
                    conforming += 1;
                }
            }
        }
        if checked == 0 {
            return 1.0;
        }
        conforming as f64 / checked as f64
    }
}

/// Checkpointing: the dense per-class series is the whole state
/// (BTreeMap encoding is canonical, floats round-trip bit-exactly), so
/// an interrupted history fold resumes mid-window. The window length is
/// a construction input and is validated — a blob from a differently
/// sized window must not silently reshape the receiver.
impl Snapshot for ClassDemandSeries {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_u32(self.slots);
        w.write(&self.series);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let slots = r.read_u32()?;
        if slots != self.slots {
            return Err(StateError::Mismatch {
                expected: format!("{}-slot demand series", self.slots),
                found: format!("blob for a {slots}-slot window"),
            });
        }
        let series: BTreeMap<ClassId, Vec<f64>> = r.read()?;
        r.finish()?;
        if series.values().any(|v| v.len() != slots as usize) {
            return Err(StateError::Corrupt(format!(
                "class series length differs from the {slots}-slot window"
            )));
        }
        self.series = series;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use vne_model::ids::{AppId, NodeId, RequestId};

    fn req(id: u64, arrival: Slot, duration: Slot, node: u32, app: u32, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival,
            duration,
            ingress: NodeId(node),
            app: AppId(app),
            demand,
        }
    }

    #[test]
    fn series_accumulates_active_demand() {
        let requests = vec![
            req(0, 0, 3, 1, 0, 2.0), // active slots 0,1,2
            req(1, 1, 2, 1, 0, 5.0), // active slots 1,2
            req(2, 0, 1, 2, 0, 7.0), // other class
        ];
        let s = ClassDemandSeries::from_requests(&requests, 4);
        assert_eq!(s.class_count(), 2);
        let c = ClassId::new(AppId(0), NodeId(1));
        assert_eq!(s.series(c).unwrap(), &[2.0, 7.0, 7.0, 0.0]);
        let c2 = ClassId::new(AppId(0), NodeId(2));
        assert_eq!(s.series(c2).unwrap(), &[7.0, 0.0, 0.0, 0.0]);
        assert_eq!(s.series(ClassId::new(AppId(9), NodeId(9))), None);
    }

    #[test]
    fn incremental_fold_matches_batch() {
        let requests = vec![
            req(0, 0, 3, 1, 0, 2.0),
            req(1, 1, 2, 1, 0, 5.0),
            req(2, 0, 1, 2, 0, 7.0),
        ];
        let batch = ClassDemandSeries::from_requests(&requests, 4);
        let mut fold = ClassDemandSeries::empty(4);
        for t in 0..4 {
            fold.observe_slot(&vne_model::request::SlotEvents {
                slot: t,
                arrivals: requests
                    .iter()
                    .filter(|r| r.arrival == t)
                    .cloned()
                    .collect(),
                churn: Vec::new(),
            });
        }
        assert_eq!(fold, batch);
    }

    #[test]
    fn phase_slice_picks_cyclic_slots() {
        // Demand 3 in slots 0..2, demand 9 in slots 2..4.
        let requests = vec![req(0, 0, 2, 1, 0, 3.0), req(1, 2, 2, 1, 0, 9.0)];
        let s = ClassDemandSeries::from_requests(&requests, 4);
        let c = ClassId::new(AppId(0), NodeId(1));
        let even = s.phase_slice(2, 2, 0);
        let odd = s.phase_slice(2, 2, 1);
        assert_eq!(even.slots(), 2);
        assert_eq!(even.series(c).unwrap(), &[3.0, 3.0]);
        assert_eq!(odd.series(c).unwrap(), &[9.0, 9.0]);
        // A phase with no slots in the window is empty.
        let beyond = s.phase_slice(4, 3, 2);
        assert_eq!(beyond.slots(), 0);
    }

    #[test]
    fn clipping_beyond_window() {
        let requests = vec![req(0, 2, 100, 1, 0, 1.0), req(1, 10, 5, 1, 0, 9.0)];
        let s = ClassDemandSeries::from_requests(&requests, 4);
        let c = ClassId::new(AppId(0), NodeId(1));
        assert_eq!(s.series(c).unwrap(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn percentile_demands_match_ecdf() {
        let requests = vec![req(0, 0, 2, 1, 0, 4.0)];
        let s = ClassDemandSeries::from_requests(&requests, 4);
        let p = s.percentile_demands(100.0);
        assert_eq!(p[&ClassId::new(AppId(0), NodeId(1))], 4.0);
        let p50 = s.percentile_demands(50.0);
        // Series [4, 4, 0, 0] → median 2.
        assert_eq!(p50[&ClassId::new(AppId(0), NodeId(1))], 2.0);
    }

    #[test]
    fn expected_demands_are_reasonable() {
        // Constant demand 6 over all slots: every percentile is 6.
        let requests = vec![req(0, 0, 100, 1, 0, 6.0)];
        let s = ClassDemandSeries::from_requests(&requests, 100);
        let mut rng = SeededRng::new(1);
        let d = s.expected_demands(80.0, 50, &mut rng);
        assert!((d[&ClassId::new(AppId(0), NodeId(1))] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn conformance_of_identical_series_is_high() {
        let mut rng = SeededRng::new(2);
        let mut requests = Vec::new();
        for i in 0..400 {
            use rand::Rng as _;
            let d: f64 = 1.0 + rng.gen::<f64>() * 4.0;
            requests.push(req(i, (i % 100) as Slot, 5, 1, 0, d));
        }
        let hist = ClassDemandSeries::from_requests(&requests, 100);
        let conf = hist.conformance(&hist.clone(), 80.0, 100, &mut rng);
        assert!(conf > 0.99, "conformance {conf}");
    }

    #[test]
    fn conformance_detects_demand_shift() {
        let base: Vec<Request> = (0..200)
            .map(|i| req(i, (i % 100) as Slot, 5, 1, 0, 2.0))
            .collect();
        let shifted: Vec<Request> = (0..200)
            .map(|i| req(i, (i % 100) as Slot, 5, 1, 0, 20.0))
            .collect();
        let hist = ClassDemandSeries::from_requests(&base, 100);
        let online = ClassDemandSeries::from_requests(&shifted, 100);
        let mut rng = SeededRng::new(3);
        let conf = hist.conformance(&online, 80.0, 100, &mut rng);
        assert_eq!(conf, 0.0);
    }
}
