//! CAIDA-like heavy-tailed trace synthesis (paper Fig. 15).
//!
//! The paper derives its second trace from the 2019 "Equinix-NewYork"
//! CAIDA monitor: flows are aggregated per IP source and the grouped
//! requests are randomly assigned to datacenters. The raw dataset is
//! access-restricted, so this module synthesizes a trace with the
//! operative properties of that derivation (see DESIGN.md §6):
//!
//! * a fixed population of *sources* with lognormal (heavy-tailed)
//!   per-source demand scales — a few heavy hitters, many mice;
//! * sources mapped to edge datacenters with Zipf popularity (the random
//!   assignment of grouped sources);
//! * Poisson arrivals at a fixed aggregate rate (the paper reports an
//!   average of 495 requests per second for this trace);
//! * exponential durations as in the synthetic trace.

use rand::Rng;
use vne_model::app::AppSet;
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::substrate::SubstrateNetwork;

use crate::dist::{Exponential, LogNormal, Poisson, Zipf};

/// Parameters of the CAIDA-like trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CaidaConfig {
    /// Number of time slots.
    pub slots: Slot,
    /// Aggregate arrivals per slot (the paper's trace averages 495/s).
    pub total_rate: f64,
    /// Number of aggregated IP sources.
    pub sources: usize,
    /// Mean request demand (rescaled for target utilization like the
    /// synthetic trace).
    pub demand_mean: f64,
    /// σ of the underlying normal of the per-source scale (heavier tail
    /// with larger σ).
    pub tail_sigma: f64,
    /// Mean request duration in slots.
    pub duration_mean: f64,
    /// Zipf exponent of source-to-datacenter popularity.
    pub zipf_alpha: f64,
    /// Seed of the source population (homes and scales). Separate from
    /// the arrival RNG so the history and online phases of an experiment
    /// see the same heavy hitters.
    pub population_seed: u64,
}

impl Default for CaidaConfig {
    fn default() -> Self {
        Self {
            slots: 6000,
            total_rate: 495.0,
            sources: 2000,
            demand_mean: 10.0,
            tail_sigma: 1.0,
            duration_mean: 10.0,
            zipf_alpha: 1.0,
            population_seed: 0xCA1DA,
        }
    }
}

/// A lazy, slot-by-slot CAIDA-like trace: an `Iterator<Item = SlotEvents>`.
///
/// Memory is `O(sources)` — the source population is fixed up front,
/// arrivals are sampled per slot on demand. Construct with [`stream`];
/// [`generate`] is the eager collecting wrapper.
pub struct CaidaStream<R: Rng> {
    slots: Slot,
    next_slot: Slot,
    next_id: u64,
    sources: Vec<(NodeId, f64)>,
    source_zipf: Zipf,
    arrivals: Poisson,
    duration: Exponential,
    jitter: LogNormal,
    demand_mean: f64,
    app_count: usize,
    rng: R,
}

impl<R: Rng> Iterator for CaidaStream<R> {
    type Item = SlotEvents;

    fn next(&mut self) -> Option<SlotEvents> {
        if self.next_slot >= self.slots {
            return None;
        }
        let t = self.next_slot;
        self.next_slot += 1;
        let k = self.arrivals.sample(&mut self.rng);
        let mut arrivals = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let (node, scale) = self.sources[self.source_zipf.sample(&mut self.rng)];
            let d = (self.demand_mean * scale * self.jitter.sample(&mut self.rng)).max(0.5);
            let dur = self.duration.sample(&mut self.rng).round().max(1.0) as Slot;
            let app = AppId::from_index(self.rng.gen_range(0..self.app_count));
            arrivals.push(Request {
                id: RequestId(self.next_id),
                arrival: t,
                duration: dur,
                ingress: node,
                app,
                demand: d,
            });
            self.next_id += 1;
        }
        Some(SlotEvents {
            slot: t,
            arrivals,
            churn: Vec::new(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.slots - self.next_slot) as usize;
        (left, Some(left))
    }
}

impl<R: Rng> ExactSizeIterator for CaidaStream<R> {}

impl<R: Rng> CaidaStream<R> {
    /// Fast-forwards the stream so the next yielded event is `slot`
    /// (clamped to the horizon) — the resume path of checkpointed runs.
    /// Replays the RNG draws of the skipped slots (see
    /// [`crate::tracegen::TraceStream::skip_to`]).
    pub fn skip_to(&mut self, slot: Slot) {
        while self.next_slot < slot.min(self.slots) {
            let _ = self.next();
        }
    }
}

/// Creates a lazy CAIDA-like trace stream.
///
/// Each arrival picks a source with Zipf weight (heavy-hitter sources
/// emit more), inherits the source's home edge datacenter and scales the
/// source's lognormal demand factor, so per-datacenter demand inherits
/// the heavy tail of the source population.
///
/// # Panics
///
/// Panics if the substrate has no edge nodes, `apps` is empty, or
/// `config.sources` is zero.
pub fn stream<R: Rng>(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    config: &CaidaConfig,
    rng: R,
) -> CaidaStream<R> {
    let edge_nodes = substrate.edge_nodes();
    assert!(!edge_nodes.is_empty(), "substrate has no edge nodes");
    assert!(!apps.is_empty(), "application set is empty");
    assert!(config.sources > 0, "need at least one source");

    // Source population: home DC + demand scale (stable per
    // `population_seed`, independent of the arrival RNG).
    let mut pop_rng = crate::rng::SeededRng::new(config.population_seed);
    let scale_dist = LogNormal::with_mean(1.0, config.tail_sigma);
    let node_zipf = Zipf::new(edge_nodes.len(), config.zipf_alpha);
    let sources: Vec<(NodeId, f64)> = (0..config.sources)
        .map(|_| {
            let node = edge_nodes[node_zipf.sample(&mut pop_rng)];
            (node, scale_dist.sample(&mut pop_rng))
        })
        .collect();

    CaidaStream {
        slots: config.slots,
        next_slot: 0,
        next_id: 0,
        sources,
        // Heavy-hitter source selection (Zipf over sources).
        source_zipf: Zipf::new(config.sources, config.zipf_alpha),
        arrivals: Poisson::new(config.total_rate),
        duration: Exponential::new(config.duration_mean),
        jitter: LogNormal::with_mean(1.0, 0.3),
        demand_mean: config.demand_mean,
        app_count: apps.len(),
        rng,
    }
}

/// Generates the CAIDA-like trace eagerly by draining [`stream`].
pub fn generate<R: Rng + ?Sized>(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    config: &CaidaConfig,
    rng: &mut R,
) -> Vec<Request> {
    stream(substrate, apps, config, rng)
        .flat_map(|ev| ev.arrivals)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appgen::{paper_mix, AppGenConfig};
    use crate::rng::SeededRng;
    use vne_topology::zoo::citta_studi;

    fn small() -> CaidaConfig {
        CaidaConfig {
            slots: 300,
            total_rate: 50.0,
            sources: 200,
            ..CaidaConfig::default()
        }
    }

    #[test]
    fn trace_has_expected_rate() {
        let s = citta_studi().unwrap();
        let mut rng = SeededRng::new(1);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        let trace = generate(&s, &apps, &small(), &mut rng);
        let mean = trace.len() as f64 / 300.0;
        assert!((mean - 50.0).abs() < 3.0, "rate {mean}");
    }

    #[test]
    fn demand_distribution_is_heavy_tailed() {
        let s = citta_studi().unwrap();
        let mut rng = SeededRng::new(2);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        let trace = generate(&s, &apps, &small(), &mut rng);
        let mut demands: Vec<f64> = trace.iter().map(|r| r.demand).collect();
        demands.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = demands[demands.len() / 2];
        let p99 = demands[(demands.len() as f64 * 0.99) as usize];
        // Heavy tail: 99th percentile far above the median (a normal with
        // the paper's CV of 0.2 would have p99/median ≈ 1.5).
        assert!(p99 / median > 4.0, "p99/median = {}", p99 / median);
    }

    #[test]
    fn requests_originate_at_edges_only() {
        let s = citta_studi().unwrap();
        let mut rng = SeededRng::new(3);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        let trace = generate(&s, &apps, &small(), &mut rng);
        let edge: std::collections::HashSet<_> = s.edge_nodes().into_iter().collect();
        assert!(trace.iter().all(|r| edge.contains(&r.ingress)));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = citta_studi().unwrap();
        let apps = paper_mix(&AppGenConfig::default(), &mut SeededRng::new(4));
        let a = generate(&s, &apps, &small(), &mut SeededRng::new(5));
        let b = generate(&s, &apps, &small(), &mut SeededRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn skip_to_yields_the_tail_of_the_full_stream() {
        let s = citta_studi().unwrap();
        let apps = paper_mix(&AppGenConfig::default(), &mut SeededRng::new(4));
        let config = small();
        let full: Vec<_> = stream(&s, &apps, &config, SeededRng::new(7)).collect();
        let mut skipped = stream(&s, &apps, &config, SeededRng::new(7));
        skipped.skip_to(100);
        let tail: Vec<_> = skipped.collect();
        assert_eq!(tail.len(), 200);
        assert_eq!(tail.as_slice(), &full[100..]);
    }

    #[test]
    fn stream_matches_generate() {
        let s = citta_studi().unwrap();
        let apps = paper_mix(&AppGenConfig::default(), &mut SeededRng::new(4));
        let config = small();
        let eager = generate(&s, &apps, &config, &mut SeededRng::new(6));
        let events: Vec<_> = stream(&s, &apps, &config, SeededRng::new(6)).collect();
        assert_eq!(events.len(), config.slots as usize);
        let streamed: Vec<Request> = events.into_iter().flat_map(|ev| ev.arrivals).collect();
        assert_eq!(eager, streamed);
    }
}
