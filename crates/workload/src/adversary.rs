//! Adversarial workloads and substrate-churn schedules.
//!
//! The scenario suite stresses the online algorithms with inputs crafted
//! against their assumptions instead of the benign Table III mixes:
//!
//! * [`revenue_burst`] — revenue-concentrated bursts: a calm background
//!   punctuated by periodic high-demand bursts aimed at one hot edge
//!   node, the worst case for threshold-style admission;
//! * [`lifetime_cliff`] — every request departs on the next lifetime
//!   *cliff* boundary, synchronizing mass departures (capacity swings
//!   from full to empty in one slot);
//! * [`plan_adversarial`] — all demand lands on the classes a given
//!   time-varying plan allocated *least* for, the worst case for
//!   plan-guided algorithms;
//! * [`Modulated`] — stateless arrival-rate modulators (flash crowds,
//!   diurnal swings) layered over any slot-event stream by id-hash
//!   thinning;
//! * [`ChurnSchedule`] / [`with_churn`] — deterministic substrate-churn
//!   schedules (link outages, node maintenance windows, capacity
//!   drains) injected into any slot-event stream.
//!
//! Everything here is lazy, deterministic and resumable. The standalone
//! generators derive one independent sub-RNG *per slot*
//! ([`crate::rng::SeededRng::derive`]) and use arithmetic per-slot
//! request counts, so [`AdversaryStream::skip_to`] is pure arithmetic —
//! no RNG replay — and a resumed stream is byte-identical to the suffix
//! of a full run. The modulators and churn schedules are stateless
//! per-slot maps, so they commute with `skip_to` on the stream below
//! them.

use std::collections::BTreeMap;

use vne_model::app::AppSet;
use vne_model::churn::ChurnEvent;
use vne_model::ids::{AppId, ClassId, LinkId, NodeId, RequestId};
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::substrate::SubstrateNetwork;

use crate::dist::{Exponential, Normal};
use crate::rng::SeededRng;

/// The builtin adversarial workload profiles, as named by scenario
/// configurations (`fig_adversarial`). The first three replace the base
/// trace generator; the last two modulate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryProfile {
    /// Periodic revenue-concentrated bursts at the hottest edge node.
    RevenueBurst,
    /// Departures synchronized on lifetime-cliff boundaries.
    LifetimeCliff,
    /// Demand concentrated on the least-planned request classes.
    PlanAdversarial,
    /// Flash-crowd thinning: quiet background, full-rate crowd windows.
    FlashCrowd,
    /// Diurnal sinusoidal arrival-rate modulation.
    Diurnal,
}

impl AdversaryProfile {
    /// All builtin profiles, in scenario-matrix order.
    pub const ALL: [AdversaryProfile; 5] = [
        AdversaryProfile::RevenueBurst,
        AdversaryProfile::LifetimeCliff,
        AdversaryProfile::PlanAdversarial,
        AdversaryProfile::FlashCrowd,
        AdversaryProfile::Diurnal,
    ];

    /// Stable scenario label (JSON keys, checkpoint configs).
    pub fn label(&self) -> &'static str {
        match self {
            AdversaryProfile::RevenueBurst => "revenue_burst",
            AdversaryProfile::LifetimeCliff => "lifetime_cliff",
            AdversaryProfile::PlanAdversarial => "plan_adversarial",
            AdversaryProfile::FlashCrowd => "flash_crowd",
            AdversaryProfile::Diurnal => "diurnal",
        }
    }

    /// Parses a [`AdversaryProfile::label`] back into the profile.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == label)
    }
}

/// The builtin substrate-churn profiles. All windows are deterministic
/// in the slot number, so a resumed stream regenerates the exact same
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnProfile {
    /// Every `period` slots, `count` links fail for `len` slots
    /// (rotating over the link set).
    LinkOutages {
        /// Window period in slots.
        period: Slot,
        /// Outage length in slots (`< period`).
        len: Slot,
        /// Links down per window.
        count: usize,
    },
    /// Every `period` slots one node (rotating over all nodes) enters a
    /// maintenance window of `len` slots at zero capacity.
    NodeMaintenance {
        /// Window period in slots.
        period: Slot,
        /// Maintenance length in slots (`< period`).
        len: Slot,
    },
    /// Every `period` slots all node capacities drain to `factor` of
    /// nameplate for `len` slots.
    CapacityDrain {
        /// Window period in slots.
        period: Slot,
        /// Drain length in slots (`< period`).
        len: Slot,
        /// Capacity factor during the drain, in `[0, 1]`.
        factor: f64,
    },
}

impl ChurnProfile {
    /// Stable scenario label (JSON keys, checkpoint configs).
    pub fn label(&self) -> &'static str {
        match self {
            ChurnProfile::LinkOutages { .. } => "link_outages",
            ChurnProfile::NodeMaintenance { .. } => "node_maintenance",
            ChurnProfile::CapacityDrain { .. } => "capacity_drain",
        }
    }
}

/// Parameters of the [`revenue_burst`] adversary.
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueBurstConfig {
    /// Number of time slots.
    pub slots: Slot,
    /// Background arrivals per slot (spread over all edge nodes).
    pub background_per_slot: usize,
    /// A burst starts every `burst_period` slots.
    pub burst_period: Slot,
    /// Burst length in slots (`< burst_period`).
    pub burst_len: Slot,
    /// Extra arrivals per burst slot, all at the hot edge node.
    pub burst_per_slot: usize,
    /// Burst demand multiplier over the background mean.
    pub burst_demand_factor: f64,
    /// Mean background demand.
    pub demand_mean: f64,
    /// Demand standard deviation.
    pub demand_std: f64,
    /// Mean duration in slots.
    pub duration_mean: f64,
    /// Stream seed.
    pub seed: u64,
}

impl Default for RevenueBurstConfig {
    fn default() -> Self {
        Self {
            slots: 600,
            background_per_slot: 4,
            burst_period: 50,
            burst_len: 10,
            burst_per_slot: 20,
            burst_demand_factor: 3.0,
            demand_mean: 10.0,
            demand_std: 2.0,
            duration_mean: 10.0,
            seed: 0xADF5,
        }
    }
}

/// Parameters of the [`lifetime_cliff`] adversary.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeCliffConfig {
    /// Number of time slots.
    pub slots: Slot,
    /// Arrivals per slot.
    pub per_slot: usize,
    /// Cliff period: every request departs on the next multiple of this.
    pub cliff: Slot,
    /// Mean demand.
    pub demand_mean: f64,
    /// Demand standard deviation.
    pub demand_std: f64,
    /// Stream seed.
    pub seed: u64,
}

impl Default for LifetimeCliffConfig {
    fn default() -> Self {
        Self {
            slots: 600,
            per_slot: 10,
            cliff: 40,
            demand_mean: 10.0,
            demand_std: 2.0,
            seed: 0xC11F,
        }
    }
}

/// Parameters of the [`plan_adversarial`] adversary.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAdversarialConfig {
    /// Number of time slots.
    pub slots: Slot,
    /// Arrivals per slot.
    pub per_slot: usize,
    /// Number of least-planned classes the demand concentrates on.
    pub target_classes: usize,
    /// Mean demand.
    pub demand_mean: f64,
    /// Demand standard deviation.
    pub demand_std: f64,
    /// Mean duration in slots.
    pub duration_mean: f64,
    /// Stream seed.
    pub seed: u64,
}

impl Default for PlanAdversarialConfig {
    fn default() -> Self {
        Self {
            slots: 600,
            per_slot: 10,
            target_classes: 3,
            demand_mean: 10.0,
            demand_std: 2.0,
            duration_mean: 10.0,
            seed: 0x91A7,
        }
    }
}

/// How one arrival of an [`AdversaryStream`] is shaped.
#[derive(Debug, Clone)]
enum AdversaryMode {
    RevenueBurst {
        period: Slot,
        len: Slot,
        extra: usize,
        factor: f64,
        hot: NodeId,
    },
    LifetimeCliff {
        cliff: Slot,
    },
    PlanTargets {
        targets: Vec<ClassId>,
    },
}

/// A lazy adversarial slot-event stream (see the module docs).
///
/// Per-slot request counts are arithmetic in the slot number and every
/// slot samples from an independent derived sub-RNG, so
/// [`AdversaryStream::skip_to`] never replays random draws.
#[derive(Debug, Clone)]
pub struct AdversaryStream {
    slots: Slot,
    next_slot: Slot,
    next_id: u64,
    per_slot: usize,
    edge_nodes: Vec<NodeId>,
    app_count: usize,
    demand: Normal,
    duration: Exponential,
    base: SeededRng,
    mode: AdversaryMode,
}

impl AdversaryStream {
    /// Requests emitted on slot `t` (arithmetic, no RNG).
    fn count_at(&self, t: Slot) -> usize {
        match &self.mode {
            AdversaryMode::RevenueBurst {
                period, len, extra, ..
            } => {
                if t % period < *len {
                    self.per_slot + extra
                } else {
                    self.per_slot
                }
            }
            _ => self.per_slot,
        }
    }

    /// Fast-forwards the stream so the next yielded event is `slot`
    /// (clamped to the horizon) — the resume path of checkpointed runs.
    /// Pure arithmetic: per-slot counts are deterministic and each slot
    /// draws from its own derived sub-RNG, so nothing is replayed.
    pub fn skip_to(&mut self, slot: Slot) {
        let to = slot.min(self.slots);
        while self.next_slot < to {
            self.next_id += self.count_at(self.next_slot) as u64;
            self.next_slot += 1;
        }
    }
}

impl Iterator for AdversaryStream {
    type Item = SlotEvents;

    fn next(&mut self) -> Option<SlotEvents> {
        if self.next_slot >= self.slots {
            return None;
        }
        let t = self.next_slot;
        self.next_slot += 1;
        let count = self.count_at(t);
        let mut rng = self.base.derive(u64::from(t));
        let mut arrivals = Vec::with_capacity(count);
        for i in 0..count {
            let id = RequestId(self.next_id);
            self.next_id += 1;
            let mut demand = self.demand.sample_truncated(&mut rng, 0.5);
            let mut duration = self.duration.sample(&mut rng).round().max(1.0) as Slot;
            use rand::Rng;
            let (ingress, app) = match &self.mode {
                AdversaryMode::RevenueBurst { factor, hot, .. } => {
                    let burst = i >= self.per_slot;
                    if burst {
                        demand *= factor;
                        (*hot, AppId::from_index(rng.gen_range(0..self.app_count)))
                    } else {
                        let node = self.edge_nodes[rng.gen_range(0..self.edge_nodes.len())];
                        (node, AppId::from_index(rng.gen_range(0..self.app_count)))
                    }
                }
                AdversaryMode::LifetimeCliff { cliff } => {
                    // Depart exactly on the next cliff boundary.
                    duration = cliff - (t % cliff);
                    let node = self.edge_nodes[rng.gen_range(0..self.edge_nodes.len())];
                    (node, AppId::from_index(rng.gen_range(0..self.app_count)))
                }
                AdversaryMode::PlanTargets { targets } => {
                    let class = targets[(id.0 as usize) % targets.len()];
                    (class.ingress, class.app)
                }
            };
            arrivals.push(Request {
                id,
                arrival: t,
                duration,
                ingress,
                app,
                demand,
            });
        }
        Some(SlotEvents {
            slot: t,
            arrivals,
            churn: Vec::new(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.slots - self.next_slot) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for AdversaryStream {}

fn edge_nodes_checked(substrate: &SubstrateNetwork, apps: &AppSet) -> Vec<NodeId> {
    let edge_nodes = substrate.edge_nodes();
    assert!(!edge_nodes.is_empty(), "substrate has no edge nodes");
    assert!(!apps.is_empty(), "application set is empty");
    edge_nodes
}

/// Creates the revenue-concentrated burst adversary: a calm background
/// over all edge nodes plus, every `burst_period` slots, `burst_len`
/// slots of high-demand arrivals aimed at the first (hottest) edge node.
///
/// # Panics
///
/// Panics if the substrate has no edge nodes, `apps` is empty, or
/// `burst_len >= burst_period`.
pub fn revenue_burst(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    config: &RevenueBurstConfig,
) -> AdversaryStream {
    let edge_nodes = edge_nodes_checked(substrate, apps);
    assert!(
        config.burst_len < config.burst_period,
        "burst length {} must be shorter than the period {}",
        config.burst_len,
        config.burst_period
    );
    let hot = edge_nodes[0];
    AdversaryStream {
        slots: config.slots,
        next_slot: 0,
        next_id: 0,
        per_slot: config.background_per_slot,
        edge_nodes,
        app_count: apps.len(),
        demand: Normal::new(config.demand_mean, config.demand_std),
        duration: Exponential::new(config.duration_mean),
        base: SeededRng::new(config.seed),
        mode: AdversaryMode::RevenueBurst {
            period: config.burst_period,
            len: config.burst_len,
            extra: config.burst_per_slot,
            factor: config.burst_demand_factor,
            hot,
        },
    }
}

/// Creates the lifetime-cliff adversary: every request's departure is
/// aligned to the next multiple of `cliff`, synchronizing mass
/// departures.
///
/// # Panics
///
/// Panics if the substrate has no edge nodes, `apps` is empty, or
/// `cliff == 0`.
pub fn lifetime_cliff(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    config: &LifetimeCliffConfig,
) -> AdversaryStream {
    let edge_nodes = edge_nodes_checked(substrate, apps);
    assert!(config.cliff > 0, "cliff period must be positive");
    AdversaryStream {
        slots: config.slots,
        next_slot: 0,
        next_id: 0,
        per_slot: config.per_slot,
        edge_nodes,
        app_count: apps.len(),
        demand: Normal::new(config.demand_mean, config.demand_std),
        duration: Exponential::new(1.0), // unused: cliff overrides
        base: SeededRng::new(config.seed),
        mode: AdversaryMode::LifetimeCliff {
            cliff: config.cliff,
        },
    }
}

/// Creates the plan-adversarial workload: ranks the `(edge node, app)`
/// classes by their share in `plan` (missing classes count as zero) and
/// concentrates all demand on the `target_classes` *least-planned*
/// ones — the worst case for a plan-guided algorithm, which reserved
/// capacity everywhere else.
///
/// `plan` is a plain per-class share summary (e.g. a
/// `TimeVaryingPlan`'s mean allocation per class); the adversary only
/// needs the ranking, not the plan object itself.
///
/// # Panics
///
/// Panics if the substrate has no edge nodes, `apps` is empty, or
/// `target_classes == 0`.
pub fn plan_adversarial(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    plan: &BTreeMap<ClassId, f64>,
    config: &PlanAdversarialConfig,
) -> AdversaryStream {
    let edge_nodes = edge_nodes_checked(substrate, apps);
    assert!(config.target_classes > 0, "need at least one target class");
    // Rank the full class universe by planned share, ascending; ties
    // break on the class id so the ranking is deterministic.
    let mut ranked: Vec<(f64, ClassId)> = edge_nodes
        .iter()
        .flat_map(|&v| {
            (0..apps.len()).map(move |a| {
                let class = ClassId::new(AppId::from_index(a), v);
                (plan.get(&class).copied().unwrap_or(0.0), class)
            })
        })
        .collect();
    ranked.sort_by(|(pa, ca), (pb, cb)| pa.partial_cmp(pb).unwrap().then(ca.cmp(cb)));
    let targets: Vec<ClassId> = ranked
        .into_iter()
        .take(config.target_classes)
        .map(|(_, c)| c)
        .collect();
    AdversaryStream {
        slots: config.slots,
        next_slot: 0,
        next_id: 0,
        per_slot: config.per_slot,
        edge_nodes,
        app_count: apps.len(),
        demand: Normal::new(config.demand_mean, config.demand_std),
        duration: Exponential::new(config.duration_mean),
        base: SeededRng::new(config.seed),
        mode: AdversaryMode::PlanTargets { targets },
    }
}

/// A stateless arrival-rate modulation over a slot-event stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Modulation {
    /// Keep probability `base_keep` outside crowd windows, 1 inside
    /// (every `period` slots, for `len` slots).
    FlashCrowd {
        /// Window period in slots.
        period: Slot,
        /// Crowd length in slots (`< period`).
        len: Slot,
        /// Keep probability outside crowd windows, in `[0, 1]`.
        base_keep: f64,
    },
    /// Keep probability swings sinusoidally between `low` and `high`
    /// with the given period.
    Diurnal {
        /// Cycle period in slots.
        period: Slot,
        /// Minimum keep probability.
        low: f64,
        /// Maximum keep probability.
        high: f64,
    },
}

impl Modulation {
    /// The keep probability at slot `t`.
    pub fn keep_probability(&self, t: Slot) -> f64 {
        match *self {
            Modulation::FlashCrowd {
                period,
                len,
                base_keep,
            } => {
                if t % period < len {
                    1.0
                } else {
                    base_keep
                }
            }
            Modulation::Diurnal { period, low, high } => {
                let phase = f64::from(t % period) / f64::from(period);
                let s = (phase * std::f64::consts::TAU).sin();
                low + (high - low) * (0.5 + 0.5 * s)
            }
        }
    }
}

/// SplitMix64 finalizer: maps a request id (xor a salt) to a uniform
/// `[0, 1)` coin, independent of every other id.
fn id_coin(id: RequestId, salt: u64) -> f64 {
    let mut z = (id.0 ^ salt).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A slot-event stream thinned by a [`Modulation`].
///
/// Thinning keeps request `r` iff `hash(r.id ^ salt) < p(slot)`: a
/// pure per-request map with no RNG state, so the modulated stream
/// commutes with `skip_to` on the stream below it (resume wraps the
/// skipped inner stream and gets the identical suffix). Surviving ids
/// are a subset of the inner ids, so they stay ascending.
#[derive(Debug, Clone)]
pub struct Modulated<I> {
    inner: I,
    modulation: Modulation,
    salt: u64,
}

impl<I: Iterator<Item = SlotEvents>> Iterator for Modulated<I> {
    type Item = SlotEvents;

    fn next(&mut self) -> Option<SlotEvents> {
        let mut event = self.inner.next()?;
        let p = self.modulation.keep_probability(event.slot);
        event.arrivals.retain(|r| id_coin(r.id, self.salt) < p);
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<I: ExactSizeIterator<Item = SlotEvents>> ExactSizeIterator for Modulated<I> {}

/// Wraps a slot-event stream with an arrival-rate [`Modulation`].
pub fn modulate<I>(inner: I, modulation: Modulation, salt: u64) -> Modulated<I>
where
    I: Iterator<Item = SlotEvents>,
{
    Modulated {
        inner,
        modulation,
        salt,
    }
}

/// A deterministic substrate-churn schedule: maps a slot number to the
/// churn events taking effect there (arithmetic in `t`, no state), so a
/// resumed stream regenerates the identical schedule from any slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSchedule {
    profile: ChurnProfile,
    node_count: usize,
    link_count: usize,
}

impl ChurnSchedule {
    /// Builds the schedule for a profile over a substrate.
    ///
    /// # Panics
    ///
    /// Panics if the profile's window length is not shorter than its
    /// period, or the substrate has no nodes/links to churn.
    pub fn new(profile: ChurnProfile, substrate: &SubstrateNetwork) -> Self {
        let (period, len) = match profile {
            ChurnProfile::LinkOutages { period, len, count } => {
                assert!(count > 0, "link outage must fail at least one link");
                assert!(substrate.link_count() > 0, "substrate has no links");
                (period, len)
            }
            ChurnProfile::NodeMaintenance { period, len } => {
                assert!(substrate.node_count() > 0, "substrate has no nodes");
                (period, len)
            }
            ChurnProfile::CapacityDrain {
                period,
                len,
                factor,
            } => {
                assert!(
                    (0.0..=1.0).contains(&factor),
                    "drain factor {factor} outside [0, 1]"
                );
                assert!(substrate.node_count() > 0, "substrate has no nodes");
                (period, len)
            }
        };
        assert!(len > 0, "churn window must last at least one slot");
        assert!(
            len < period,
            "churn window length {len} must be shorter than the period {period}"
        );
        Self {
            profile,
            node_count: substrate.node_count(),
            link_count: substrate.link_count(),
        }
    }

    /// The profile the schedule was built from.
    pub fn profile(&self) -> ChurnProfile {
        self.profile
    }

    /// The churn events taking effect on slot `t`. Down events fire on
    /// window starts (`t % period == 0`), the matching Up events `len`
    /// slots later; the affected elements rotate with the window index
    /// so successive windows hit different parts of the substrate.
    pub fn events_at(&self, t: Slot) -> Vec<ChurnEvent> {
        match self.profile {
            ChurnProfile::LinkOutages { period, len, count } => {
                let links = |window: Slot| -> Vec<LinkId> {
                    (0..count)
                        .map(|i| {
                            LinkId::from_index((window as usize * count + i) % self.link_count)
                        })
                        .collect()
                };
                if t % period == 0 {
                    links(t / period)
                        .into_iter()
                        .map(ChurnEvent::LinkDown)
                        .collect()
                } else if t % period == len {
                    links(t / period)
                        .into_iter()
                        .map(ChurnEvent::LinkUp)
                        .collect()
                } else {
                    Vec::new()
                }
            }
            ChurnProfile::NodeMaintenance { period, len } => {
                let node = |window: Slot| NodeId::from_index(window as usize % self.node_count);
                if t % period == 0 {
                    vec![ChurnEvent::NodeDown(node(t / period))]
                } else if t % period == len {
                    vec![ChurnEvent::NodeUp(node(t / period))]
                } else {
                    Vec::new()
                }
            }
            ChurnProfile::CapacityDrain {
                period,
                len,
                factor,
            } => {
                if t % period == 0 {
                    (0..self.node_count)
                        .map(|i| ChurnEvent::NodeDrain {
                            node: NodeId::from_index(i),
                            factor,
                        })
                        .collect()
                } else if t % period == len {
                    (0..self.node_count)
                        .map(|i| ChurnEvent::NodeUp(NodeId::from_index(i)))
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Whether slot `t` falls inside a churn window (outage,
    /// maintenance or drain in effect).
    pub fn in_window(&self, t: Slot) -> bool {
        let (period, len) = match self.profile {
            ChurnProfile::LinkOutages { period, len, .. } => (period, len),
            ChurnProfile::NodeMaintenance { period, len } => (period, len),
            ChurnProfile::CapacityDrain { period, len, .. } => (period, len),
        };
        t % period < len
    }
}

/// A slot-event stream with a [`ChurnSchedule`]'s events injected.
///
/// Purely per-slot: the schedule is arithmetic in the slot number, so
/// wrapping an already-skipped inner stream yields the identical suffix
/// (resumed runs re-apply past churn from the engine checkpoint, not
/// from the stream).
#[derive(Debug, Clone)]
pub struct WithChurn<I> {
    inner: I,
    schedule: ChurnSchedule,
}

impl<I: Iterator<Item = SlotEvents>> Iterator for WithChurn<I> {
    type Item = SlotEvents;

    fn next(&mut self) -> Option<SlotEvents> {
        let mut event = self.inner.next()?;
        event.churn.extend(self.schedule.events_at(event.slot));
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<I: ExactSizeIterator<Item = SlotEvents>> ExactSizeIterator for WithChurn<I> {}

/// Injects a churn schedule's events into a slot-event stream.
pub fn with_churn<I>(inner: I, schedule: ChurnSchedule) -> WithChurn<I>
where
    I: Iterator<Item = SlotEvents>,
{
    WithChurn { inner, schedule }
}
