//! Empirical statistics: ECDF, percentiles and bootstrap estimation.
//!
//! The time-aggregation step (§III-A) estimates the α-percentile `P̂_α`
//! of each class's per-slot demand from the request history by
//! bootstrapping \[25\], and checks whether online demand *conforms* to the
//! history (the observed percentile falls inside the 95% bootstrap
//! confidence interval of the estimate).

use rand::Rng;

/// An empirical cumulative distribution function over a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "ECDF needs a non-empty sample");
        assert!(
            sample.iter().all(|x| !x.is_nan()),
            "ECDF sample contains NaN"
        );
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Self { sorted: sample }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: the fraction of observations ≤ `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `alpha`-percentile (`alpha ∈ [0, 100]`) with linear
    /// interpolation between order statistics (type-7, the common
    /// default).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 100]`.
    pub fn percentile(&self, alpha: f64) -> f64 {
        assert!((0.0..=100.0).contains(&alpha), "alpha must be in [0, 100]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let h = (alpha / 100.0) * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }

    /// The underlying sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Result of a bootstrap percentile estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapEstimate {
    /// The point estimate `P̂_α` (mean of bootstrap replicates).
    pub estimate: f64,
    /// Lower bound of the 95% confidence interval.
    pub ci_low: f64,
    /// Upper bound of the 95% confidence interval.
    pub ci_high: f64,
}

impl BootstrapEstimate {
    /// Whether an observed value falls inside the 95% CI (the paper's
    /// demand-conformance test).
    pub fn contains(&self, observed: f64) -> bool {
        observed >= self.ci_low && observed <= self.ci_high
    }
}

/// Bootstrap estimate of the `alpha`-percentile of `sample` with
/// `replicates` resamples (the paper's Eq. 6 estimator; it uses the
/// well-known percentile bootstrap \[25\]).
///
/// # Panics
///
/// Panics if the sample is empty, `replicates == 0`, or `alpha` is
/// outside `[0, 100]`.
pub fn bootstrap_percentile<R: Rng + ?Sized>(
    sample: &[f64],
    alpha: f64,
    replicates: usize,
    rng: &mut R,
) -> BootstrapEstimate {
    assert!(!sample.is_empty(), "bootstrap needs a non-empty sample");
    assert!(replicates > 0, "bootstrap needs at least one replicate");
    let n = sample.len();
    let mut reps = Vec::with_capacity(replicates);
    let mut resample = vec![0.0; n];
    for _ in 0..replicates {
        for slot in resample.iter_mut() {
            *slot = sample[rng.gen_range(0..n)];
        }
        reps.push(Ecdf::new(resample.clone()).percentile(alpha));
    }
    let estimate = reps.iter().sum::<f64>() / reps.len() as f64;
    let reps_ecdf = Ecdf::new(reps);
    BootstrapEstimate {
        estimate,
        ci_low: reps_ecdf.percentile(2.5),
        ci_high: reps_ecdf.percentile(97.5),
    }
}

/// Mean and 95% Student-t confidence half-width of a small sample
/// (used for the paper's 30-execution error bars).
pub fn mean_and_ci(sample: &[f64]) -> (f64, f64) {
    let n = sample.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = sample.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, 0.0);
    }
    let var = sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    // Two-sided 97.5% t quantiles for df = 1..=30, then ≈ 1.96.
    const T975: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    let df = n - 1;
    let t = if df <= 30 { T975[df - 1] } else { 1.96 };
    (mean, t * (var / n as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn ecdf_basic_properties() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(2.0), 0.5);
        assert_eq!(e.cdf(10.0), 1.0);
        assert_eq!(e.percentile(0.0), 1.0);
        assert_eq!(e.percentile(100.0), 4.0);
        assert_eq!(e.percentile(50.0), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let e = Ecdf::new(vec![0.0, 10.0]);
        assert_eq!(e.percentile(25.0), 2.5);
        assert_eq!(e.percentile(80.0), 8.0);
    }

    #[test]
    fn single_observation_percentile() {
        let e = Ecdf::new(vec![7.0]);
        assert_eq!(e.percentile(80.0), 7.0);
    }

    #[test]
    fn bootstrap_percentile_recovers_known_quantile() {
        // Uniform 0..100 sample: P80 ≈ 80.
        let mut rng = SeededRng::new(5);
        let sample: Vec<f64> = (0..2000).map(|i| (i % 100) as f64).collect();
        let est = bootstrap_percentile(&sample, 80.0, 200, &mut rng);
        assert!(
            (est.estimate - 79.2).abs() < 1.5,
            "estimate {}",
            est.estimate
        );
        assert!(est.ci_low <= est.estimate && est.estimate <= est.ci_high);
        assert!(est.contains(est.estimate));
        assert!(!est.contains(1000.0));
    }

    #[test]
    fn bootstrap_is_deterministic_under_seed() {
        let sample: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = bootstrap_percentile(&sample, 80.0, 100, &mut SeededRng::new(1));
        let b = bootstrap_percentile(&sample, 80.0, 100, &mut SeededRng::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn mean_and_ci_behaviour() {
        let (m, ci) = mean_and_ci(&[]);
        assert_eq!((m, ci), (0.0, 0.0));
        let (m, ci) = mean_and_ci(&[5.0]);
        assert_eq!((m, ci), (5.0, 0.0));
        let (m, ci) = mean_and_ci(&[4.0, 6.0]);
        assert_eq!(m, 5.0);
        assert!(ci > 0.0);
        // Wider spread ⇒ wider CI.
        let (_, ci2) = mean_and_ci(&[0.0, 10.0]);
        assert!(ci2 > ci);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ecdf_rejects_empty() {
        Ecdf::new(vec![]);
    }
}
