//! Property-based tests for workload generation and statistics.

use proptest::prelude::*;
use vne_workload::dist::{Exponential, Normal, Poisson, Zipf};
use vne_workload::estimator::{DemandEstimator, ExactEstimator, SketchEstimator};
use vne_workload::history::ClassDemandSeries;
use vne_workload::rng::SeededRng;
use vne_workload::stats::{bootstrap_percentile, Ecdf};

use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::request::{Request, SlotEvents};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ECDF percentiles are monotone in alpha and bounded by the sample.
    #[test]
    fn percentiles_are_monotone(
        mut sample in proptest::collection::vec(-1e3f64..1e3, 1..200),
        a in 0.0f64..100.0,
        b in 0.0f64..100.0,
    ) {
        let e = Ecdf::new(sample.clone());
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(e.percentile(lo) <= e.percentile(hi) + 1e-12);
        sample.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert!(e.percentile(0.0) >= sample[0] - 1e-12);
        prop_assert!(e.percentile(100.0) <= sample[sample.len() - 1] + 1e-12);
    }

    /// The ECDF is a valid CDF: nondecreasing, 0 before the min, 1 at
    /// and after the max.
    #[test]
    fn ecdf_is_a_cdf(sample in proptest::collection::vec(-50.0f64..50.0, 1..100)) {
        let e = Ecdf::new(sample.clone());
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.cdf(lo - 1.0), 0.0);
        prop_assert_eq!(e.cdf(hi), 1.0);
        prop_assert!(e.cdf(0.0) <= e.cdf(1.0) + 1e-12);
    }

    /// Bootstrap CIs contain the point estimate and have sane ordering.
    #[test]
    fn bootstrap_ci_ordering(
        sample in proptest::collection::vec(0.0f64..100.0, 2..100),
        alpha in 1.0f64..99.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SeededRng::new(seed);
        let est = bootstrap_percentile(&sample, alpha, 50, &mut rng);
        prop_assert!(est.ci_low <= est.ci_high);
        prop_assert!(est.estimate >= est.ci_low - 1e-9);
        prop_assert!(est.estimate <= est.ci_high + 1e-9);
        // Bounded by the sample range.
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est.estimate >= lo - 1e-9 && est.estimate <= hi + 1e-9);
    }

    /// Zipf weights are a probability distribution and rank-decreasing.
    #[test]
    fn zipf_is_normalized_and_decreasing(n in 1usize..50, alpha in 0.0f64..3.0) {
        let z = Zipf::new(n, alpha);
        let total: f64 = (0..n).map(|i| z.weight(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 1..n {
            prop_assert!(z.weight(i) <= z.weight(i - 1) + 1e-12);
        }
    }

    /// Samplers produce values in their support.
    #[test]
    fn sampler_supports(seed in any::<u64>()) {
        let mut rng = SeededRng::new(seed);
        let e = Exponential::new(5.0);
        let p = Poisson::new(4.0);
        let n = Normal::new(0.0, 1.0);
        for _ in 0..100 {
            prop_assert!(e.sample(&mut rng) >= 0.0);
            let _ = p.sample(&mut rng); // u64: non-negative by type
            prop_assert!(n.sample(&mut rng).is_finite());
            prop_assert!(n.sample_truncated(&mut rng, -0.5) >= -0.5);
        }
    }

    /// Class demand series conserve total demand-slots: summing every
    /// class series equals Σ demand·active-slots (clipped to the window).
    #[test]
    fn class_series_conserve_demand(
        raw in proptest::collection::vec(
            (0u8..30, 1u8..10, 0u8..4, 0u8..2, 0.5f64..10.0),
            0..60,
        )
    ) {
        let slots = 40u32;
        let requests: Vec<Request> = raw
            .iter()
            .enumerate()
            .map(|(i, &(t, dur, node, app, demand))| Request {
                id: RequestId(i as u64),
                arrival: u32::from(t),
                duration: u32::from(dur),
                ingress: NodeId(u32::from(node)),
                app: AppId(u32::from(app)),
                demand,
            })
            .collect();
        let series = ClassDemandSeries::from_requests(&requests, slots);
        let total_series: f64 = series
            .classes()
            .map(|c| series.series(c).unwrap().iter().sum::<f64>())
            .sum();
        let total_expected: f64 = requests
            .iter()
            .map(|r| {
                let end = r.departure().min(slots);
                let start = r.arrival.min(slots);
                f64::from(end.saturating_sub(start)) * r.demand
            })
            .sum();
        prop_assert!((total_series - total_expected).abs() < 1e-6);
    }
}

/// A realistic generated trace (MMPP, Zipf popularity) plus its
/// slot-event bucketing, for the estimator parity properties.
fn generated_events(seed: u64, slots: u32) -> (Vec<Request>, Vec<SlotEvents>) {
    let substrate = vne_topology::zoo::citta_studi().unwrap();
    let mut rng = SeededRng::new(seed);
    let apps =
        vne_workload::appgen::paper_mix(&vne_workload::appgen::AppGenConfig::default(), &mut rng);
    let config = vne_workload::tracegen::TraceConfig {
        slots,
        ..vne_workload::tracegen::TraceConfig::default()
    };
    let events: Vec<SlotEvents> =
        vne_workload::tracegen::stream(&substrate, &apps, &config, rng).collect();
    let trace: Vec<Request> = events.iter().flat_map(|ev| ev.arrivals.clone()).collect();
    (trace, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The exact estimator folded slot-by-slot is byte-identical to the
    /// batch `ClassDemandSeries::from_requests` path: the same dense
    /// series, and the same finalized `P̂_α` bit for bit under the same
    /// bootstrap RNG.
    #[test]
    fn exact_estimator_fold_is_byte_identical_to_batch(
        seed in 1u64..500,
        slots in 80u32..220,
    ) {
        let (trace, events) = generated_events(seed, slots);
        let mut estimator = ExactEstimator::new(
            slots,
            vne_workload::estimator::AggregationConfig {
                alpha: 80.0,
                bootstrap_replicates: 10,
            },
        );
        estimator.observe_all(events);
        prop_assert_eq!(estimator.slots_observed(), slots);
        let batch = ClassDemandSeries::from_requests(&trace, slots);
        prop_assert_eq!(estimator.series(), &batch);
        let folded = estimator.finalize(&mut SeededRng::new(seed ^ 0xF00D));
        let direct = batch.expected_demands(80.0, 10, &mut SeededRng::new(seed ^ 0xF00D));
        prop_assert_eq!(folded.len(), direct.len());
        for (class, value) in &folded {
            prop_assert_eq!(value.to_bits(), direct[class].to_bits());
        }
    }

    /// The sketch estimator lands inside a tolerance band around the
    /// exact per-class `P̂_α`: between the exact P65 and P95 (widened by
    /// a small absolute/relative slack), bounded by the class's peak,
    /// and exactly absent for classes the history never touches.
    #[test]
    fn sketch_estimator_tracks_exact_percentiles(
        seed in 1u64..500,
        slots in 120u32..260,
    ) {
        let (trace, events) = generated_events(seed, slots);
        let mut sketch = SketchEstimator::new(80.0);
        sketch.observe_all(events);
        let estimates = sketch.finalize(&mut SeededRng::new(1));
        let series = ClassDemandSeries::from_requests(&trace, slots);

        // No invented classes: every estimate belongs to an observed
        // class (and unobserved classes are absent — the "empty class"
        // case).
        for class in estimates.keys() {
            prop_assert!(series.series(*class).is_some());
        }
        let lo_band = series.percentile_demands(65.0);
        let hi_band = series.percentile_demands(95.0);
        for class in series.classes() {
            let est = estimates.get(&class).copied().unwrap_or(0.0);
            let max = series
                .series(class)
                .unwrap()
                .iter()
                .fold(0.0f64, |a, &b| a.max(b));
            prop_assert!(est <= max + 1e-9, "class {:?}: {} above peak {}", class, est, max);
            let lo = lo_band[&class];
            let hi = hi_band[&class];
            let slack = 0.75 + 0.1 * hi;
            prop_assert!(
                est >= lo - slack && est <= hi + slack,
                "class {:?}: sketch {} outside [{} - {}, {} + {}]",
                class, est, lo, slack, hi, slack
            );
        }
    }
}

/// The adversary-suite world: Citta Studi plus the paper application
/// mix (a fixed draw — the properties quantify over stream seeds).
fn adversary_world() -> (
    vne_model::substrate::SubstrateNetwork,
    vne_model::app::AppSet,
) {
    let substrate = vne_topology::zoo::citta_studi().unwrap();
    let mut rng = SeededRng::new(0xA11CE);
    let apps =
        vne_workload::appgen::paper_mix(&vne_workload::appgen::AppGenConfig::default(), &mut rng);
    (substrate, apps)
}

/// One of the three standalone adversarial generators, seeded.
fn adversary_stream(
    profile_idx: usize,
    seed: u64,
    slots: u32,
    substrate: &vne_model::substrate::SubstrateNetwork,
    apps: &vne_model::app::AppSet,
) -> vne_workload::adversary::AdversaryStream {
    use vne_workload::adversary::{
        lifetime_cliff, plan_adversarial, revenue_burst, LifetimeCliffConfig,
        PlanAdversarialConfig, RevenueBurstConfig,
    };
    match profile_idx {
        0 => revenue_burst(
            substrate,
            apps,
            &RevenueBurstConfig {
                slots,
                seed,
                burst_period: 20,
                burst_len: 5,
                ..RevenueBurstConfig::default()
            },
        ),
        1 => lifetime_cliff(
            substrate,
            apps,
            &LifetimeCliffConfig {
                slots,
                seed,
                cliff: 15,
                ..LifetimeCliffConfig::default()
            },
        ),
        _ => {
            // A synthetic plan-share summary: a handful of planned
            // classes, everything else implicitly zero.
            let plan: std::collections::BTreeMap<vne_model::ids::ClassId, f64> = substrate
                .edge_nodes()
                .into_iter()
                .take(5)
                .enumerate()
                .map(|(i, v)| {
                    (
                        vne_model::ids::ClassId::new(AppId::from_index(i % apps.len()), v),
                        (i + 1) as f64,
                    )
                })
                .collect();
            plan_adversarial(
                substrate,
                apps,
                &plan,
                &PlanAdversarialConfig {
                    slots,
                    seed,
                    ..PlanAdversarialConfig::default()
                },
            )
        }
    }
}

/// One of the three builtin churn profiles, with window < period.
fn churn_profile(idx: usize) -> vne_workload::adversary::ChurnProfile {
    use vne_workload::adversary::ChurnProfile;
    [
        ChurnProfile::LinkOutages {
            period: 12,
            len: 5,
            count: 3,
        },
        ChurnProfile::NodeMaintenance { period: 9, len: 4 },
        ChurnProfile::CapacityDrain {
            period: 15,
            len: 6,
            factor: 0.25,
        },
    ][idx]
}

proptest! {
    // Default config: `PROPTEST_CASES` scales this block (the nightly
    // CI property job runs it at 1024 cases).

    /// Generator well-formedness: every adversarial stream yields
    /// exactly `slots` contiguous slots from 0, arrivals stamped with
    /// their slot, dense strictly-ascending request ids, positive
    /// demands, durations ≥ 1, edge-node ingresses and catalogued apps.
    #[test]
    fn adversary_streams_are_well_formed(
        profile_idx in 0usize..3,
        seed in any::<u64>(),
        slots in 30u32..120,
    ) {
        let (substrate, apps) = adversary_world();
        let edge: std::collections::BTreeSet<NodeId> =
            substrate.edge_nodes().into_iter().collect();
        let events: Vec<SlotEvents> =
            adversary_stream(profile_idx, seed, slots, &substrate, &apps).collect();
        prop_assert_eq!(events.len(), slots as usize);
        let mut next_id = 0u64;
        for (i, ev) in events.iter().enumerate() {
            prop_assert_eq!(ev.slot, i as u32, "slots must be contiguous from 0");
            prop_assert!(ev.churn.is_empty(), "bare generators carry no churn");
            for r in &ev.arrivals {
                prop_assert_eq!(r.arrival, ev.slot, "arrival stamped with its slot");
                prop_assert_eq!(r.id.0, next_id, "ids must be dense and ascending");
                next_id += 1;
                prop_assert!(r.demand > 0.0);
                prop_assert!(r.duration >= 1);
                prop_assert!(edge.contains(&r.ingress), "ingress {:?} not an edge node", r.ingress);
                prop_assert!(r.app.index() < apps.len());
            }
        }
        prop_assert!(next_id > 0, "the stream must produce arrivals");
    }

    /// Resume determinism of the generators: a stream restarted via
    /// `skip_to(cut)` is byte-identical to the suffix of a stream
    /// consumed from slot 0.
    #[test]
    fn adversary_skip_to_yields_identical_suffix(
        profile_idx in 0usize..3,
        seed in any::<u64>(),
        slots in 30u32..120,
        frac in 0.0f64..1.0,
    ) {
        let (substrate, apps) = adversary_world();
        let full: Vec<SlotEvents> =
            adversary_stream(profile_idx, seed, slots, &substrate, &apps).collect();
        let cut = ((frac * f64::from(slots)) as u32).min(slots);
        let mut skipped = adversary_stream(profile_idx, seed, slots, &substrate, &apps);
        skipped.skip_to(cut);
        let suffix: Vec<SlotEvents> = skipped.collect();
        prop_assert_eq!(&suffix[..], &full[cut as usize..]);
    }

    /// Modulators and churn wrappers are stateless per-slot maps: they
    /// commute with `skip_to` on the stream below them (wrapping an
    /// already-skipped stream equals the suffix of wrapping the full
    /// stream), modulated arrivals are an ordered subset of the inner
    /// ones, and churn events always reference live substrate elements
    /// (folding them through a pristine [`ChurnState`] never panics).
    #[test]
    fn wrapped_streams_commute_with_skip_to(
        mod_idx in 0usize..2,
        churn_idx in 0usize..3,
        seed in any::<u64>(),
        slots in 30u32..100,
        frac in 0.0f64..1.0,
    ) {
        use vne_workload::adversary::{modulate, with_churn, ChurnSchedule, Modulation};
        let (substrate, apps) = adversary_world();
        let modulation = [
            Modulation::FlashCrowd { period: 20, len: 4, base_keep: 0.3 },
            Modulation::Diurnal { period: 25, low: 0.1, high: 0.9 },
        ][mod_idx];
        let schedule = ChurnSchedule::new(churn_profile(churn_idx), &substrate);
        let wrap = |inner: vne_workload::adversary::AdversaryStream| {
            with_churn(modulate(inner, modulation, seed ^ 0x5A17), schedule.clone())
        };

        let full: Vec<SlotEvents> =
            wrap(adversary_stream(0, seed, slots, &substrate, &apps)).collect();
        let cut = ((frac * f64::from(slots)) as u32).min(slots);
        let mut skipped = adversary_stream(0, seed, slots, &substrate, &apps);
        skipped.skip_to(cut);
        let suffix: Vec<SlotEvents> = wrap(skipped).collect();
        prop_assert_eq!(&suffix[..], &full[cut as usize..]);

        // Modulated arrivals ⊆ inner arrivals, order preserved; churn
        // events reference live elements on every slot.
        let inner: Vec<SlotEvents> =
            adversary_stream(0, seed, slots, &substrate, &apps).collect();
        let mut churn_state = vne_model::churn::ChurnState::pristine(&substrate);
        for (wrapped, raw) in full.iter().zip(&inner) {
            let inner_ids: Vec<u64> = raw.arrivals.iter().map(|r| r.id.0).collect();
            let mut walk = inner_ids.iter();
            for r in &wrapped.arrivals {
                prop_assert!(
                    walk.any(|&id| id == r.id.0),
                    "modulated id {} not an ordered subset of the inner stream",
                    r.id.0
                );
            }
            prop_assert_eq!(&wrapped.churn, &schedule.events_at(wrapped.slot));
            for ev in &wrapped.churn {
                churn_state.apply(ev); // panics on out-of-range elements
            }
        }
    }

    /// Churn schedules are arithmetic in the slot number: events fire
    /// exactly on window boundaries, reference in-range elements, and
    /// `in_window` matches the boundary arithmetic.
    #[test]
    fn churn_schedules_are_well_formed(
        churn_idx in 0usize..3,
        slots in 40u32..200,
    ) {
        use vne_model::churn::ChurnEvent;
        use vne_workload::adversary::{ChurnProfile, ChurnSchedule};
        let (substrate, _) = adversary_world();
        let profile = churn_profile(churn_idx);
        let (period, len) = match profile {
            ChurnProfile::LinkOutages { period, len, .. } => (period, len),
            ChurnProfile::NodeMaintenance { period, len } => (period, len),
            ChurnProfile::CapacityDrain { period, len, .. } => (period, len),
        };
        let schedule = ChurnSchedule::new(profile, &substrate);
        for t in 0..slots {
            let events = schedule.events_at(t);
            let boundary = t % period == 0 || t % period == len;
            prop_assert_eq!(!events.is_empty(), boundary, "events only on boundaries (t={})", t);
            prop_assert_eq!(schedule.in_window(t), t % period < len);
            for ev in &events {
                match *ev {
                    ChurnEvent::NodeDown(n) | ChurnEvent::NodeUp(n) => {
                        prop_assert!(n.index() < substrate.node_count());
                    }
                    ChurnEvent::LinkDown(l) | ChurnEvent::LinkUp(l) => {
                        prop_assert!(l.index() < substrate.link_count());
                    }
                    ChurnEvent::NodeDrain { node, factor } => {
                        prop_assert!(node.index() < substrate.node_count());
                        prop_assert!((0.0..=1.0).contains(&factor));
                    }
                    ChurnEvent::LinkDrain { link, factor } => {
                        prop_assert!(link.index() < substrate.link_count());
                        prop_assert!((0.0..=1.0).contains(&factor));
                    }
                }
            }
        }
    }

    /// Resume determinism for the estimator fold: checkpoint either
    /// builtin estimator at a random slot mid-history, restore into a
    /// fresh instance, finish both — the finalized per-class demands
    /// are byte-identical, and snapshot → restore → snapshot is
    /// blob-equal.
    #[test]
    fn estimator_resume_is_byte_identical(
        seed in 1u64..500,
        slots in 80u32..160,
        frac in 0.1f64..0.9,
        use_sketch in any::<bool>(),
    ) {
        let (_, events) = generated_events(seed, slots);
        let cut = ((frac * f64::from(slots)) as usize).clamp(1, slots as usize - 1);
        let config = vne_workload::estimator::AggregationConfig {
            alpha: 80.0,
            bootstrap_replicates: 10,
        };
        let make = || -> Box<dyn DemandEstimator> {
            if use_sketch {
                Box::new(SketchEstimator::new(80.0))
            } else {
                Box::new(ExactEstimator::new(slots, config))
            }
        };
        let mut original = make();
        for ev in &events[..cut] {
            original.observe_slot(ev);
        }
        let blob = original.snapshot_state().expect("builtin estimators snapshot");
        let mut resumed = make();
        resumed.restore_state(&blob).unwrap();
        prop_assert_eq!(resumed.snapshot_state().unwrap(), blob);
        for ev in &events[cut..] {
            original.observe_slot(ev);
            resumed.observe_slot(ev);
        }
        prop_assert_eq!(original.slots_observed(), slots);
        prop_assert_eq!(resumed.slots_observed(), slots);
        let a = original.finalize(&mut SeededRng::new(seed ^ 0xBEEF));
        let b = resumed.finalize(&mut SeededRng::new(seed ^ 0xBEEF));
        prop_assert_eq!(a.len(), b.len());
        for (class, value) in &a {
            prop_assert_eq!(value.to_bits(), b[class].to_bits());
        }
    }
}
