//! Property-based tests for the model crate's core invariants.

use proptest::prelude::*;
use vne_model::embedding::{Embedding, Footprint};
use vne_model::ids::{LinkId, NodeId};
use vne_model::load::LoadLedger;
use vne_model::policy::PlacementPolicy;
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_model::vnet::{VirtualNetwork, VnfKind};

/// A random connected substrate: a path backbone plus random extra links.
fn arb_substrate() -> impl Strategy<Value = SubstrateNetwork> {
    (
        3usize..12,
        proptest::collection::vec((0usize..12, 0usize..12), 0..10),
    )
        .prop_map(|(n, extra)| {
            let mut s = SubstrateNetwork::new("prop");
            let tiers = [Tier::Edge, Tier::Transport, Tier::Core];
            for i in 0..n {
                s.add_node(
                    format!("n{i}"),
                    tiers[i % 3],
                    100.0 + i as f64,
                    1.0 + i as f64,
                )
                .unwrap();
            }
            for i in 1..n {
                s.add_link(NodeId::from_index(i - 1), NodeId::from_index(i), 50.0, 1.0)
                    .unwrap();
            }
            for (a, b) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    let (a, b) = (NodeId::from_index(a), NodeId::from_index(b));
                    if s.link_between(a, b).is_none() {
                        s.add_link(a, b, 50.0, 1.0).unwrap();
                    }
                }
            }
            s
        })
}

/// A random tree virtual network with parent indices < child index.
fn arb_vnet() -> impl Strategy<Value = VirtualNetwork> {
    proptest::collection::vec((any::<u16>(), 1.0f64..100.0, 1.0f64..100.0), 1..8).prop_map(
        |specs| {
            let mut vn = VirtualNetwork::with_root();
            for (pick, beta, link_beta) in specs {
                let parent = vne_model::ids::VnodeId::from_index(pick as usize % vn.node_count());
                vn.add_vnf(parent, VnfKind::Standard, beta, link_beta)
                    .unwrap();
            }
            vn
        },
    )
}

proptest! {
    #[test]
    fn random_trees_always_validate(vn in arb_vnet()) {
        prop_assert!(vn.validate().is_ok());
        prop_assert_eq!(vn.bfs_order().len(), vn.node_count());
        prop_assert_eq!(vn.link_count(), vn.node_count() - 1);
    }

    #[test]
    fn substrates_are_connected_with_valid_adjacency(s in arb_substrate()) {
        prop_assert!(s.is_connected());
        // Handshake lemma: sum of degrees = 2 · |links|.
        let total_degree: usize = s.node_ids().map(|n| s.degree(n)).sum();
        prop_assert_eq!(total_degree, 2 * s.link_count());
    }

    #[test]
    fn shortest_paths_are_consistent(s in arb_substrate()) {
        let sp = s.shortest_paths(NodeId(0), |l| Some(s.link(l).cost));
        for target in s.node_ids() {
            prop_assert!(sp.reachable(target));
            let path = sp.path_to(target).unwrap();
            // Walking the path must reach the target with the claimed cost.
            let mut cur = NodeId(0);
            let mut cost = 0.0;
            for l in &path {
                cost += s.link(*l).cost;
                cur = s.link(*l).other(cur);
            }
            prop_assert_eq!(cur, target);
            prop_assert!((cost - sp.distance(target)).abs() < 1e-9);
        }
    }

    #[test]
    fn footprint_consolidation_preserves_totals(
        raw in proptest::collection::vec((0u32..6, 0.0f64..10.0), 0..20)
    ) {
        let nodes: Vec<(NodeId, f64)> = raw.iter().map(|&(k, x)| (NodeId(k), x)).collect();
        let total: f64 = nodes.iter().map(|&(_, x)| x).sum();
        let fp = Footprint::from_parts(nodes, vec![]);
        let consolidated: f64 = fp.nodes().iter().map(|&(_, x)| x).sum();
        prop_assert!((total - consolidated).abs() < 1e-9);
        // Sorted and unique keys.
        prop_assert!(fp.nodes().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn ledger_apply_remove_is_identity(
        loads in proptest::collection::vec((0u32..4, 0.1f64..5.0), 1..10),
        demand in 0.1f64..3.0,
    ) {
        let mut s = SubstrateNetwork::new("l");
        for i in 0..4 {
            s.add_node(format!("n{i}"), Tier::Edge, 1e6, 1.0).unwrap();
        }
        let fp = Footprint::from_parts(
            loads.iter().map(|&(k, x)| (NodeId(k), x)).collect(),
            vec![],
        );
        let mut ledger = LoadLedger::new(&s);
        let before = ledger.clone();
        ledger.apply(&fp, demand);
        prop_assert!(ledger.check_invariants());
        ledger.remove(&fp, demand);
        for n in s.node_ids() {
            prop_assert!((ledger.node_load(n) - before.node_load(n)).abs() < 1e-9);
        }
    }

    #[test]
    fn collocated_embedding_on_path_substrate_validates(
        vn in arb_vnet(),
        host_pick in any::<u16>(),
    ) {
        // Path substrate with enough nodes; embed everything on one host,
        // root at node 0, with the path from root to host.
        let mut s = SubstrateNetwork::new("path");
        for i in 0..6 {
            s.add_node(format!("n{i}"), Tier::Edge, 1e6, 1.0).unwrap();
        }
        for i in 1..6 {
            s.add_link(NodeId::from_index(i - 1), NodeId::from_index(i), 1e6, 1.0).unwrap();
        }
        let host = NodeId::from_index(host_pick as usize % 6);
        let sp = s.shortest_paths(NodeId(0), |_| Some(1.0));
        let root_path = sp.path_to(host).unwrap();

        let mut node_map = vec![host; vn.node_count()];
        node_map[0] = NodeId(0);
        let mut link_paths = vec![Vec::<LinkId>::new(); vn.link_count()];
        for (e, vl) in vn.vlinks() {
            if vl.from == VirtualNetwork::ROOT {
                link_paths[e.index()] = root_path.clone();
            }
        }
        let emb = Embedding::new(node_map, link_paths);
        prop_assert!(emb.validate(&vn, &s, &PlacementPolicy::default()).is_ok());
        prop_assert!(emb.is_collocated());
    }
}
