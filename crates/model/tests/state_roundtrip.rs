//! Snapshot codec round-trip battery for the model crate.
//!
//! Every `StateEncode` impl in `vne-model` must round-trip through its
//! `StateDecode` twin byte-exactly — this is the pairing the `vne-audit`
//! D5 rule (`snapshot-pairing`) checks: each encodable type is named in
//! a round-trip test here.

use vne_model::churn::{ChurnEvent, ChurnState};
use vne_model::embedding::{Embedding, Footprint};
use vne_model::ids::{AppId, ClassId, LinkId, NodeId, RequestId};
use vne_model::prelude::Decision;
use vne_model::request::{Request, SlotEvents};
use vne_model::state::{StateDecode, StateEncode, StateReader, StateWriter};
use vne_model::substrate::{SubstrateNetwork, Tier};

/// Encodes `value`, decodes it back, and checks the blob is fully
/// consumed and the value unchanged.
fn roundtrip<T>(value: &T) -> T
where
    T: StateEncode + StateDecode + PartialEq + std::fmt::Debug,
{
    let mut w = StateWriter::new();
    w.write(value);
    let blob = w.finish();
    let mut r = StateReader::new(&blob);
    let decoded: T = r.read().expect("decode");
    r.finish().expect("no trailing bytes");
    assert_eq!(&decoded, value);
    decoded
}

fn small_substrate() -> SubstrateNetwork {
    let mut s = SubstrateNetwork::new("rt");
    for (i, tier) in [Tier::Edge, Tier::Transport, Tier::Core].iter().enumerate() {
        s.add_node(format!("n{i}"), *tier, 100.0 + i as f64, 1.0)
            .unwrap();
    }
    s.add_link(NodeId::from_index(0), NodeId::from_index(1), 50.0, 1.0)
        .unwrap();
    s.add_link(NodeId::from_index(1), NodeId::from_index(2), 25.0, 2.0)
        .unwrap();
    s
}

fn sample_request(id: u64) -> Request {
    Request {
        id: RequestId::from_index(id as usize),
        arrival: 3,
        duration: 7,
        ingress: NodeId::from_index(1),
        app: AppId::from_index(2),
        demand: 1.5,
    }
}

#[test]
fn ids_and_class_roundtrip() {
    roundtrip(&NodeId::from_index(5));
    roundtrip(&LinkId::from_index(9));
    roundtrip(&AppId::from_index(3));
    roundtrip(&RequestId::from_index(123456));
    roundtrip(&ClassId::new(AppId::from_index(1), NodeId::from_index(4)));
}

#[test]
fn decision_roundtrip() {
    for d in [Decision::Accept, Decision::Reject, Decision::Shed] {
        roundtrip(&d);
    }
}

#[test]
fn request_roundtrip() {
    roundtrip(&sample_request(42));
}

#[test]
fn footprint_roundtrip() {
    let fp = Footprint::from_parts(
        vec![(NodeId::from_index(0), 0.25), (NodeId::from_index(2), 0.75)],
        vec![(LinkId::from_index(0), 1.0), (LinkId::from_index(1), 0.5)],
    );
    roundtrip(&fp);
    roundtrip(&Footprint::from_parts(Vec::new(), Vec::new()));
}

#[test]
fn embedding_roundtrip() {
    let emb = Embedding::new(
        vec![NodeId::from_index(0), NodeId::from_index(2)],
        vec![vec![LinkId::from_index(0), LinkId::from_index(1)], vec![]],
    );
    roundtrip(&emb);
}

#[test]
fn churn_event_roundtrip() {
    let events = [
        ChurnEvent::NodeDown(NodeId::from_index(1)),
        ChurnEvent::NodeUp(NodeId::from_index(2)),
        ChurnEvent::LinkDown(LinkId::from_index(0)),
        ChurnEvent::LinkUp(LinkId::from_index(1)),
        ChurnEvent::NodeDrain {
            node: NodeId::from_index(0),
            factor: 0.5,
        },
        ChurnEvent::LinkDrain {
            link: LinkId::from_index(1),
            factor: 0.25,
        },
    ];
    for e in events {
        roundtrip(&e);
    }
}

#[test]
fn churn_state_roundtrip() {
    let s = small_substrate();
    let mut churn = ChurnState::pristine(&s);
    churn.apply(&ChurnEvent::NodeDrain {
        node: NodeId::from_index(1),
        factor: 0.5,
    });
    churn.apply(&ChurnEvent::LinkDown(LinkId::from_index(0)));
    let decoded = roundtrip(&churn);
    // The folded factors survive, so effective capacities re-derive
    // identically after a resume.
    assert_eq!(decoded.effective(&s), churn.effective(&s));
}

#[test]
fn slot_events_roundtrip() {
    let ev = SlotEvents {
        slot: 11,
        arrivals: vec![sample_request(7), sample_request(8)],
        churn: vec![ChurnEvent::NodeUp(NodeId::from_index(0))],
    };
    roundtrip(&ev);
    roundtrip(&SlotEvents::empty(0));
}

#[test]
fn containers_roundtrip() {
    roundtrip(&vec![1u32, 2, 3]);
    roundtrip(&Some("text".to_string()));
    roundtrip(&Option::<u64>::None);
    let map: std::collections::BTreeMap<u32, String> =
        [(1, "a".to_string()), (2, "b".to_string())].into();
    roundtrip(&map);
    roundtrip(&(7u32, 2.5f64));
}
