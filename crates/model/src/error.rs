//! Error types for model construction and validation.

use std::error::Error;
use std::fmt;

use crate::ids::{LinkId, NodeId, VlinkId, VnodeId};

/// Errors produced while constructing or validating model entities.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A link refers to a node id that does not exist in the substrate.
    UnknownNode(NodeId),
    /// A reference to a link id that does not exist in the substrate.
    UnknownLink(LinkId),
    /// A self-loop link was requested (`a == b`).
    SelfLoop(NodeId),
    /// A duplicate link between the same node pair was requested.
    DuplicateLink(NodeId, NodeId),
    /// A capacity or size value is negative or non-finite.
    InvalidQuantity {
        /// What the quantity describes (e.g. `"node capacity"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The virtual network is not a tree rooted at its root node.
    NotATree,
    /// A virtual network has no nodes.
    EmptyVirtualNetwork,
    /// The root of a virtual network must have size zero (`β_θ = 0`).
    NonZeroRootSize(f64),
    /// A virtual link endpoint does not exist.
    UnknownVnode(VnodeId),
    /// A reference to a virtual link that does not exist.
    UnknownVlink(VlinkId),
    /// An embedding maps a virtual element onto a forbidden substrate element
    /// (infinite inefficiency coefficient).
    ForbiddenPlacement {
        /// The virtual node that cannot be placed.
        vnode: VnodeId,
        /// The substrate node it was mapped to.
        node: NodeId,
    },
    /// An embedding's path for a virtual link is not a contiguous substrate
    /// path between the mapped endpoints.
    BrokenPath(VlinkId),
    /// An embedding is missing a mapping for a virtual element.
    IncompleteEmbedding,
    /// The substrate graph is not connected.
    DisconnectedSubstrate,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownNode(n) => write!(f, "unknown substrate node {n}"),
            ModelError::UnknownLink(l) => write!(f, "unknown substrate link {l}"),
            ModelError::SelfLoop(n) => write!(f, "self-loop link at node {n}"),
            ModelError::DuplicateLink(a, b) => {
                write!(f, "duplicate link between {a} and {b}")
            }
            ModelError::InvalidQuantity { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            ModelError::NotATree => write!(f, "virtual network is not a tree rooted at its root"),
            ModelError::EmptyVirtualNetwork => write!(f, "virtual network has no nodes"),
            ModelError::NonZeroRootSize(b) => {
                write!(f, "virtual network root must have size 0, got {b}")
            }
            ModelError::UnknownVnode(v) => write!(f, "unknown virtual node {v}"),
            ModelError::UnknownVlink(e) => write!(f, "unknown virtual link {e}"),
            ModelError::ForbiddenPlacement { vnode, node } => {
                write!(
                    f,
                    "virtual node {vnode} may not be placed on substrate node {node}"
                )
            }
            ModelError::BrokenPath(e) => {
                write!(f, "embedding path for virtual link {e} is not contiguous")
            }
            ModelError::IncompleteEmbedding => write!(f, "embedding does not map every element"),
            ModelError::DisconnectedSubstrate => write!(f, "substrate graph is not connected"),
        }
    }
}

impl Error for ModelError {}

/// Convenience result alias for model operations.
pub type ModelResult<T> = Result<T, ModelError>;

/// Validates that a scalar quantity is finite and non-negative.
pub(crate) fn check_quantity(what: &'static str, value: f64) -> ModelResult<f64> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(ModelError::InvalidQuantity { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = ModelError::SelfLoop(NodeId(1));
        let msg = e.to_string();
        assert!(msg.starts_with("self-loop"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn check_quantity_accepts_zero_and_positive() {
        assert_eq!(check_quantity("x", 0.0), Ok(0.0));
        assert_eq!(check_quantity("x", 1.5), Ok(1.5));
    }

    #[test]
    fn check_quantity_rejects_negative_nan_inf() {
        assert!(check_quantity("x", -1.0).is_err());
        assert!(check_quantity("x", f64::NAN).is_err());
        assert!(check_quantity("x", f64::INFINITY).is_err());
    }

    #[test]
    fn errors_are_error_trait_objects() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
