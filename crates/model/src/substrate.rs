//! The physical substrate network: datacenters (nodes) and links.
//!
//! The substrate is an undirected graph. Every element (node or link)
//! carries a capacity `cap(s)` and a per-capacity-unit cost `cost(s)`
//! (Table I of the paper). Nodes additionally belong to a [`Tier`] of the
//! mobile access network hierarchy (edge / transport / core) and may be
//! flagged as GPU datacenters for the GPU placement scenario (Fig. 10).

use serde::{Deserialize, Serialize};

use crate::error::{check_quantity, ModelError, ModelResult};
use crate::ids::{ElementId, LinkId, NodeId};

/// The tier of a datacenter in the mobile access network architecture.
///
/// The paper uses three tiers with a capacity ratio of 3 between successive
/// tiers and edge costs far above core costs (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Edge datacenters: small, close to users, expensive per CU.
    Edge,
    /// Transport (aggregation) datacenters.
    Transport,
    /// Core datacenters: large and cheap per CU.
    Core,
}

impl Tier {
    /// All tiers, ordered from the edge inwards.
    pub const ALL: [Tier; 3] = [Tier::Edge, Tier::Transport, Tier::Core];

    /// A short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Edge => "edge",
            Tier::Transport => "transport",
            Tier::Core => "core",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A substrate node (datacenter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubstrateNode {
    /// Human-readable name (e.g. a city for Topology-Zoo-style networks).
    pub name: String,
    /// The node's tier.
    pub tier: Tier,
    /// Compute capacity in capacity units (CU).
    pub capacity: f64,
    /// Cost per CU consumed per time slot.
    pub cost: f64,
    /// Whether this datacenter provides GPU acceleration (Fig. 10 scenario).
    pub gpu: bool,
}

/// A substrate link between two datacenters (undirected).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubstrateLink {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Bandwidth capacity in CU.
    pub capacity: f64,
    /// Cost per CU consumed per time slot.
    pub cost: f64,
}

impl SubstrateLink {
    /// Given one endpoint of the link, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("node {from} is not an endpoint of this link")
        }
    }

    /// Whether `n` is one of this link's endpoints.
    pub fn touches(&self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }
}

/// The substrate (physical) network `S`.
///
/// # Examples
///
/// ```
/// use vne_model::substrate::{SubstrateNetwork, Tier};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut s = SubstrateNetwork::new("toy");
/// let a = s.add_node("A", Tier::Edge, 100.0, 50.0)?;
/// let b = s.add_node("B", Tier::Core, 900.0, 1.0)?;
/// let l = s.add_link(a, b, 300.0, 1.0)?;
/// assert_eq!(s.node_count(), 2);
/// assert_eq!(s.link(l).other(a), b);
/// assert!(s.is_connected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubstrateNetwork {
    name: String,
    nodes: Vec<SubstrateNode>,
    links: Vec<SubstrateLink>,
    /// Adjacency: for each node, the incident `(neighbor, link)` pairs.
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl SubstrateNetwork {
    /// Creates an empty substrate network with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// The network's name (e.g. `"Iris"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a datacenter and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `capacity` or `cost` is
    /// negative or non-finite.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        tier: Tier,
        capacity: f64,
        cost: f64,
    ) -> ModelResult<NodeId> {
        check_quantity("node capacity", capacity)?;
        check_quantity("node cost", cost)?;
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(SubstrateNode {
            name: name.into(),
            tier,
            capacity,
            cost,
            gpu: false,
        });
        self.adjacency.push(Vec::new());
        Ok(id)
    }

    /// Adds an undirected link between `a` and `b` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns an error on unknown endpoints, self-loops, duplicate links,
    /// or invalid quantities.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        cost: f64,
    ) -> ModelResult<LinkId> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(ModelError::SelfLoop(a));
        }
        if self.link_between(a, b).is_some() {
            return Err(ModelError::DuplicateLink(a, b));
        }
        check_quantity("link capacity", capacity)?;
        check_quantity("link cost", cost)?;
        let id = LinkId::from_index(self.links.len());
        self.links.push(SubstrateLink {
            a,
            b,
            capacity,
            cost,
        });
        self.adjacency[a.index()].push((b, id));
        self.adjacency[b.index()].push((a, id));
        Ok(id)
    }

    fn check_node(&self, n: NodeId) -> ModelResult<()> {
        if n.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownNode(n))
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The node with id `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node(&self, n: NodeId) -> &SubstrateNode {
        &self.nodes[n.index()]
    }

    /// Mutable access to a node (used by topology transforms such as the
    /// GPU scenario).
    pub fn node_mut(&mut self, n: NodeId) -> &mut SubstrateNode {
        &mut self.nodes[n.index()]
    }

    /// The link with id `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn link(&self, l: LinkId) -> &SubstrateLink {
        &self.links[l.index()]
    }

    /// Mutable access to a link.
    pub fn link_mut(&mut self, l: LinkId) -> &mut SubstrateLink {
        &mut self.links[l.index()]
    }

    /// Iterates over `(id, node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &SubstrateNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Iterates over `(id, link)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &SubstrateLink)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId::from_index(i), l))
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// All link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len()).map(LinkId::from_index)
    }

    /// Incident `(neighbor, link)` pairs of node `n`.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[n.index()]
    }

    /// Degree of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// The link connecting `a` and `b`, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency
            .get(a.index())?
            .iter()
            .find(|(nb, _)| *nb == b)
            .map(|(_, l)| *l)
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId::from_index)
    }

    /// Ids of all nodes in the given tier.
    pub fn nodes_in_tier(&self, tier: Tier) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.tier == tier)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all edge datacenters (request ingress points).
    pub fn edge_nodes(&self) -> Vec<NodeId> {
        self.nodes_in_tier(Tier::Edge)
    }

    /// Total compute capacity of all edge datacenters (the denominator of
    /// the paper's utilization definition).
    pub fn total_edge_capacity(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.tier == Tier::Edge)
            .map(|n| n.capacity)
            .sum()
    }

    /// Capacity of an arbitrary element.
    pub fn capacity(&self, e: ElementId) -> f64 {
        match e {
            ElementId::Node(n) => self.node(n).capacity,
            ElementId::Link(l) => self.link(l).capacity,
        }
    }

    /// Cost per CU of an arbitrary element.
    pub fn cost(&self, e: ElementId) -> f64 {
        match e {
            ElementId::Node(n) => self.node(n).cost,
            ElementId::Link(l) => self.link(l).cost,
        }
    }

    /// The maximum node cost over all nodes (used for conservative
    /// rejection penalties).
    pub fn max_node_cost(&self) -> f64 {
        self.nodes.iter().map(|n| n.cost).fold(0.0, f64::max)
    }

    /// The maximum link cost over all links.
    pub fn max_link_cost(&self) -> f64 {
        self.links.iter().map(|l| l.cost).fold(0.0, f64::max)
    }

    /// Whether the graph is connected (ignores capacities).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(nb, _) in self.neighbors(n) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Validates structural invariants (connectivity).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DisconnectedSubstrate`] if the graph is not
    /// connected.
    pub fn validate(&self) -> ModelResult<()> {
        if self.is_connected() {
            Ok(())
        } else {
            Err(ModelError::DisconnectedSubstrate)
        }
    }

    /// Single-source shortest paths by link weight.
    ///
    /// `weight` maps each link to a non-negative weight, or `None` to make
    /// the link unusable (e.g. insufficient residual capacity). Returns per
    /// node the distance and the `(prev node, via link)` predecessor, or
    /// `None` when unreachable.
    pub fn shortest_paths<F>(&self, source: NodeId, mut weight: F) -> ShortestPaths
    where
        F: FnMut(LinkId) -> Option<f64>,
    {
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[source.index()] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if d > dist[u.index()] {
                continue;
            }
            for &(v, l) in self.neighbors(u) {
                let Some(w) = weight(l) else { continue };
                debug_assert!(w >= 0.0, "link weights must be non-negative");
                let nd = d + w;
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    prev[v.index()] = Some((u, l));
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
        ShortestPaths { source, dist, prev }
    }

    /// Exports the topology in Graphviz DOT format (used for Fig. 5).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graph \"{}\" {{", self.name);
        for (id, n) in self.nodes() {
            let color = match n.tier {
                Tier::Edge => "blue",
                Tier::Transport => "green",
                Tier::Core => "red",
            };
            let _ = writeln!(
                out,
                "  {} [label=\"{}\", color={}{}];",
                id.index(),
                n.name,
                color,
                if n.gpu { ", shape=box" } else { "" }
            );
        }
        for l in &self.links {
            let _ = writeln!(out, "  {} -- {};", l.a.index(), l.b.index());
        }
        out.push_str("}\n");
        out
    }
}

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<(NodeId, LinkId)>>,
}

impl ShortestPaths {
    /// The source node of the computation.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `n` (`f64::INFINITY` if unreachable).
    pub fn distance(&self, n: NodeId) -> f64 {
        self.dist[n.index()]
    }

    /// Whether `n` is reachable from the source.
    pub fn reachable(&self, n: NodeId) -> bool {
        self.dist[n.index()].is_finite()
    }

    /// The links of the shortest path from the source to `target`, in
    /// source-to-target order. Returns `None` if unreachable.
    ///
    /// The path is empty when `target == source`.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<LinkId>> {
        if !self.reachable(target) {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = target;
        while cur != self.source {
            let (p, l) = self.prev[cur.index()]?;
            path.push(l);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse on distance for a min-heap; tie-break on node id for
        // deterministic behavior.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (SubstrateNetwork, Vec<NodeId>, Vec<LinkId>) {
        // a - b
        // |   |
        // c - d      with a cheap path a-c-d and expensive a-b-d
        let mut s = SubstrateNetwork::new("diamond");
        let a = s.add_node("a", Tier::Edge, 100.0, 50.0).unwrap();
        let b = s.add_node("b", Tier::Transport, 300.0, 10.0).unwrap();
        let c = s.add_node("c", Tier::Transport, 300.0, 10.0).unwrap();
        let d = s.add_node("d", Tier::Core, 900.0, 1.0).unwrap();
        let ab = s.add_link(a, b, 100.0, 5.0).unwrap();
        let ac = s.add_link(a, c, 100.0, 1.0).unwrap();
        let bd = s.add_link(b, d, 100.0, 5.0).unwrap();
        let cd = s.add_link(c, d, 100.0, 1.0).unwrap();
        (s, vec![a, b, c, d], vec![ab, ac, bd, cd])
    }

    #[test]
    fn construction_and_lookup() {
        let (s, nodes, links) = diamond();
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.link_count(), 4);
        assert_eq!(s.node(nodes[0]).name, "a");
        assert_eq!(s.degree(nodes[0]), 2);
        assert_eq!(s.link_between(nodes[0], nodes[1]), Some(links[0]));
        assert_eq!(s.link_between(nodes[0], nodes[3]), None);
        assert_eq!(s.node_by_name("d"), Some(nodes[3]));
        assert_eq!(s.node_by_name("zzz"), None);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn rejects_self_loop_and_duplicate() {
        let (mut s, nodes, _) = diamond();
        assert_eq!(
            s.add_link(nodes[0], nodes[0], 1.0, 1.0),
            Err(ModelError::SelfLoop(nodes[0]))
        );
        assert_eq!(
            s.add_link(nodes[1], nodes[0], 1.0, 1.0),
            Err(ModelError::DuplicateLink(nodes[1], nodes[0]))
        );
    }

    #[test]
    fn rejects_unknown_endpoint_and_bad_capacity() {
        let (mut s, nodes, _) = diamond();
        assert_eq!(
            s.add_link(nodes[0], NodeId(99), 1.0, 1.0),
            Err(ModelError::UnknownNode(NodeId(99)))
        );
        assert!(s.add_node("x", Tier::Edge, -5.0, 1.0).is_err());
        assert!(s.add_node("x", Tier::Edge, 5.0, f64::NAN).is_err());
    }

    #[test]
    fn tier_queries() {
        let (s, nodes, _) = diamond();
        assert_eq!(s.edge_nodes(), vec![nodes[0]]);
        assert_eq!(s.nodes_in_tier(Tier::Transport).len(), 2);
        assert_eq!(s.total_edge_capacity(), 100.0);
    }

    #[test]
    fn element_capacity_and_cost() {
        let (s, nodes, links) = diamond();
        assert_eq!(s.capacity(ElementId::Node(nodes[3])), 900.0);
        assert_eq!(s.cost(ElementId::Link(links[1])), 1.0);
        assert_eq!(s.max_node_cost(), 50.0);
        assert_eq!(s.max_link_cost(), 5.0);
    }

    #[test]
    fn shortest_path_prefers_cheap_route() {
        let (s, nodes, links) = diamond();
        let sp = s.shortest_paths(nodes[0], |l| Some(s.link(l).cost));
        assert_eq!(sp.distance(nodes[3]), 2.0);
        assert_eq!(sp.path_to(nodes[3]).unwrap(), vec![links[1], links[3]]);
        assert_eq!(sp.path_to(nodes[0]).unwrap(), Vec::<LinkId>::new());
    }

    #[test]
    fn shortest_path_respects_filtered_links() {
        let (s, nodes, links) = diamond();
        // Forbid the cheap a-c link: route must go a-b-d.
        let sp = s.shortest_paths(nodes[0], |l| {
            if l == links[1] {
                None
            } else {
                Some(s.link(l).cost)
            }
        });
        assert_eq!(sp.path_to(nodes[3]).unwrap(), vec![links[0], links[2]]);
        assert_eq!(sp.distance(nodes[3]), 10.0);
    }

    #[test]
    fn unreachable_when_all_links_filtered() {
        let (s, nodes, _) = diamond();
        let sp = s.shortest_paths(nodes[0], |_| None);
        assert!(!sp.reachable(nodes[3]));
        assert_eq!(sp.path_to(nodes[3]), None);
        assert!(sp.reachable(nodes[0]));
    }

    #[test]
    fn connectivity_detection() {
        let mut s = SubstrateNetwork::new("disc");
        let _a = s.add_node("a", Tier::Edge, 1.0, 1.0).unwrap();
        let _b = s.add_node("b", Tier::Edge, 1.0, 1.0).unwrap();
        assert!(!s.is_connected());
        assert_eq!(s.validate(), Err(ModelError::DisconnectedSubstrate));
        let empty = SubstrateNetwork::new("empty");
        assert!(empty.is_connected());
    }

    #[test]
    fn dot_export_mentions_all_nodes() {
        let (s, _, _) = diamond();
        let dot = s.to_dot();
        assert!(dot.contains("graph \"diamond\""));
        assert!(dot.contains("0 -- 1;") || dot.contains("  0 -- 1;"));
        assert_eq!(dot.matches("--").count(), 4);
    }

    #[test]
    fn link_other_endpoint() {
        let (s, nodes, links) = diamond();
        assert_eq!(s.link(links[0]).other(nodes[0]), nodes[1]);
        assert_eq!(s.link(links[0]).other(nodes[1]), nodes[0]);
        assert!(s.link(links[0]).touches(nodes[0]));
        assert!(!s.link(links[0]).touches(nodes[3]));
    }
}
