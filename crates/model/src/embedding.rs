//! Embeddings: mappings of virtual networks onto the substrate.
//!
//! An embedding maps every virtual node to a substrate node and every
//! virtual link to a (possibly empty) substrate path — unsplittable, as
//! required for valid online allocations (`x_s^q(r) = 1` for exactly one
//! `s`). Embeddings are *unit-demand* objects: the same embedding shape is
//! reused by every request of a class, scaled by the request demand.

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, ModelResult};
use crate::ids::{ElementId, LinkId, NodeId, VlinkId, VnodeId};
use crate::policy::PlacementPolicy;
use crate::substrate::SubstrateNetwork;
use crate::vnet::VirtualNetwork;

/// An unsplittable mapping of a virtual network onto the substrate.
///
/// `node_map[i]` is the substrate node hosting virtual node `i`;
/// `link_paths[e]` is the substrate path (list of link ids, ordered from
/// the parent's node to the child's node) carrying virtual link `e`. A
/// path is empty when both endpoints are hosted on the same node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Embedding {
    node_map: Vec<NodeId>,
    link_paths: Vec<Vec<LinkId>>,
}

impl Embedding {
    /// Creates an embedding from raw mappings.
    ///
    /// Structural validation (path contiguity, placement permissions) is
    /// performed by [`Embedding::validate`]; this constructor only checks
    /// that both maps are non-empty-consistent in length elsewhere.
    pub fn new(node_map: Vec<NodeId>, link_paths: Vec<Vec<LinkId>>) -> Self {
        Self {
            node_map,
            link_paths,
        }
    }

    /// The substrate node hosting virtual node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node(&self, v: VnodeId) -> NodeId {
        self.node_map[v.index()]
    }

    /// The substrate path carrying virtual link `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn path(&self, e: VlinkId) -> &[LinkId] {
        &self.link_paths[e.index()]
    }

    /// The full node map, indexed by virtual node id.
    pub fn node_map(&self) -> &[NodeId] {
        &self.node_map
    }

    /// The full path map, indexed by virtual link id.
    pub fn link_paths(&self) -> &[Vec<LinkId>] {
        &self.link_paths
    }

    /// The substrate node hosting the root `θ` (the request ingress).
    pub fn ingress(&self) -> NodeId {
        self.node_map[0]
    }

    /// Whether all VNFs (non-root nodes) are collocated on one substrate
    /// node (the QUICKG restriction).
    pub fn is_collocated(&self) -> bool {
        self.node_map.len() <= 2 || self.node_map[1..].windows(2).all(|w| w[0] == w[1])
    }

    /// Validates this embedding against a virtual network, substrate and
    /// placement policy.
    ///
    /// Checks performed:
    ///
    /// * the maps cover every virtual node and link;
    /// * every referenced substrate element exists;
    /// * every placement is allowed by the policy (finite `η`);
    /// * every path is contiguous from the parent's host to the child's
    ///   host (empty paths require collocated endpoints).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(
        &self,
        vnet: &VirtualNetwork,
        substrate: &SubstrateNetwork,
        policy: &PlacementPolicy,
    ) -> ModelResult<()> {
        if self.node_map.len() != vnet.node_count() || self.link_paths.len() != vnet.link_count() {
            return Err(ModelError::IncompleteEmbedding);
        }
        for (v, vnf) in vnet.vnodes() {
            let host = self.node_map[v.index()];
            if host.index() >= substrate.node_count() {
                return Err(ModelError::UnknownNode(host));
            }
            if !policy.allows(vnf, substrate.node(host)) {
                return Err(ModelError::ForbiddenPlacement {
                    vnode: v,
                    node: host,
                });
            }
        }
        for (e, vlink) in vnet.vlinks() {
            let from = self.node_map[vlink.from.index()];
            let to = self.node_map[vlink.to.index()];
            let path = &self.link_paths[e.index()];
            let mut cur = from;
            for &l in path {
                if l.index() >= substrate.link_count() {
                    return Err(ModelError::UnknownLink(l));
                }
                let link = substrate.link(l);
                if !link.touches(cur) {
                    return Err(ModelError::BrokenPath(e));
                }
                cur = link.other(cur);
            }
            if cur != to {
                return Err(ModelError::BrokenPath(e));
            }
        }
        Ok(())
    }

    /// Computes this embedding's per-unit-demand footprint: the aggregated
    /// load `β_q · η_s^q` on every touched substrate element (Eq. 1 with
    /// `d(r) = 1`).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a placement is forbidden; call
    /// [`Embedding::validate`] first for untrusted embeddings.
    pub fn footprint(
        &self,
        vnet: &VirtualNetwork,
        substrate: &SubstrateNetwork,
        policy: &PlacementPolicy,
    ) -> Footprint {
        let mut nodes: Vec<(NodeId, f64)> = Vec::with_capacity(vnet.node_count());
        let mut links: Vec<(LinkId, f64)> = Vec::new();
        for (v, vnf) in vnet.vnodes() {
            if vnf.beta == 0.0 {
                continue;
            }
            let host = self.node_map[v.index()];
            let eta = policy
                .node_eta(vnf, substrate.node(host))
                .expect("forbidden placement in footprint; validate first");
            nodes.push((host, vnf.beta * eta));
        }
        for (e, vlink) in vnet.vlinks() {
            if vlink.beta == 0.0 {
                continue;
            }
            for &l in &self.link_paths[e.index()] {
                let eta = policy
                    .link_eta(vlink, substrate.link(l))
                    .expect("forbidden link routing in footprint");
                links.push((l, vlink.beta * eta));
            }
        }
        Footprint::from_parts(nodes, links)
    }

    /// Resource cost per unit demand per time slot of this embedding
    /// (Σ over elements of `load · cost(s)`, Eq. 3 for one slot and
    /// `d(r) = 1`).
    pub fn unit_cost(
        &self,
        vnet: &VirtualNetwork,
        substrate: &SubstrateNetwork,
        policy: &PlacementPolicy,
    ) -> f64 {
        self.footprint(vnet, substrate, policy).cost(substrate)
    }
}

/// Aggregated per-unit-demand load of an embedding on substrate elements.
///
/// Entries are consolidated (one entry per element) and sorted by id, so
/// footprints compare and merge deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Footprint {
    nodes: Vec<(NodeId, f64)>,
    links: Vec<(LinkId, f64)>,
}

impl Footprint {
    /// Builds a footprint from unconsolidated parts.
    pub fn from_parts(nodes: Vec<(NodeId, f64)>, links: Vec<(LinkId, f64)>) -> Self {
        fn consolidate<K: Copy + Ord>(mut v: Vec<(K, f64)>) -> Vec<(K, f64)> {
            v.sort_by_key(|&(k, _)| k);
            let mut out: Vec<(K, f64)> = Vec::with_capacity(v.len());
            for (k, x) in v {
                match out.last_mut() {
                    Some((lk, lx)) if *lk == k => *lx += x,
                    _ => out.push((k, x)),
                }
            }
            out
        }
        Self {
            nodes: consolidate(nodes),
            links: consolidate(links),
        }
    }

    /// Per-node loads, sorted by node id.
    pub fn nodes(&self) -> &[(NodeId, f64)] {
        &self.nodes
    }

    /// Per-link loads, sorted by link id.
    pub fn links(&self) -> &[(LinkId, f64)] {
        &self.links
    }

    /// Whether the footprint touches no element.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }

    /// Iterates over `(element, load)` pairs, nodes first.
    pub fn elements(&self) -> impl Iterator<Item = (ElementId, f64)> + '_ {
        self.nodes
            .iter()
            .map(|&(n, x)| (ElementId::Node(n), x))
            .chain(self.links.iter().map(|&(l, x)| (ElementId::Link(l), x)))
    }

    /// The load on a specific node (0 if untouched).
    pub fn node_load(&self, n: NodeId) -> f64 {
        self.nodes
            .binary_search_by_key(&n, |&(k, _)| k)
            .map(|i| self.nodes[i].1)
            .unwrap_or(0.0)
    }

    /// The load on a specific link (0 if untouched).
    pub fn link_load(&self, l: LinkId) -> f64 {
        self.links
            .binary_search_by_key(&l, |&(k, _)| k)
            .map(|i| self.links[i].1)
            .unwrap_or(0.0)
    }

    /// Resource cost per time slot of this footprint at unit demand.
    pub fn cost(&self, substrate: &SubstrateNetwork) -> f64 {
        let n: f64 = self
            .nodes
            .iter()
            .map(|&(id, x)| x * substrate.node(id).cost)
            .sum();
        let l: f64 = self
            .links
            .iter()
            .map(|&(id, x)| x * substrate.link(id).cost)
            .sum();
        n + l
    }

    /// Returns this footprint scaled by a demand factor.
    pub fn scaled(&self, demand: f64) -> Footprint {
        Footprint {
            nodes: self.nodes.iter().map(|&(k, x)| (k, x * demand)).collect(),
            links: self.links.iter().map(|&(k, x)| (k, x * demand)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::Tier;
    use crate::vnet::VnfKind;

    /// Line substrate: e0 (edge) - t1 (transport) - c2 (core).
    fn line() -> SubstrateNetwork {
        let mut s = SubstrateNetwork::new("line");
        let a = s.add_node("e0", Tier::Edge, 200.0, 50.0).unwrap();
        let b = s.add_node("t1", Tier::Transport, 600.0, 10.0).unwrap();
        let c = s.add_node("c2", Tier::Core, 1800.0, 1.0).unwrap();
        s.add_link(a, b, 100.0, 1.0).unwrap();
        s.add_link(b, c, 300.0, 1.0).unwrap();
        s
    }

    /// θ → f0 → f1 chain with β = 10, link β = 5.
    fn chain2() -> VirtualNetwork {
        VirtualNetwork::chain(&[10.0, 10.0], &[5.0, 5.0]).unwrap()
    }

    #[test]
    fn valid_spread_embedding() {
        let s = line();
        let vn = chain2();
        let p = PlacementPolicy::default();
        // θ@e0, f0@t1, f1@c2; paths e0-t1 and t1-c2.
        let emb = Embedding::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![vec![LinkId(0)], vec![LinkId(1)]],
        );
        assert!(emb.validate(&vn, &s, &p).is_ok());
        assert!(!emb.is_collocated());
        let fp = emb.footprint(&vn, &s, &p);
        assert_eq!(fp.node_load(NodeId(1)), 10.0);
        assert_eq!(fp.node_load(NodeId(2)), 10.0);
        assert_eq!(fp.node_load(NodeId(0)), 0.0); // root has β = 0
        assert_eq!(fp.link_load(LinkId(0)), 5.0);
        // Cost: 10·10 (t1) + 10·1 (c2) + 5·1 + 5·1 (links) = 120.
        assert_eq!(fp.cost(&s), 120.0);
        assert_eq!(emb.unit_cost(&vn, &s, &p), 120.0);
    }

    #[test]
    fn collocated_embedding_has_empty_inner_paths() {
        let s = line();
        let vn = chain2();
        let p = PlacementPolicy::default();
        // θ@e0, f0,f1@t1: path e0-t1 then empty.
        let emb = Embedding::new(
            vec![NodeId(0), NodeId(1), NodeId(1)],
            vec![vec![LinkId(0)], vec![]],
        );
        assert!(emb.validate(&vn, &s, &p).is_ok());
        assert!(emb.is_collocated());
        let fp = emb.footprint(&vn, &s, &p);
        assert_eq!(fp.node_load(NodeId(1)), 20.0); // consolidated
        assert_eq!(fp.link_load(LinkId(1)), 0.0);
    }

    #[test]
    fn broken_path_is_rejected() {
        let s = line();
        let vn = chain2();
        let p = PlacementPolicy::default();
        // Path for e1 claims link 0 but f0 is on t1 → c2 requires link 1.
        let emb = Embedding::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![vec![LinkId(0)], vec![LinkId(0)]],
        );
        assert_eq!(
            emb.validate(&vn, &s, &p),
            Err(ModelError::BrokenPath(VlinkId(1)))
        );
    }

    #[test]
    fn empty_path_requires_collocation() {
        let s = line();
        let vn = chain2();
        let p = PlacementPolicy::default();
        let emb = Embedding::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![vec![LinkId(0)], vec![]],
        );
        assert_eq!(
            emb.validate(&vn, &s, &p),
            Err(ModelError::BrokenPath(VlinkId(1)))
        );
    }

    #[test]
    fn incomplete_embedding_is_rejected() {
        let s = line();
        let vn = chain2();
        let p = PlacementPolicy::default();
        let emb = Embedding::new(vec![NodeId(0), NodeId(1)], vec![vec![LinkId(0)]]);
        assert_eq!(
            emb.validate(&vn, &s, &p),
            Err(ModelError::IncompleteEmbedding)
        );
    }

    #[test]
    fn forbidden_placement_is_rejected() {
        let mut s = line();
        s.node_mut(NodeId(1)).gpu = true; // t1 becomes GPU-only
        let vn = chain2();
        let p = PlacementPolicy::default();
        let emb = Embedding::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![vec![LinkId(0)], vec![LinkId(1)]],
        );
        assert_eq!(
            emb.validate(&vn, &s, &p),
            Err(ModelError::ForbiddenPlacement {
                vnode: VnodeId(1),
                node: NodeId(1)
            })
        );
    }

    #[test]
    fn gpu_vnf_validates_on_gpu_dc() {
        let mut s = line();
        s.node_mut(NodeId(2)).gpu = true;
        let mut vn = VirtualNetwork::with_root();
        let (f0, _) = vn
            .add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, 10.0, 5.0)
            .unwrap();
        vn.add_vnf(f0, VnfKind::Gpu, 10.0, 5.0).unwrap();
        let p = PlacementPolicy::default();
        let emb = Embedding::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![vec![LinkId(0)], vec![LinkId(1)]],
        );
        assert!(emb.validate(&vn, &s, &p).is_ok());
    }

    #[test]
    fn footprint_scaling() {
        let s = line();
        let vn = chain2();
        let p = PlacementPolicy::default();
        let emb = Embedding::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![vec![LinkId(0)], vec![LinkId(1)]],
        );
        let fp = emb.footprint(&vn, &s, &p).scaled(3.0);
        assert_eq!(fp.node_load(NodeId(1)), 30.0);
        assert_eq!(fp.link_load(LinkId(1)), 15.0);
        assert_eq!(fp.cost(&s), 360.0);
    }

    #[test]
    fn footprint_elements_iteration() {
        let fp = Footprint::from_parts(
            vec![(NodeId(2), 1.0), (NodeId(1), 2.0), (NodeId(2), 3.0)],
            vec![(LinkId(0), 1.0)],
        );
        let elems: Vec<_> = fp.elements().collect();
        assert_eq!(elems.len(), 3);
        assert_eq!(fp.node_load(NodeId(2)), 4.0);
        assert!(!fp.is_empty());
        assert!(Footprint::default().is_empty());
    }

    #[test]
    fn embeddings_hash_and_compare() {
        use std::collections::HashSet;
        let a = Embedding::new(vec![NodeId(0)], vec![]);
        let b = Embedding::new(vec![NodeId(0)], vec![]);
        let c = Embedding::new(vec![NodeId(1)], vec![]);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
