//! Cost model: resource costs and rejection penalties.
//!
//! The optimization criterion is `cost_S(x) + Ψ(x)` (Eqs. 3–4): resource
//! consumption priced per element per slot, plus `Ψ(r) = ψ·d(r)·T(r)` for
//! every rejected request. The paper sets a "very conservative" ψ equal to
//! the cost of allocating the application's elements on the most expensive
//! substrate elements; [`RejectionPenalty::conservative`] reproduces that.

use serde::{Deserialize, Serialize};

use crate::app::AppSet;
use crate::ids::AppId;
use crate::substrate::SubstrateNetwork;

/// Per-application rejection penalty factors `ψ(a)`.
///
/// `Ψ(r) = ψ(a(r)) · d(r) · T(r)` for a rejected request `r`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectionPenalty {
    per_app: Vec<f64>,
}

impl RejectionPenalty {
    /// The paper's conservative penalty: the cost of placing every element
    /// of `a` on the most expensive substrate element of its kind, per
    /// unit demand per slot:
    /// `ψ(a) = Σ_i β_i · max_v cost(v) + Σ_(ij) β_(ij) · max_l cost(l)`.
    pub fn conservative(apps: &AppSet, substrate: &SubstrateNetwork) -> Self {
        let max_node = substrate.max_node_cost();
        let max_link = substrate.max_link_cost();
        let per_app = apps
            .iter()
            .map(|a| a.vnet.total_node_size() * max_node + a.vnet.total_link_size() * max_link)
            .collect();
        Self { per_app }
    }

    /// A uniform penalty factor for every application.
    pub fn uniform(apps: &AppSet, psi: f64) -> Self {
        Self {
            per_app: vec![psi; apps.len()],
        }
    }

    /// The penalty factor for application `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn psi(&self, a: AppId) -> f64 {
        self.per_app[a.index()]
    }

    /// The largest penalty factor across applications (useful as a single
    /// scalar ψ for PLAN-VNE).
    pub fn max_psi(&self) -> f64 {
        self.per_app.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{shapes, AppShape};
    use crate::substrate::Tier;

    fn setup() -> (AppSet, SubstrateNetwork) {
        let mut apps = AppSet::new();
        apps.push(
            "c",
            AppShape::Chain,
            shapes::uniform_chain(2, 10.0, 4.0).unwrap(),
        )
        .unwrap();
        apps.push(
            "d",
            AppShape::Chain,
            shapes::uniform_chain(3, 10.0, 4.0).unwrap(),
        )
        .unwrap();
        let mut s = SubstrateNetwork::new("pair");
        let a = s.add_node("a", Tier::Edge, 100.0, 50.0).unwrap();
        let b = s.add_node("b", Tier::Core, 200.0, 1.0).unwrap();
        s.add_link(a, b, 50.0, 2.0).unwrap();
        (apps, s)
    }

    #[test]
    fn conservative_uses_most_expensive_elements() {
        let (apps, s) = setup();
        let pen = RejectionPenalty::conservative(&apps, &s);
        // App 0: nodes 20·50 + links 8·2 = 1016.
        assert_eq!(pen.psi(AppId(0)), 20.0 * 50.0 + 8.0 * 2.0);
        // App 1: nodes 30·50 + links 12·2 = 1524.
        assert_eq!(pen.psi(AppId(1)), 30.0 * 50.0 + 12.0 * 2.0);
        assert_eq!(pen.max_psi(), 1524.0);
    }

    #[test]
    fn uniform_penalty() {
        let (apps, _s) = setup();
        let pen = RejectionPenalty::uniform(&apps, 7.0);
        assert_eq!(pen.psi(AppId(0)), 7.0);
        assert_eq!(pen.psi(AppId(1)), 7.0);
        assert_eq!(pen.max_psi(), 7.0);
    }
}
