//! Online embedding requests.
//!
//! A request `r` arrives at slot `t(r)` at ingress `v(r)` for application
//! `a(r)` with demand `d(r)`, and stays active for `T(r)` slots
//! (`t(r) ≤ t < t(r)+T(r)`). Durations are known to the system only upon
//! departure; the simulator carries them for bookkeeping.

use serde::{Deserialize, Serialize};

use crate::churn::ChurnEvent;
use crate::ids::{AppId, ClassId, NodeId, RequestId};
use crate::state::{StateDecode, StateEncode, StateError, StateReader, StateWriter};

/// A discrete time slot index (`t ∈ T`).
pub type Slot = u32;

/// An online request to embed an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id, also encoding arrival order (ids are assigned in
    /// non-decreasing arrival time by trace generators).
    pub id: RequestId,
    /// Arrival slot `t(r)`.
    pub arrival: Slot,
    /// Duration in slots `T(r) ≥ 1`; the request is active for
    /// `arrival ≤ t < arrival + duration`.
    pub duration: Slot,
    /// Ingress substrate node `v(r)` (the user's location).
    pub ingress: NodeId,
    /// Requested application `a(r)`.
    pub app: AppId,
    /// Demand size `d(r) > 0`.
    pub demand: f64,
}

/// The arrivals of one time slot, as produced by a (possibly lazy)
/// trace source and consumed by the simulation engine.
///
/// Streams of `SlotEvents` are the unit of the event-driven simulator:
/// a trace is an `Iterator<Item = SlotEvents>` yielding one item per
/// slot (empty `arrivals` for quiet slots), so a simulation only ever
/// materializes the requests of the slot being processed plus the
/// currently active ones — memory stays `O(active)` instead of
/// `O(trace length)`. Arrivals must be listed in the ON-VNE processing
/// order (ascending [`RequestId`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlotEvents {
    /// The slot these events belong to. Streams yield strictly
    /// increasing, contiguous slots starting at 0.
    pub slot: Slot,
    /// The requests arriving in this slot, in processing order.
    pub arrivals: Vec<Request>,
    /// Substrate churn taking effect at the start of this slot, applied
    /// before `arrivals` are offered (empty on a static substrate).
    pub churn: Vec<ChurnEvent>,
}

impl SlotEvents {
    /// An empty slot (no arrivals, no churn).
    pub fn empty(slot: Slot) -> Self {
        Self {
            slot,
            arrivals: Vec::new(),
            churn: Vec::new(),
        }
    }
}

impl StateEncode for SlotEvents {
    fn encode(&self, w: &mut StateWriter) {
        w.write_u32(self.slot);
        w.write(&self.arrivals);
        w.write(&self.churn);
    }
}

impl StateDecode for SlotEvents {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            slot: r.read_u32()?,
            arrivals: r.read()?,
            churn: r.read()?,
        })
    }
}

impl Request {
    /// The slot at which the request departs (first slot it is inactive).
    pub fn departure(&self) -> Slot {
        self.arrival + self.duration
    }

    /// Whether the request is active at slot `t`.
    pub fn active_at(&self, t: Slot) -> bool {
        self.arrival <= t && t < self.departure()
    }

    /// The request's class `(a(r), v(r))` (Eq. 5).
    pub fn class(&self) -> ClassId {
        ClassId::new(self.app, self.ingress)
    }

    /// The rejection cost `Ψ(r) = ψ · d(r) · T(r)` for a penalty factor ψ.
    pub fn rejection_cost(&self, psi: f64) -> f64 {
        psi * self.demand * f64::from(self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request {
            id: RequestId(1),
            arrival: 10,
            duration: 4,
            ingress: NodeId(2),
            app: AppId(0),
            demand: 3.5,
        }
    }

    #[test]
    fn activity_window_is_half_open() {
        let r = req();
        assert!(!r.active_at(9));
        assert!(r.active_at(10));
        assert!(r.active_at(13));
        assert!(!r.active_at(14));
        assert_eq!(r.departure(), 14);
    }

    #[test]
    fn class_combines_app_and_ingress() {
        let r = req();
        assert_eq!(r.class(), ClassId::new(AppId(0), NodeId(2)));
    }

    #[test]
    fn rejection_cost_scales_with_demand_and_duration() {
        let r = req();
        assert_eq!(r.rejection_cost(2.0), 2.0 * 3.5 * 4.0);
        assert_eq!(r.rejection_cost(0.0), 0.0);
    }
}
