//! Virtual networks: rooted trees of VNFs connected by virtual links.
//!
//! Each application's topology `Ga` is a tree (chains are a special case)
//! rooted at the user node `θa`. The root only represents the ingress
//! point, so its size is fixed to zero (`β_θ = 0`). Every other virtual
//! node is a VNF with a size `β`, and every virtual link carries a traffic
//! size `β`.

use serde::{Deserialize, Serialize};

use crate::error::{check_quantity, ModelError, ModelResult};
use crate::ids::{VlinkId, VnodeId};

/// The kind of a VNF, used by placement policies (`η` coefficients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum VnfKind {
    /// An ordinary VNF placeable on any non-specialized datacenter.
    #[default]
    Standard,
    /// A VNF requiring GPU acceleration; may only be placed on GPU
    /// datacenters (Fig. 10 scenario).
    Gpu,
    /// A hardware-acceleratable packet-processing function; reduces the
    /// size of downstream virtual links by the application's acceleration
    /// factor (the paper's "accelerator" application, after \[33\]).
    Accelerator,
}

/// A virtual node (VNF or the root user node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vnf {
    /// Resource requirement `β_q` (zero for the root).
    pub beta: f64,
    /// VNF kind for placement policies.
    pub kind: VnfKind,
}

/// A virtual link, directed from parent to child in the rooted tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualLink {
    /// Parent endpoint (closer to the root).
    pub from: VnodeId,
    /// Child endpoint.
    pub to: VnodeId,
    /// Traffic requirement `β_q`.
    pub beta: f64,
}

/// A rooted tree virtual network (`Ga` in the paper).
///
/// Node `0` is always the root `θ`. Virtual link `e` connects
/// `parent(to(e)) → to(e)`; link ids are assigned in insertion order.
///
/// # Examples
///
/// ```
/// use vne_model::vnet::VirtualNetwork;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // θ → f0 → f1 (a 2-VNF chain).
/// let chain = VirtualNetwork::chain(&[40.0, 60.0], &[30.0, 20.0])?;
/// assert_eq!(chain.vnf_count(), 2);
/// assert!(chain.is_chain());
/// assert_eq!(chain.total_node_size(), 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualNetwork {
    nodes: Vec<Vnf>,
    links: Vec<VirtualLink>,
    /// parent[i] = Some((parent node, connecting link)) for non-root nodes.
    parents: Vec<Option<(VnodeId, VlinkId)>>,
    children: Vec<Vec<VnodeId>>,
}

impl VirtualNetwork {
    /// The id of the root node `θ`.
    pub const ROOT: VnodeId = VnodeId(0);

    /// Creates a virtual network containing only the root `θ` (size 0).
    pub fn with_root() -> Self {
        Self {
            nodes: vec![Vnf {
                beta: 0.0,
                kind: VnfKind::Standard,
            }],
            links: Vec::new(),
            parents: vec![None],
            children: vec![Vec::new()],
        }
    }

    /// Adds a VNF as a child of `parent`, connected by a virtual link of
    /// size `link_beta`. Returns the new node id and the link id.
    ///
    /// # Errors
    ///
    /// Returns an error if `parent` does not exist or a size is invalid.
    pub fn add_vnf(
        &mut self,
        parent: VnodeId,
        kind: VnfKind,
        beta: f64,
        link_beta: f64,
    ) -> ModelResult<(VnodeId, VlinkId)> {
        if parent.index() >= self.nodes.len() {
            return Err(ModelError::UnknownVnode(parent));
        }
        check_quantity("vnf size", beta)?;
        check_quantity("virtual link size", link_beta)?;
        let node = VnodeId::from_index(self.nodes.len());
        let link = VlinkId::from_index(self.links.len());
        self.nodes.push(Vnf { beta, kind });
        self.links.push(VirtualLink {
            from: parent,
            to: node,
            beta: link_beta,
        });
        self.parents.push(Some((parent, link)));
        self.children.push(Vec::new());
        self.children[parent.index()].push(node);
        Ok((node, link))
    }

    /// Builds a chain `θ → f0 → f1 → …` with the given VNF sizes and link
    /// sizes (`link_betas[i]` connects node `i`'s parent to node `i`).
    ///
    /// # Errors
    ///
    /// Returns an error if the slices have different lengths (reported as
    /// [`ModelError::NotATree`]) or any size is invalid.
    pub fn chain(vnf_betas: &[f64], link_betas: &[f64]) -> ModelResult<Self> {
        if vnf_betas.len() != link_betas.len() {
            return Err(ModelError::NotATree);
        }
        let mut vn = Self::with_root();
        let mut parent = Self::ROOT;
        for (&b, &lb) in vnf_betas.iter().zip(link_betas) {
            let (n, _) = vn.add_vnf(parent, VnfKind::Standard, b, lb)?;
            parent = n;
        }
        Ok(vn)
    }

    /// Number of virtual nodes including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of VNFs (excluding the root).
    pub fn vnf_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of virtual links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The virtual node with id `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node(&self, v: VnodeId) -> &Vnf {
        &self.nodes[v.index()]
    }

    /// Mutable access to a virtual node (used by application generators).
    pub fn node_mut(&mut self, v: VnodeId) -> &mut Vnf {
        &mut self.nodes[v.index()]
    }

    /// The virtual link with id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn link(&self, e: VlinkId) -> &VirtualLink {
        &self.links[e.index()]
    }

    /// Mutable access to a virtual link (used by the accelerator discount).
    pub fn link_mut(&mut self, e: VlinkId) -> &mut VirtualLink {
        &mut self.links[e.index()]
    }

    /// Iterates over `(id, node)` pairs, including the root.
    pub fn vnodes(&self) -> impl Iterator<Item = (VnodeId, &Vnf)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (VnodeId::from_index(i), n))
    }

    /// Iterates over `(id, link)` pairs.
    pub fn vlinks(&self) -> impl Iterator<Item = (VlinkId, &VirtualLink)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (VlinkId::from_index(i), l))
    }

    /// The parent of `v` and the link that connects them (`None` for the root).
    pub fn parent(&self, v: VnodeId) -> Option<(VnodeId, VlinkId)> {
        self.parents[v.index()]
    }

    /// The children of `v`.
    pub fn children(&self, v: VnodeId) -> &[VnodeId] {
        &self.children[v.index()]
    }

    /// Nodes in breadth-first order starting at the root.
    pub fn bfs_order(&self) -> Vec<VnodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(Self::ROOT);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in self.children(v) {
                queue.push_back(c);
            }
        }
        order
    }

    /// Whether the topology is a chain (every node has at most one child).
    pub fn is_chain(&self) -> bool {
        self.children.iter().all(|c| c.len() <= 1)
    }

    /// Whether any VNF requires a GPU.
    pub fn has_gpu_vnf(&self) -> bool {
        self.nodes.iter().any(|n| n.kind == VnfKind::Gpu)
    }

    /// Total VNF size `Σ_i β_i` (excluding the root, whose β is 0 anyway).
    pub fn total_node_size(&self) -> f64 {
        self.nodes.iter().map(|n| n.beta).sum()
    }

    /// Total virtual link size `Σ_(ij) β_(ij)`.
    pub fn total_link_size(&self) -> f64 {
        self.links.iter().map(|l| l.beta).sum()
    }

    /// Applies the accelerator discount: every virtual link strictly
    /// downstream of an [`VnfKind::Accelerator`] node has its size
    /// multiplied by `factor` (the paper uses 0.3, i.e. a 70% reduction).
    pub fn apply_accelerator_discount(&mut self, factor: f64) {
        let order = self.bfs_order();
        let mut accelerated = vec![false; self.nodes.len()];
        for v in order {
            let inherited = self
                .parent(v)
                .map(|(p, _)| accelerated[p.index()])
                .unwrap_or(false);
            let here = inherited || self.nodes[v.index()].kind == VnfKind::Accelerator;
            accelerated[v.index()] = here;
            if inherited {
                // The link from the parent is downstream of the accelerator.
                if let Some((_, e)) = self.parent(v) {
                    self.links[e.index()].beta *= factor;
                }
            }
        }
    }

    /// Validates tree invariants: non-empty, root size zero, all nodes
    /// reachable from the root, `|links| == |nodes| - 1`.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> ModelResult<()> {
        if self.nodes.is_empty() {
            return Err(ModelError::EmptyVirtualNetwork);
        }
        let root_beta = self.nodes[0].beta;
        if root_beta != 0.0 {
            return Err(ModelError::NonZeroRootSize(root_beta));
        }
        if self.links.len() != self.nodes.len() - 1 {
            return Err(ModelError::NotATree);
        }
        if self.bfs_order().len() != self.nodes.len() {
            return Err(ModelError::NotATree);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_only_network_is_valid() {
        let vn = VirtualNetwork::with_root();
        assert_eq!(vn.node_count(), 1);
        assert_eq!(vn.vnf_count(), 0);
        assert!(vn.validate().is_ok());
        assert!(vn.is_chain());
    }

    #[test]
    fn chain_construction() {
        let vn = VirtualNetwork::chain(&[10.0, 20.0, 30.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(vn.vnf_count(), 3);
        assert_eq!(vn.link_count(), 3);
        assert!(vn.is_chain());
        assert!(vn.validate().is_ok());
        assert_eq!(vn.total_node_size(), 60.0);
        assert_eq!(vn.total_link_size(), 6.0);
        // Parent chain: 0 <- 1 <- 2 <- 3.
        assert_eq!(vn.parent(VnodeId(1)), Some((VnodeId(0), VlinkId(0))));
        assert_eq!(vn.parent(VnodeId(3)), Some((VnodeId(2), VlinkId(2))));
        assert_eq!(vn.parent(VnodeId(0)), None);
    }

    #[test]
    fn chain_rejects_mismatched_sizes() {
        assert!(VirtualNetwork::chain(&[1.0], &[]).is_err());
    }

    #[test]
    fn tree_with_branches() {
        let mut vn = VirtualNetwork::with_root();
        let (a, _) = vn
            .add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, 10.0, 1.0)
            .unwrap();
        let (_b, _) = vn.add_vnf(a, VnfKind::Standard, 20.0, 2.0).unwrap();
        let (_c, _) = vn.add_vnf(a, VnfKind::Standard, 30.0, 3.0).unwrap();
        assert!(!vn.is_chain());
        assert!(vn.validate().is_ok());
        assert_eq!(vn.children(a).len(), 2);
        assert_eq!(vn.bfs_order().len(), 4);
    }

    #[test]
    fn add_vnf_rejects_unknown_parent() {
        let mut vn = VirtualNetwork::with_root();
        assert_eq!(
            vn.add_vnf(VnodeId(5), VnfKind::Standard, 1.0, 1.0),
            Err(ModelError::UnknownVnode(VnodeId(5)))
        );
    }

    #[test]
    fn add_vnf_rejects_negative_sizes() {
        let mut vn = VirtualNetwork::with_root();
        assert!(vn
            .add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, -1.0, 1.0)
            .is_err());
        assert!(vn
            .add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, 1.0, -1.0)
            .is_err());
    }

    #[test]
    fn accelerator_discount_applies_downstream_only() {
        // θ → f0 → acc → f2 → f3 ; links sized 10 each.
        let mut vn = VirtualNetwork::with_root();
        let (f0, _) = vn
            .add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, 5.0, 10.0)
            .unwrap();
        let (acc, _) = vn.add_vnf(f0, VnfKind::Accelerator, 5.0, 10.0).unwrap();
        let (f2, e2) = vn.add_vnf(acc, VnfKind::Standard, 5.0, 10.0).unwrap();
        let (_f3, e3) = vn.add_vnf(f2, VnfKind::Standard, 5.0, 10.0).unwrap();
        vn.apply_accelerator_discount(0.3);
        // Links up to and including the accelerator keep their size.
        assert_eq!(vn.link(VlinkId(0)).beta, 10.0);
        assert_eq!(vn.link(VlinkId(1)).beta, 10.0);
        // Links strictly after the accelerator are reduced by 70%.
        assert!((vn.link(e2).beta - 3.0).abs() < 1e-12);
        assert!((vn.link(e3).beta - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_detection() {
        let mut vn = VirtualNetwork::with_root();
        assert!(!vn.has_gpu_vnf());
        vn.add_vnf(VirtualNetwork::ROOT, VnfKind::Gpu, 1.0, 1.0)
            .unwrap();
        assert!(vn.has_gpu_vnf());
    }

    #[test]
    fn validate_catches_nonzero_root() {
        let mut vn = VirtualNetwork::with_root();
        vn.node_mut(VirtualNetwork::ROOT).beta = 1.0;
        assert_eq!(vn.validate(), Err(ModelError::NonZeroRootSize(1.0)));
    }

    #[test]
    fn bfs_order_starts_at_root() {
        let vn = VirtualNetwork::chain(&[1.0, 1.0], &[1.0, 1.0]).unwrap();
        assert_eq!(vn.bfs_order()[0], VirtualNetwork::ROOT);
    }
}
