//! Deep-state runtime invariants — the model-level half of the
//! `strict-invariants` auditor.
//!
//! The lexical pass in `vne-audit` keeps nondeterminism *sources* out of
//! the tree; this module checks the *state* those guarantees protect.
//! [`audit_ledger`] verifies a [`LoadLedger`] holds no negative or
//! oversubscribed load, and [`audit_sharded`] verifies a
//! [`ShardedSubstrate`]'s global↔local maps round-trip and every link is
//! internal to exactly one shard or a cut link — never both, never
//! neither. The engine- and coordinator-level checks (ledger vs. alive
//! embeddings, departure calendars, cut churn factors) build on these
//! primitives in `vne-sim` and `vne-shard`, where the private state
//! lives.
//!
//! The functions here are always compiled (tests corrupt state on
//! purpose and expect them to notice); only the per-slot *hooks* in the
//! engine and the coordinator sit behind the `strict-invariants`
//! feature.

use crate::ids::{LinkId, NodeId};
use crate::load::{LoadLedger, CAPACITY_EPS};
use crate::shard::{LinkHome, ShardedSubstrate};

/// One violated runtime invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant broke (a short stable name, e.g.
    /// `ledger-oversubscribed`).
    pub invariant: &'static str,
    /// Human-readable specifics: element ids and the observed values.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Panics with a readable report when `violations` is non-empty —
/// the shared failure path of every `strict-invariants` hook.
///
/// # Panics
///
/// When `violations` is non-empty (that is the point).
pub fn enforce(context: &str, violations: &[InvariantViolation]) {
    assert!(
        violations.is_empty(),
        "strict-invariants: {} violation(s) in {context}:\n  {}",
        violations.len(),
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}

/// Checks a load ledger for negative load and capacity
/// oversubscription (within [`CAPACITY_EPS`] tolerance).
pub fn audit_ledger(ledger: &LoadLedger) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for i in 0..ledger.node_count() {
        let n = NodeId::from_index(i);
        let (cap, load) = (ledger.node_capacity_of(n), ledger.node_load(n));
        let tol = CAPACITY_EPS * cap.max(1.0);
        if load < -tol {
            out.push(InvariantViolation {
                invariant: "ledger-negative-load",
                detail: format!("node {n}: load {load} < 0"),
            });
        }
        if load > cap + tol {
            out.push(InvariantViolation {
                invariant: "ledger-oversubscribed",
                detail: format!("node {n}: load {load} > capacity {cap}"),
            });
        }
    }
    for i in 0..ledger.link_count() {
        let l = LinkId::from_index(i);
        let (cap, load) = (ledger.link_capacity_of(l), ledger.link_load(l));
        let tol = CAPACITY_EPS * cap.max(1.0);
        if load < -tol {
            out.push(InvariantViolation {
                invariant: "ledger-negative-load",
                detail: format!("link {l}: load {load} < 0"),
            });
        }
        if load > cap + tol {
            out.push(InvariantViolation {
                invariant: "ledger-oversubscribed",
                detail: format!("link {l}: load {load} > capacity {cap}"),
            });
        }
    }
    out
}

/// Checks a sharded substrate's derived maps against its source graph:
/// node global↔local ids round-trip, and every source link is internal
/// to exactly one shard XOR one of the cut links.
pub fn audit_sharded(sharded: &ShardedSubstrate) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let source = sharded.source();

    // Node map round-trip: global → (shard, local) → global.
    for (global, _) in source.nodes() {
        let home = sharded.home_of(global);
        if home.shard.index() >= sharded.shard_count() {
            out.push(InvariantViolation {
                invariant: "shard-node-home",
                detail: format!("node {global}: home shard {} out of range", home.shard),
            });
            continue;
        }
        let back = sharded.global_node(home.shard, home.local);
        if back != global {
            out.push(InvariantViolation {
                invariant: "shard-node-roundtrip",
                detail: format!("node {global} → ({}, {}) → {back}", home.shard, home.local),
            });
        }
    }

    // Link homes: internal XOR cut, each side consistent.
    let mut cut_seen = vec![0usize; sharded.cut_count()];
    for (global, link) in source.links() {
        match sharded.link_home(global) {
            LinkHome::Internal { shard, local } => {
                let back = sharded.global_link(shard, local);
                if back != global {
                    out.push(InvariantViolation {
                        invariant: "shard-link-roundtrip",
                        detail: format!("link {global} → ({shard}, {local}) → {back}"),
                    });
                }
                let (a, b) = (sharded.home_of(link.a), sharded.home_of(link.b));
                if a.shard != shard || b.shard != shard {
                    out.push(InvariantViolation {
                        invariant: "shard-link-internal",
                        detail: format!(
                            "link {global} claimed internal to {shard} but endpoints live in \
{} and {}",
                            a.shard, b.shard
                        ),
                    });
                }
            }
            LinkHome::Cut { index } => {
                let Some(cut) = sharded.cut_links().get(index) else {
                    out.push(InvariantViolation {
                        invariant: "shard-cut-index",
                        detail: format!("link {global}: cut index {index} out of range"),
                    });
                    continue;
                };
                cut_seen[index] += 1;
                if cut.global != global {
                    out.push(InvariantViolation {
                        invariant: "shard-cut-roundtrip",
                        detail: format!("link {global}: cut {index} names link {}", cut.global),
                    });
                }
                if cut.a.shard == cut.b.shard {
                    out.push(InvariantViolation {
                        invariant: "shard-cut-internal",
                        detail: format!(
                            "link {global}: cut {index} endpoints share shard {}",
                            cut.a.shard
                        ),
                    });
                }
            }
        }
    }
    // XOR, other direction: every cut entry is the home of exactly one
    // source link.
    for (index, count) in cut_seen.into_iter().enumerate() {
        if count != 1 {
            out.push(InvariantViolation {
                invariant: "shard-cut-orphan",
                detail: format!("cut {index} is the home of {count} links (expected 1)"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::Footprint;
    use crate::state::Snapshot;
    use crate::substrate::{SubstrateNetwork, Tier};

    fn pair() -> SubstrateNetwork {
        let mut s = SubstrateNetwork::new("pair");
        let a = s.add_node("a", Tier::Edge, 100.0, 1.0).unwrap();
        let b = s.add_node("b", Tier::Core, 200.0, 1.0).unwrap();
        s.add_link(a, b, 50.0, 1.0).unwrap();
        s
    }

    #[test]
    fn clean_ledger_passes() {
        let s = pair();
        let mut ledger = LoadLedger::new(&s);
        ledger.apply(
            &Footprint::from_parts(
                vec![(NodeId::from_index(0), 10.0)],
                vec![(LinkId::from_index(0), 5.0)],
            ),
            2.0,
        );
        assert!(audit_ledger(&ledger).is_empty());
    }

    #[test]
    fn oversubscribed_ledger_is_caught() {
        let s = pair();
        let mut ledger = LoadLedger::new(&s);
        // Corrupt through the public codec: a blob whose loads exceed
        // the capacities restores fine (restore validates dimensions
        // only) but must fail the audit.
        let mut w = crate::state::StateWriter::new();
        w.write(&vec![150.0f64, 0.0]);
        w.write(&vec![75.0f64]);
        ledger.restore(&w.finish()).unwrap();
        let violations = audit_ledger(&ledger);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations
            .iter()
            .all(|v| v.invariant == "ledger-oversubscribed"));
    }

    #[test]
    fn enforce_panics_with_report() {
        let v = vec![InvariantViolation {
            invariant: "test",
            detail: "boom".into(),
        }];
        let err = std::panic::catch_unwind(|| enforce("unit test", &v)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("strict-invariants") && msg.contains("boom"));
    }
}
