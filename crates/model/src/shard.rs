//! Sharded substrate views: a partition of one [`SubstrateNetwork`]
//! into `k` disjoint shards with global ↔ (shard, local-id) mapping and
//! cut-edge bookkeeping.
//!
//! A [`PartitionAssignment`] names the shard of every substrate node
//! (partitioners live in `vne-topology`; this module only defines the
//! partition *vocabulary*, so the coordinator crate can depend on it
//! without pulling in topology generation). A [`ShardedSubstrate`] is
//! the materialized view: one self-contained [`SubstrateNetwork`] per
//! shard — local node/link ids dense, in global-id order, names, tiers,
//! capacities and costs copied verbatim — plus the two-way id maps and
//! the [`CutLink`] table for links whose endpoints live in different
//! shards. With `k = 1` the single shard is an exact copy of the source
//! substrate (same ids, same element order), which is what lets a
//! one-shard coordinator replay byte-identically against the unsharded
//! engine.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{ModelError, ModelResult};
use crate::ids::{LinkId, NodeId};
use crate::substrate::SubstrateNetwork;

/// Identifier of one shard of a partitioned substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ShardId(pub u32);

impl ShardId {
    /// Creates an id from a dense index.
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("shard index fits u32"))
    }

    /// The dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// A node addressed by its shard and its shard-local id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardNodeRef {
    /// The shard owning the node.
    pub shard: ShardId,
    /// The node's dense id *inside* that shard's local substrate.
    pub local: NodeId,
}

/// A substrate link whose endpoints live in two different shards.
///
/// Cut links are not part of any shard-local substrate; the coordinator
/// uses them as gateways when it re-routes a spanning request into a
/// neighboring shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutLink {
    /// The link's id in the source (global) substrate.
    pub global: LinkId,
    /// The endpoint in the lower-numbered shard (`a.shard < b.shard`).
    pub a: ShardNodeRef,
    /// The endpoint in the higher-numbered shard.
    pub b: ShardNodeRef,
    /// The link's capacity (copied from the source substrate).
    pub capacity: f64,
    /// The link's per-CU cost (copied from the source substrate).
    pub cost: f64,
}

impl CutLink {
    /// The endpoint of this cut link that lies in `shard`, if any.
    pub fn endpoint_in(&self, shard: ShardId) -> Option<ShardNodeRef> {
        if self.a.shard == shard {
            Some(self.a)
        } else if self.b.shard == shard {
            Some(self.b)
        } else {
            None
        }
    }
}

/// Where a global link ended up in the sharded view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkHome {
    /// Both endpoints share a shard; the link exists there locally.
    Internal {
        /// The owning shard.
        shard: ShardId,
        /// The link's id inside that shard's local substrate.
        local: LinkId,
    },
    /// The endpoints live in different shards.
    Cut {
        /// Index into [`ShardedSubstrate::cut_links`].
        index: usize,
    },
}

/// A shard assignment for every node of a substrate: the output of a
/// partitioner, the input of [`ShardedSubstrate::new`].
///
/// Shard ids must be *dense*: with `k` shards every id in `0..k`
/// appears at least once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionAssignment {
    shard_of: Vec<u32>,
    shards: u32,
}

impl PartitionAssignment {
    /// Wraps a per-node shard vector (index = global node index).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] when the vector is empty
    /// or the shard ids are not dense (some id in `0..=max` is unused).
    pub fn new(shard_of: Vec<u32>) -> ModelResult<Self> {
        if shard_of.is_empty() {
            return Err(ModelError::InvalidQuantity {
                what: "partition size",
                value: 0.0,
            });
        }
        let shards = shard_of.iter().copied().max().unwrap_or(0) + 1;
        let mut seen = vec![false; shards as usize];
        for &s in &shard_of {
            seen[s as usize] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(ModelError::InvalidQuantity {
                what: "partition shard id density",
                value: missing as f64,
            });
        }
        Ok(Self { shard_of, shards })
    }

    /// The trivial single-shard assignment over `nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns an error when `nodes` is zero.
    pub fn single(nodes: usize) -> ModelResult<Self> {
        Self::new(vec![0; nodes])
    }

    /// Number of shards `k`.
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// Number of assigned nodes.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// Whether the assignment covers no nodes (never true for a
    /// constructed assignment).
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// The shard of a global node.
    ///
    /// # Panics
    ///
    /// Panics when the node is outside the assignment.
    pub fn shard_of(&self, node: NodeId) -> ShardId {
        ShardId(self.shard_of[node.index()])
    }

    /// The raw per-node shard vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.shard_of
    }
}

/// A substrate partitioned into `k` self-contained shard substrates.
///
/// Construction walks the source substrate once in global id order, so
/// shard-local ids are dense and ordered by global id — the property
/// the `k = 1` byte-parity guarantee rests on. The source substrate is
/// retained (shared reference workloads, gateway costs, the unsharded
/// baseline of benchmarks all need it).
#[derive(Debug, Clone)]
pub struct ShardedSubstrate {
    source: SubstrateNetwork,
    shards: Vec<SubstrateNetwork>,
    node_home: Vec<ShardNodeRef>,
    global_node: Vec<Vec<NodeId>>,
    link_home: Vec<LinkHome>,
    global_link: Vec<Vec<LinkId>>,
    cut_links: Vec<CutLink>,
    neighbors: Vec<Vec<ShardId>>,
    /// Per ordered shard pair: the indices of all cut links between the
    /// two shards, sorted by ascending `(cost, global link id)` — the
    /// explicit total order behind [`ShardedSubstrate::gateway`]'s
    /// cheapest-cut pick and its tie-break.
    pair_cuts: BTreeMap<(ShardId, ShardId), Vec<usize>>,
}

impl ShardedSubstrate {
    /// Materializes the sharded view of `substrate` under `assignment`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownNode`] when the assignment length
    /// does not match the substrate, propagates local construction
    /// errors, and returns [`ModelError::DisconnectedSubstrate`] when a
    /// shard's local substrate is not connected (partitioners must grow
    /// connected regions).
    pub fn new(
        substrate: &SubstrateNetwork,
        assignment: &PartitionAssignment,
    ) -> ModelResult<Self> {
        if assignment.len() != substrate.node_count() {
            return Err(ModelError::UnknownNode(NodeId::from_index(
                assignment.len().min(substrate.node_count()),
            )));
        }
        let k = assignment.shard_count();
        let mut shards: Vec<SubstrateNetwork> = (0..k)
            .map(|s| SubstrateNetwork::new(format!("{}/s{s}", substrate.name())))
            .collect();
        let mut node_home = Vec::with_capacity(substrate.node_count());
        let mut global_node = vec![Vec::new(); k];
        // Nodes, in global id order: local ids come out dense and ordered.
        for (gid, node) in substrate.nodes() {
            let shard = assignment.shard_of(gid);
            let local = shards[shard.index()].add_node(
                node.name.clone(),
                node.tier,
                node.capacity,
                node.cost,
            )?;
            shards[shard.index()].node_mut(local).gpu = node.gpu;
            node_home.push(ShardNodeRef { shard, local });
            global_node[shard.index()].push(gid);
        }
        // Links, in global id order: internal links keep relative order
        // inside their shard; cross-shard links become cut links.
        let mut link_home = Vec::with_capacity(substrate.link_count());
        let mut global_link = vec![Vec::new(); k];
        let mut cut_links = Vec::new();
        for (gid, link) in substrate.links() {
            let a = node_home[link.a.index()];
            let b = node_home[link.b.index()];
            if a.shard == b.shard {
                let local =
                    shards[a.shard.index()].add_link(a.local, b.local, link.capacity, link.cost)?;
                link_home.push(LinkHome::Internal {
                    shard: a.shard,
                    local,
                });
                global_link[a.shard.index()].push(gid);
            } else {
                let (lo, hi) = if a.shard < b.shard { (a, b) } else { (b, a) };
                link_home.push(LinkHome::Cut {
                    index: cut_links.len(),
                });
                cut_links.push(CutLink {
                    global: gid,
                    a: lo,
                    b: hi,
                    capacity: link.capacity,
                    cost: link.cost,
                });
            }
        }
        for shard in &shards {
            shard.validate()?;
        }
        // Cut-adjacency and gateways: for every ordered shard pair,
        // all cut links between the two shards sorted by the explicit
        // total order (cost, global link id) — `total_cmp` on the cost
        // so the order cannot flap across platforms on equal or odd
        // floats, global id as the deterministic tie-break. The gateway
        // is the far endpoint of the first entry.
        let mut neighbors = vec![Vec::new(); k];
        let mut pair_cuts: BTreeMap<(ShardId, ShardId), Vec<usize>> = BTreeMap::new();
        for (i, cut) in cut_links.iter().enumerate() {
            for (from, to) in [(cut.a, cut.b), (cut.b, cut.a)] {
                if !neighbors[from.shard.index()].contains(&to.shard) {
                    neighbors[from.shard.index()].push(to.shard);
                }
                pair_cuts.entry((from.shard, to.shard)).or_default().push(i);
            }
        }
        for indices in pair_cuts.values_mut() {
            indices.sort_by(|&x, &y| {
                let (a, b) = (&cut_links[x], &cut_links[y]);
                a.cost.total_cmp(&b.cost).then(a.global.cmp(&b.global))
            });
        }
        for n in &mut neighbors {
            n.sort_unstable();
        }
        Ok(Self {
            source: substrate.clone(),
            shards,
            node_home,
            global_node,
            link_home,
            global_link,
            cut_links,
            neighbors,
            pair_cuts,
        })
    }

    /// The source (global) substrate.
    pub fn source(&self) -> &SubstrateNetwork {
        &self.source
    }

    /// Number of shards `k`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's self-contained local substrate.
    pub fn shard(&self, shard: ShardId) -> &SubstrateNetwork {
        &self.shards[shard.index()]
    }

    /// Iterates `(shard id, local substrate)` in shard order.
    pub fn shards(&self) -> impl Iterator<Item = (ShardId, &SubstrateNetwork)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| (ShardId::from_index(i), s))
    }

    /// The shard and shard-local id of a global node.
    pub fn home_of(&self, node: NodeId) -> ShardNodeRef {
        self.node_home[node.index()]
    }

    /// The global id of a shard-local node.
    pub fn global_node(&self, shard: ShardId, local: NodeId) -> NodeId {
        self.global_node[shard.index()][local.index()]
    }

    /// Where a global link lives in the sharded view.
    pub fn link_home(&self, link: LinkId) -> LinkHome {
        self.link_home[link.index()]
    }

    /// The global id of a shard-local link.
    pub fn global_link(&self, shard: ShardId, local: LinkId) -> LinkId {
        self.global_link[shard.index()][local.index()]
    }

    /// All cut links, in global link-id order.
    pub fn cut_links(&self) -> &[CutLink] {
        &self.cut_links
    }

    /// Number of cut links (the edge-cut size of the partition).
    pub fn cut_count(&self) -> usize {
        self.cut_links.len()
    }

    /// Mutable access to the cut-link table. Test seam for the
    /// `strict-invariants` auditor (breaks the derived maps on purpose
    /// so [`crate::invariant::audit_sharded`] can be shown to catch
    /// it); never called by production code.
    #[doc(hidden)]
    pub fn debug_cut_links_mut(&mut self) -> &mut Vec<CutLink> {
        &mut self.cut_links
    }

    /// Mutable access to the node-home table. Test seam for the
    /// `strict-invariants` auditor; never called by production code.
    #[doc(hidden)]
    pub fn debug_node_home_mut(&mut self) -> &mut Vec<ShardNodeRef> {
        &mut self.node_home
    }

    /// The shards reachable from `shard` over at least one cut link,
    /// in ascending shard-id order (the coordinator's deterministic
    /// re-route order).
    pub fn neighbors(&self, shard: ShardId) -> &[ShardId] {
        &self.neighbors[shard.index()]
    }

    /// The gateway node used when re-routing a request from shard
    /// `from` into shard `to`: the `to`-side endpoint of the cheapest
    /// cut link between them, ties broken by lowest global link id
    /// (the explicit `(cost, global id)` total order — pinned by the
    /// gateway-determinism test). `None` when the shards share no cut
    /// link.
    pub fn gateway(&self, from: ShardId, to: ShardId) -> Option<ShardNodeRef> {
        let &first = self.pair_cuts.get(&(from, to))?.first()?;
        self.cut_links[first].endpoint_in(to)
    }

    /// The indices (into [`ShardedSubstrate::cut_links`]) of every cut
    /// link between `from` and `to`, sorted by ascending `(cost, global
    /// link id)` — the same order [`ShardedSubstrate::gateway`] picks
    /// from, so a coordinator overlaying link liveness can fall back to
    /// the next-cheapest cut deterministically. Empty when the shards
    /// share no cut link.
    pub fn cut_indices_between(&self, from: ShardId, to: ShardId) -> &[usize] {
        self.pair_cuts
            .get(&(from, to))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::Tier;

    /// A 6-node path with one extra chord: 0-1-2-3-4-5 plus 1-4.
    fn path_world() -> SubstrateNetwork {
        let mut s = SubstrateNetwork::new("path");
        let n: Vec<NodeId> = (0..6)
            .map(|i| {
                s.add_node(format!("n{i}"), Tier::Edge, 100.0, 1.0 + i as f64)
                    .unwrap()
            })
            .collect();
        for w in n.windows(2) {
            s.add_link(w[0], w[1], 50.0, 1.0).unwrap();
        }
        s.add_link(n[1], n[4], 10.0, 9.0).unwrap();
        s
    }

    #[test]
    fn dense_assignment_required() {
        assert!(PartitionAssignment::new(vec![]).is_err());
        assert!(PartitionAssignment::new(vec![0, 2]).is_err(), "gap at 1");
        let a = PartitionAssignment::new(vec![1, 0, 1]).unwrap();
        assert_eq!(a.shard_count(), 2);
        assert_eq!(a.shard_of(NodeId(0)), ShardId(1));
    }

    #[test]
    fn single_shard_copies_the_substrate() {
        let s = path_world();
        let sharded =
            ShardedSubstrate::new(&s, &PartitionAssignment::single(s.node_count()).unwrap())
                .unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.cut_count(), 0);
        let local = sharded.shard(ShardId(0));
        assert_eq!(local.node_count(), s.node_count());
        assert_eq!(local.link_count(), s.link_count());
        for (id, node) in s.nodes() {
            assert_eq!(
                sharded.home_of(id),
                ShardNodeRef {
                    shard: ShardId(0),
                    local: id,
                }
            );
            let l = local.node(id);
            assert_eq!((l.name.as_str(), l.tier), (node.name.as_str(), node.tier));
            assert_eq!(l.capacity.to_bits(), node.capacity.to_bits());
            assert_eq!(l.cost.to_bits(), node.cost.to_bits());
        }
        for (id, link) in s.links() {
            assert_eq!(
                sharded.link_home(id),
                LinkHome::Internal {
                    shard: ShardId(0),
                    local: id,
                }
            );
            let l = local.link(id);
            assert_eq!((l.a, l.b), (link.a, link.b));
        }
    }

    #[test]
    fn cut_links_record_both_endpoints() {
        let s = path_world();
        // Nodes 0-2 → shard 0, nodes 3-5 → shard 1: cuts are 2-3 and 1-4.
        let a = PartitionAssignment::new(vec![0, 0, 0, 1, 1, 1]).unwrap();
        let sharded = ShardedSubstrate::new(&s, &a).unwrap();
        assert_eq!(sharded.cut_count(), 2);
        for cut in sharded.cut_links() {
            assert!(cut.a.shard < cut.b.shard);
            let ga = sharded.global_node(cut.a.shard, cut.a.local);
            let gb = sharded.global_node(cut.b.shard, cut.b.local);
            let link = s.link(cut.global);
            assert_eq!(
                (ga.min(gb), ga.max(gb)),
                (link.a.min(link.b), link.a.max(link.b))
            );
            assert_eq!(cut.endpoint_in(cut.a.shard), Some(cut.a));
            assert_eq!(cut.endpoint_in(ShardId(7)), None);
        }
        assert_eq!(sharded.neighbors(ShardId(0)), &[ShardId(1)]);
        assert_eq!(sharded.neighbors(ShardId(1)), &[ShardId(0)]);
    }

    #[test]
    fn gateway_prefers_the_cheapest_cut() {
        let s = path_world();
        let a = PartitionAssignment::new(vec![0, 0, 0, 1, 1, 1]).unwrap();
        let sharded = ShardedSubstrate::new(&s, &a).unwrap();
        // Cuts: 2-3 (cost 1) and 1-4 (cost 9) → gateway into shard 1 is
        // node 3, gateway into shard 0 is node 2.
        let g01 = sharded.gateway(ShardId(0), ShardId(1)).unwrap();
        assert_eq!(sharded.global_node(g01.shard, g01.local), NodeId(3));
        let g10 = sharded.gateway(ShardId(1), ShardId(0)).unwrap();
        assert_eq!(sharded.global_node(g10.shard, g10.local), NodeId(2));
        assert_eq!(sharded.gateway(ShardId(0), ShardId(0)), None);
    }

    #[test]
    fn gateway_ties_break_by_global_link_id() {
        // Two shards joined by three cut links: costs 2.0, 2.0, 1.0 in
        // global id order. The cheapest (cost 1.0) wins outright; with
        // it removed, the two equal-cost cuts must tie-break on the
        // lower global link id, not on insertion or float quirks.
        let mut s = SubstrateNetwork::new("ties");
        let n: Vec<NodeId> = (0..4)
            .map(|i| s.add_node(format!("n{i}"), Tier::Edge, 100.0, 1.0).unwrap())
            .collect();
        s.add_link(n[0], n[1], 50.0, 1.0).unwrap(); // internal, shard 0
        s.add_link(n[2], n[3], 50.0, 1.0).unwrap(); // internal, shard 1
        let cut_eq_a = s.add_link(n[0], n[2], 50.0, 2.0).unwrap();
        let cut_eq_b = s.add_link(n[0], n[3], 50.0, 2.0).unwrap();
        let cut_cheap = s.add_link(n[1], n[3], 50.0, 1.0).unwrap();
        let a = PartitionAssignment::new(vec![0, 0, 1, 1]).unwrap();
        let sharded = ShardedSubstrate::new(&s, &a).unwrap();

        let order: Vec<LinkId> = sharded
            .cut_indices_between(ShardId(0), ShardId(1))
            .iter()
            .map(|&i| sharded.cut_links()[i].global)
            .collect();
        assert_eq!(
            order,
            vec![cut_cheap, cut_eq_a, cut_eq_b],
            "cuts must sort by (cost, global link id)"
        );
        // The gateway is the far endpoint of the first entry, both ways.
        let g01 = sharded.gateway(ShardId(0), ShardId(1)).unwrap();
        assert_eq!(sharded.global_node(g01.shard, g01.local), n[3]);
        let g10 = sharded.gateway(ShardId(1), ShardId(0)).unwrap();
        assert_eq!(sharded.global_node(g10.shard, g10.local), n[1]);
    }

    #[test]
    fn disconnected_shard_is_rejected() {
        let s = path_world();
        // Shard 0 = {0, 5}: not connected inside the shard.
        let a = PartitionAssignment::new(vec![0, 1, 1, 1, 1, 0]).unwrap();
        assert_eq!(
            ShardedSubstrate::new(&s, &a).unwrap_err(),
            ModelError::DisconnectedSubstrate
        );
    }

    #[test]
    fn assignment_length_must_match() {
        let s = path_world();
        let a = PartitionAssignment::new(vec![0, 0]).unwrap();
        assert!(ShardedSubstrate::new(&s, &a).is_err());
    }

    #[test]
    fn local_ids_are_dense_and_ordered() {
        let s = path_world();
        let a = PartitionAssignment::new(vec![0, 1, 0, 1, 1, 1]).unwrap();
        // Shard 0 = {0, 2}: not adjacent → disconnected. Use a valid cut.
        assert!(ShardedSubstrate::new(&s, &a).is_err());
        let a = PartitionAssignment::new(vec![0, 0, 1, 1, 1, 1]).unwrap();
        let sharded = ShardedSubstrate::new(&s, &a).unwrap();
        for (sid, local) in sharded.shards() {
            let mut last = None;
            for lid in local.node_ids() {
                let gid = sharded.global_node(sid, lid);
                assert_eq!(
                    sharded.home_of(gid),
                    ShardNodeRef {
                        shard: sid,
                        local: lid,
                    }
                );
                if let Some(prev) = last {
                    assert!(gid > prev, "global order preserved");
                }
                last = Some(gid);
            }
        }
    }
}
