//! Substrate churn: failures, repairs, drains and maintenance windows.
//!
//! The base model assumes a static substrate; production substrates are
//! not static. A [`ChurnEvent`] announces a change to one substrate
//! element's *usable* capacity at the start of a slot — a hard failure
//! ([`ChurnEvent::NodeDown`] / [`ChurnEvent::LinkDown`]), a repair
//! ([`ChurnEvent::NodeUp`] / [`ChurnEvent::LinkUp`]) or a partial drain
//! to a fraction of nameplate capacity ([`ChurnEvent::NodeDrain`] /
//! [`ChurnEvent::LinkDrain`]). Maintenance windows are expressed by the
//! generator as a `Down` at the window start and an `Up` at its end.
//!
//! Events carry *absolute* factors (not deltas): applying the same event
//! twice is idempotent, which keeps checkpoint/resume trivial — the
//! engine snapshots the folded [`ChurnState`] and re-derives the
//! effective capacities on restore instead of replaying event history.

use serde::{Deserialize, Serialize};

use crate::ids::{LinkId, NodeId};
use crate::state::{
    Snapshot, StateBlob, StateDecode, StateEncode, StateError, StateReader, StateWriter,
};
use crate::substrate::SubstrateNetwork;

/// One substrate capacity change, applied at the start of a slot before
/// that slot's arrivals are processed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// Hard node failure: usable capacity drops to zero.
    NodeDown(NodeId),
    /// Node repair: usable capacity returns to nameplate.
    NodeUp(NodeId),
    /// Hard link failure: usable capacity drops to zero.
    LinkDown(LinkId),
    /// Link repair: usable capacity returns to nameplate.
    LinkUp(LinkId),
    /// Node drained to `factor · cap` (absolute, `0 ≤ factor ≤ 1`).
    NodeDrain {
        /// The drained node.
        node: NodeId,
        /// Fraction of nameplate capacity left usable.
        factor: f64,
    },
    /// Link drained to `factor · cap` (absolute, `0 ≤ factor ≤ 1`).
    LinkDrain {
        /// The drained link.
        link: LinkId,
        /// Fraction of nameplate capacity left usable.
        factor: f64,
    },
}

impl StateEncode for ChurnEvent {
    fn encode(&self, w: &mut StateWriter) {
        match self {
            ChurnEvent::NodeDown(n) => {
                w.write_u8(0);
                w.write(n);
            }
            ChurnEvent::NodeUp(n) => {
                w.write_u8(1);
                w.write(n);
            }
            ChurnEvent::LinkDown(l) => {
                w.write_u8(2);
                w.write(l);
            }
            ChurnEvent::LinkUp(l) => {
                w.write_u8(3);
                w.write(l);
            }
            ChurnEvent::NodeDrain { node, factor } => {
                w.write_u8(4);
                w.write(node);
                w.write_f64(*factor);
            }
            ChurnEvent::LinkDrain { link, factor } => {
                w.write_u8(5);
                w.write(link);
                w.write_f64(*factor);
            }
        }
    }
}

impl StateDecode for ChurnEvent {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(match r.read_u8()? {
            0 => ChurnEvent::NodeDown(r.read()?),
            1 => ChurnEvent::NodeUp(r.read()?),
            2 => ChurnEvent::LinkDown(r.read()?),
            3 => ChurnEvent::LinkUp(r.read()?),
            4 => ChurnEvent::NodeDrain {
                node: r.read()?,
                factor: r.read_f64()?,
            },
            5 => ChurnEvent::LinkDrain {
                link: r.read()?,
                factor: r.read_f64()?,
            },
            tag => return Err(StateError::Corrupt(format!("invalid churn tag {tag}"))),
        })
    }
}

/// The usable capacities of every substrate element after churn:
/// nameplate capacity times the element's current churn factor.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectiveCapacities {
    /// Usable capacity per node, indexed by [`NodeId`].
    pub node: Vec<f64>,
    /// Usable capacity per link, indexed by [`LinkId`].
    pub link: Vec<f64>,
}

/// The folded churn state of a substrate: one usable-capacity factor in
/// `[0, 1]` per element (1.0 = pristine).
///
/// Because [`ChurnEvent`]s are absolute, this is a memoryless fold: the
/// state after any event prefix is just the per-element latest factor.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnState {
    node_factor: Vec<f64>,
    link_factor: Vec<f64>,
}

impl ChurnState {
    /// All factors at 1.0 (no churn yet) over the given substrate.
    pub fn pristine(substrate: &SubstrateNetwork) -> Self {
        Self {
            node_factor: vec![1.0; substrate.node_count()],
            link_factor: vec![1.0; substrate.link_count()],
        }
    }

    /// Whether every factor is exactly 1.0.
    pub fn is_pristine(&self) -> bool {
        self.node_factor.iter().all(|&f| f == 1.0) && self.link_factor.iter().all(|&f| f == 1.0)
    }

    /// Current factor of node `n`.
    pub fn node_factor(&self, n: NodeId) -> f64 {
        self.node_factor[n.index()]
    }

    /// Current factor of link `l`.
    pub fn link_factor(&self, l: LinkId) -> f64 {
        self.link_factor[l.index()]
    }

    /// Applies one event (idempotent — factors are absolute).
    ///
    /// # Panics
    ///
    /// Panics when the event references an element outside this
    /// substrate, or carries a factor outside `[0, 1]` — both indicate a
    /// malformed churn stream, not a recoverable condition.
    pub fn apply(&mut self, event: &ChurnEvent) {
        let (node, link, factor) = match *event {
            ChurnEvent::NodeDown(n) => (Some(n), None, 0.0),
            ChurnEvent::NodeUp(n) => (Some(n), None, 1.0),
            ChurnEvent::LinkDown(l) => (None, Some(l), 0.0),
            ChurnEvent::LinkUp(l) => (None, Some(l), 1.0),
            ChurnEvent::NodeDrain { node, factor } => (Some(node), None, factor),
            ChurnEvent::LinkDrain { link, factor } => (None, Some(link), factor),
        };
        assert!(
            factor.is_finite() && (0.0..=1.0).contains(&factor),
            "churn event {event:?} carries factor {factor} outside [0, 1]"
        );
        if let Some(n) = node {
            assert!(
                n.index() < self.node_factor.len(),
                "churn event {event:?} references node {n} but the substrate has {} nodes",
                self.node_factor.len()
            );
            self.node_factor[n.index()] = factor;
        }
        if let Some(l) = link {
            assert!(
                l.index() < self.link_factor.len(),
                "churn event {event:?} references link {l} but the substrate has {} links",
                self.link_factor.len()
            );
            self.link_factor[l.index()] = factor;
        }
    }

    /// The usable capacities under the current factors (nameplate × factor).
    ///
    /// # Panics
    ///
    /// Panics when `substrate` has different dimensions than the one
    /// this state was created over.
    pub fn effective(&self, substrate: &SubstrateNetwork) -> EffectiveCapacities {
        assert_eq!(
            (substrate.node_count(), substrate.link_count()),
            (self.node_factor.len(), self.link_factor.len()),
            "churn state dimensions do not match substrate"
        );
        EffectiveCapacities {
            node: substrate
                .nodes()
                .map(|(id, n)| n.capacity * self.node_factor[id.index()])
                .collect(),
            link: substrate
                .links()
                .map(|(id, l)| l.capacity * self.link_factor[id.index()])
                .collect(),
        }
    }
}

impl StateEncode for ChurnState {
    fn encode(&self, w: &mut StateWriter) {
        w.write(&self.node_factor);
        w.write(&self.link_factor);
    }
}

impl StateDecode for ChurnState {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            node_factor: r.read()?,
            link_factor: r.read()?,
        })
    }
}

impl Snapshot for ChurnState {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write(self);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let decoded: ChurnState = r.read()?;
        r.finish()?;
        if decoded.node_factor.len() != self.node_factor.len()
            || decoded.link_factor.len() != self.link_factor.len()
        {
            return Err(StateError::Mismatch {
                expected: format!(
                    "churn state over {} nodes / {} links",
                    self.node_factor.len(),
                    self.link_factor.len()
                ),
                found: format!(
                    "factors for {} nodes / {} links",
                    decoded.node_factor.len(),
                    decoded.link_factor.len()
                ),
            });
        }
        *self = decoded;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::Tier;

    fn pair() -> (SubstrateNetwork, NodeId, NodeId, LinkId) {
        let mut s = SubstrateNetwork::new("pair");
        let a = s.add_node("a", Tier::Edge, 100.0, 1.0).unwrap();
        let b = s.add_node("b", Tier::Core, 200.0, 1.0).unwrap();
        let l = s.add_link(a, b, 50.0, 1.0).unwrap();
        (s, a, b, l)
    }

    #[test]
    fn events_fold_to_absolute_factors() {
        let (s, a, b, l) = pair();
        let mut churn = ChurnState::pristine(&s);
        assert!(churn.is_pristine());
        churn.apply(&ChurnEvent::NodeDown(a));
        churn.apply(&ChurnEvent::LinkDrain {
            link: l,
            factor: 0.5,
        });
        assert!(!churn.is_pristine());
        let eff = churn.effective(&s);
        assert_eq!(eff.node[a.index()], 0.0);
        assert_eq!(eff.node[b.index()], 200.0);
        assert_eq!(eff.link[l.index()], 25.0);
        // Idempotent: same event twice, same state.
        let before = churn.clone();
        churn.apply(&ChurnEvent::NodeDown(a));
        assert_eq!(churn, before);
        churn.apply(&ChurnEvent::NodeUp(a));
        churn.apply(&ChurnEvent::LinkUp(l));
        assert!(churn.is_pristine());
    }

    #[test]
    #[should_panic(expected = "references node")]
    fn out_of_range_node_panics() {
        let (s, ..) = pair();
        let mut churn = ChurnState::pristine(&s);
        churn.apply(&ChurnEvent::NodeDown(NodeId(7)));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_factor_panics() {
        let (s, a, ..) = pair();
        let mut churn = ChurnState::pristine(&s);
        churn.apply(&ChurnEvent::NodeDrain {
            node: a,
            factor: 1.5,
        });
    }

    #[test]
    fn events_and_state_roundtrip() {
        let (s, a, _b, l) = pair();
        let events = vec![
            ChurnEvent::NodeDown(a),
            ChurnEvent::NodeUp(a),
            ChurnEvent::LinkDown(l),
            ChurnEvent::LinkUp(l),
            ChurnEvent::NodeDrain {
                node: a,
                factor: 0.25,
            },
            ChurnEvent::LinkDrain {
                link: l,
                factor: 0.75,
            },
        ];
        let mut w = StateWriter::new();
        w.write(&events);
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert_eq!(r.read::<Vec<ChurnEvent>>().unwrap(), events);
        r.finish().unwrap();

        let mut churn = ChurnState::pristine(&s);
        for ev in &events {
            churn.apply(ev);
        }
        let blob = churn.snapshot();
        let mut fresh = ChurnState::pristine(&s);
        fresh.restore(&blob).unwrap();
        assert_eq!(fresh, churn);
        assert_eq!(fresh.snapshot(), blob);
    }

    #[test]
    fn restore_rejects_wrong_dimensions() {
        let (s, ..) = pair();
        let churn = ChurnState::pristine(&s);
        let blob = churn.snapshot();
        let mut solo = SubstrateNetwork::new("solo");
        solo.add_node("x", Tier::Edge, 1.0, 1.0).unwrap();
        let mut wrong = ChurnState::pristine(&solo);
        assert!(matches!(
            wrong.restore(&blob),
            Err(StateError::Mismatch { .. })
        ));
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        let mut w = StateWriter::new();
        w.write_u8(9);
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert!(matches!(
            r.read::<ChurnEvent>(),
            Err(StateError::Corrupt(_))
        ));
    }
}
