#![warn(missing_docs)]
//! # vne-model — domain model for virtual network embedding
//!
//! This crate defines the entities of the online VNE problem exactly as
//! formalized in *"Plan-Based Scalable Online Virtual Network Embedding"*
//! (ICDCS 2025), Table I:
//!
//! * [`substrate`] — the physical network `S`: tiered datacenters and
//!   links with capacities `cap(s)` and per-CU costs `cost(s)`;
//! * [`vnet`] / [`app`] — applications `a ∈ A` as rooted tree virtual
//!   networks `Ga` with element sizes `β_q`;
//! * [`policy`] — the inefficiency coefficients `η_s^q` as a placement
//!   policy (GPU restrictions, tier multipliers);
//! * [`request`] — online requests `r` with ingress `v(r)`, demand `d(r)`,
//!   arrival `t(r)` and duration `T(r)`;
//! * [`embedding`] — unsplittable mappings `x(r)` and their per-element
//!   footprints (Eq. 1);
//! * [`load`] — residual capacity ledgers (`Res(S,t,x)`, Eq. 16);
//! * [`cost`] — resource costs and rejection penalties (Eqs. 3–4);
//! * [`decision`] — per-request admission decisions as reported by the
//!   `vne-serve` daemon (accept / reject / shed);
//! * [`state`] — the [`state::Snapshot`] checkpoint capability and the
//!   deterministic binary codec behind checkpoint/resume;
//! * [`shard`] — partitioned-substrate views: global ↔ (shard, local)
//!   id maps and cut-edge bookkeeping for the `vne-shard` coordinator.
//!
//! Higher layers build on this crate: `vne-topology` constructs substrate
//! instances, `vne-workload` generates requests, `vne-olive` implements
//! PLAN-VNE and the online algorithms, `vne-sim` drives simulations.
//!
//! ## Example
//!
//! ```
//! use vne_model::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut s = SubstrateNetwork::new("toy");
//! let e = s.add_node("edge", Tier::Edge, 200_000.0, 50.0)?;
//! let c = s.add_node("core", Tier::Core, 1_800_000.0, 1.0)?;
//! s.add_link(e, c, 100_000.0, 1.0)?;
//!
//! let vnet = VirtualNetwork::chain(&[50.0, 50.0], &[50.0, 50.0])?;
//! let mut apps = AppSet::new();
//! let app = apps.push("chain", AppShape::Chain, vnet)?;
//!
//! let request = Request {
//!     id: RequestId(0), arrival: 0, duration: 10,
//!     ingress: e, app, demand: 10.0,
//! };
//! assert!(request.active_at(5));
//! # Ok(())
//! # }
//! ```

pub mod app;
pub mod churn;
pub mod cost;
pub mod decision;
pub mod embedding;
pub mod error;
pub mod ids;
pub mod invariant;
pub mod load;
pub mod policy;
pub mod request;
pub mod shard;
pub mod state;
pub mod substrate;
pub mod vnet;

/// Commonly used types, re-exported for one-line imports.
pub mod prelude {
    pub use crate::app::{AppSet, AppShape, Application};
    pub use crate::churn::{ChurnEvent, ChurnState, EffectiveCapacities};
    pub use crate::cost::RejectionPenalty;
    pub use crate::decision::Decision;
    pub use crate::embedding::{Embedding, Footprint};
    pub use crate::error::{ModelError, ModelResult};
    pub use crate::ids::{AppId, ClassId, ElementId, LinkId, NodeId, RequestId, VlinkId, VnodeId};
    pub use crate::load::LoadLedger;
    pub use crate::policy::PlacementPolicy;
    pub use crate::request::{Request, Slot, SlotEvents};
    pub use crate::shard::{PartitionAssignment, ShardId, ShardedSubstrate};
    pub use crate::state::{Snapshot, StateBlob, StateError};
    pub use crate::substrate::{SubstrateNetwork, Tier};
    pub use crate::vnet::{VirtualNetwork, VnfKind};
}
