//! Checkpointable state: the [`Snapshot`] capability and its wire codec.
//!
//! Long-horizon streaming runs need to survive interruption and support
//! warm-started what-if forks mid-stream. Every stateful component of
//! the pipeline — online algorithms, the engine's active-request state,
//! summary observers, demand estimators — implements [`Snapshot`]:
//! serialize the *mutable* state into a [`StateBlob`], restore it into a
//! freshly constructed instance later. Immutable construction inputs
//! (substrate, application catalogue, plan, configuration) are *not*
//! part of a blob: a resume first rebuilds the component from the same
//! deterministic configuration, then restores the blob onto it.
//!
//! The wire format is a deliberately boring little-endian binary
//! encoding ([`StateWriter`] / [`StateReader`]): fixed-width integers,
//! `f64` as IEEE bit patterns (so restored floats are *bit-identical* —
//! the checkpoint/resume guarantee is byte-identical results, not
//! approximately-equal ones), length-prefixed strings, vectors and
//! nested blobs. The vendored `serde` shim derives are inert, so the
//! codec here is the single real serialization path of the workspace;
//! swapping the real `serde` back in does not change it.
//!
//! Determinism contract: a `Snapshot` implementation must serialize
//! unordered containers (hash maps) in a canonical order (sorted by
//! key), so `snapshot → restore → snapshot` is blob-equal — the
//! round-trip property pinned by the checkpoint test battery.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{AppId, ClassId, LinkId, NodeId, RequestId};
use crate::request::Request;

/// An opaque, self-contained serialization of one component's mutable
/// state.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct StateBlob(Vec<u8>);

impl StateBlob {
    /// Wraps raw bytes (e.g. read back from a checkpoint file).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self(bytes)
    }

    /// The serialized bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the blob into its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the blob is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for StateBlob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateBlob({} bytes)", self.0.len())
    }
}

/// The error returned when a blob cannot be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The blob ended before a read completed.
    UnexpectedEof {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes left in the blob.
        remaining: usize,
    },
    /// Bytes were left over after a component finished decoding.
    TrailingBytes {
        /// Leftover byte count.
        remaining: usize,
    },
    /// The blob decoded but its content is inconsistent with the
    /// component it is being restored into.
    Mismatch {
        /// What the restoring component expected.
        expected: String,
        /// What the blob carried.
        found: String,
    },
    /// The component does not support state snapshots.
    Unsupported(String),
    /// Structurally invalid data (bad magic, bad tag, bad UTF-8, …).
    Corrupt(String),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::UnexpectedEof { needed, remaining } => write!(
                f,
                "state blob truncated: needed {needed} more bytes, {remaining} remaining"
            ),
            StateError::TrailingBytes { remaining } => {
                write!(f, "state blob has {remaining} trailing bytes")
            }
            StateError::Mismatch { expected, found } => {
                write!(f, "state mismatch: expected {expected}, found {found}")
            }
            StateError::Unsupported(what) => {
                write!(f, "{what} does not support state snapshots")
            }
            StateError::Corrupt(why) => write!(f, "corrupt state blob: {why}"),
        }
    }
}

impl std::error::Error for StateError {}

/// The checkpoint capability: serialize mutable state, restore it into
/// a freshly constructed instance.
///
/// `restore` replaces the receiver's mutable state wholesale; it must
/// validate structural compatibility (dimensions, names) against the
/// receiver's construction-time configuration and leave the receiver
/// untouched on error where practical.
pub trait Snapshot {
    /// Serializes the mutable state.
    fn snapshot(&self) -> StateBlob;

    /// Restores previously snapshotted state.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] when the blob is malformed or does not
    /// fit this instance's configuration.
    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError>;
}

impl<S: Snapshot + ?Sized> Snapshot for &mut S {
    fn snapshot(&self) -> StateBlob {
        (**self).snapshot()
    }
    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        (**self).restore(blob)
    }
}

/// Append-only encoder producing a [`StateBlob`].
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes into a blob.
    pub fn finish(self) -> StateBlob {
        StateBlob(self.buf)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Writes an `f64` as its IEEE bit pattern (bit-exact round-trip).
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn write_bool(&mut self, x: bool) {
        self.write_u8(u8::from(x));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a nested blob with a length prefix (composing snapshots).
    pub fn write_blob(&mut self, blob: &StateBlob) {
        self.write_usize(blob.0.len());
        self.buf.extend_from_slice(&blob.0);
    }

    /// Encodes any [`StateEncode`] value.
    pub fn write<T: StateEncode + ?Sized>(&mut self, value: &T) {
        value.encode(self);
    }

    /// Encodes a sequence with a length prefix.
    pub fn write_seq<'a, T: StateEncode + 'a>(
        &mut self,
        items: impl ExactSizeIterator<Item = &'a T>,
    ) {
        self.write_usize(items.len());
        for item in items {
            item.encode(self);
        }
    }
}

/// Cursor decoding a [`StateBlob`].
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over one blob.
    pub fn new(blob: &'a StateBlob) -> Self {
        Self {
            buf: &blob.0,
            pos: 0,
        }
    }

    /// A reader over raw bytes (checkpoint file parsing).
    pub fn from_bytes(bytes: &'a [u8]) -> Self {
        Self { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the blob was fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::TrailingBytes`] when bytes are left over.
    pub fn finish(&self) -> Result<(), StateError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StateError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        if self.remaining() < n {
            return Err(StateError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, StateError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `u64`-encoded `usize`.
    pub fn read_usize(&mut self) -> Result<usize, StateError> {
        usize::try_from(self.read_u64()?)
            .map_err(|_| StateError::Corrupt("usize out of range".into()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a bool.
    pub fn read_bool(&mut self) -> Result<bool, StateError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StateError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String, StateError> {
        let len = self.read_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StateError::Corrupt("invalid UTF-8 string".into()))
    }

    /// Reads a length-prefixed nested blob.
    pub fn read_blob(&mut self) -> Result<StateBlob, StateError> {
        let len = self.read_usize()?;
        Ok(StateBlob(self.take(len)?.to_vec()))
    }

    /// Decodes any [`StateDecode`] value.
    pub fn read<T: StateDecode>(&mut self) -> Result<T, StateError> {
        T::decode(self)
    }

    /// Decodes a length-prefixed sequence.
    pub fn read_seq<T: StateDecode>(&mut self) -> Result<Vec<T>, StateError> {
        let len = self.read_usize()?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }
}

/// Value types with a canonical state encoding.
pub trait StateEncode {
    /// Appends this value to the writer.
    fn encode(&self, w: &mut StateWriter);
}

/// Value types decodable from their [`StateEncode`] encoding.
pub trait StateDecode: Sized {
    /// Reads one value.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on malformed input.
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError>;
}

macro_rules! primitive_codec {
    ($($t:ty => $w:ident / $r:ident),* $(,)?) => {$(
        impl StateEncode for $t {
            fn encode(&self, w: &mut StateWriter) {
                w.$w(*self);
            }
        }
        impl StateDecode for $t {
            fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
                r.$r()
            }
        }
    )*};
}

primitive_codec!(
    u8 => write_u8 / read_u8,
    u32 => write_u32 / read_u32,
    u64 => write_u64 / read_u64,
    usize => write_usize / read_usize,
    f64 => write_f64 / read_f64,
    bool => write_bool / read_bool,
);

impl StateEncode for str {
    fn encode(&self, w: &mut StateWriter) {
        w.write_str(self);
    }
}

impl StateEncode for String {
    fn encode(&self, w: &mut StateWriter) {
        w.write_str(self);
    }
}

impl StateDecode for String {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        r.read_str()
    }
}

macro_rules! id_codec {
    ($($t:ty: $repr:ty),* $(,)?) => {$(
        impl StateEncode for $t {
            fn encode(&self, w: &mut StateWriter) {
                w.write_u64(u64::from(self.0));
            }
        }
        impl StateDecode for $t {
            fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
                let raw = r.read_u64()?;
                <$repr>::try_from(raw)
                    .map(Self)
                    .map_err(|_| StateError::Corrupt(format!(
                        "id {raw} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

id_codec!(NodeId: u32, LinkId: u32, AppId: u32, RequestId: u64);

impl StateEncode for ClassId {
    fn encode(&self, w: &mut StateWriter) {
        w.write(&self.app);
        w.write(&self.ingress);
    }
}

impl StateDecode for ClassId {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            app: r.read()?,
            ingress: r.read()?,
        })
    }
}

impl StateEncode for Request {
    fn encode(&self, w: &mut StateWriter) {
        w.write(&self.id);
        w.write_u32(self.arrival);
        w.write_u32(self.duration);
        w.write(&self.ingress);
        w.write(&self.app);
        w.write_f64(self.demand);
    }
}

impl StateDecode for Request {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            id: r.read()?,
            arrival: r.read_u32()?,
            duration: r.read_u32()?,
            ingress: r.read()?,
            app: r.read()?,
            demand: r.read_f64()?,
        })
    }
}

impl StateEncode for crate::embedding::Footprint {
    fn encode(&self, w: &mut StateWriter) {
        w.write_seq(self.nodes().iter());
        w.write_seq(self.links().iter());
    }
}

impl StateDecode for crate::embedding::Footprint {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let nodes: Vec<(NodeId, f64)> = r.read_seq()?;
        let links: Vec<(LinkId, f64)> = r.read_seq()?;
        // Entries were consolidated + sorted at snapshot time, so
        // `from_parts` is the identity on them — exact round-trip.
        Ok(Self::from_parts(nodes, links))
    }
}

impl StateEncode for crate::embedding::Embedding {
    fn encode(&self, w: &mut StateWriter) {
        w.write_seq(self.node_map().iter());
        w.write_usize(self.link_paths().len());
        for path in self.link_paths() {
            w.write_seq(path.iter());
        }
    }
}

impl StateDecode for crate::embedding::Embedding {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let node_map: Vec<NodeId> = r.read_seq()?;
        let paths = r.read_usize()?;
        let mut link_paths = Vec::with_capacity(paths.min(1 << 20));
        for _ in 0..paths {
            link_paths.push(r.read_seq()?);
        }
        Ok(Self::new(node_map, link_paths))
    }
}

impl<A: StateEncode, B: StateEncode> StateEncode for (A, B) {
    fn encode(&self, w: &mut StateWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: StateDecode, B: StateDecode> StateDecode for (A, B) {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: StateEncode> StateEncode for Vec<T> {
    fn encode(&self, w: &mut StateWriter) {
        w.write_seq(self.iter());
    }
}

impl<T: StateDecode> StateDecode for Vec<T> {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        r.read_seq()
    }
}

impl<T: StateEncode> StateEncode for Option<T> {
    fn encode(&self, w: &mut StateWriter) {
        match self {
            None => w.write_bool(false),
            Some(v) => {
                w.write_bool(true);
                v.encode(w);
            }
        }
    }
}

impl<T: StateDecode> StateDecode for Option<T> {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(if r.read_bool()? {
            Some(T::decode(r)?)
        } else {
            None
        })
    }
}

// BTreeMaps iterate in key order, so the encoding is canonical as-is.
impl<K: StateEncode, V: StateEncode> StateEncode for BTreeMap<K, V> {
    fn encode(&self, w: &mut StateWriter) {
        w.write_usize(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
}

impl<K: StateDecode + Ord, V: StateDecode> StateDecode for BTreeMap<K, V> {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let len = r.read_usize()?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

/// A versioned checkpoint of a *sharded* run: the partition map, one
/// engine-state blob and one algorithm-state blob per shard, the
/// coordinator's own cursors (stats, spanning bookkeeping, cut-link
/// churn factors — opaque here, typed in the coordinator crate), and
/// the resumable observer state.
///
/// Two serialized forms exist, both produced losslessly from this
/// struct:
///
/// * the **standalone file format** ([`ShardCheckpoint::to_bytes`] /
///   [`ShardCheckpoint::from_bytes`], magic `VNESHRD1`), and
/// * the **engine-checkpoint embedding** ([`ShardCheckpoint::pack`] /
///   [`ShardCheckpoint::unpack`]): the per-shard state packed into the
///   two blobs of a monolithic engine checkpoint, so a `Checkpointer`
///   observing a sharded coordinator serializes sharded state through
///   the unmodified single-engine checkpoint path.
///
/// This module only defines the container and its wire codec; the
/// semantics (what the coordinator blob means, how shards restore) live
/// in the coordinator crate, mirroring how [`Snapshot`] splits wire
/// format from component semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// The last slot the checkpointed run completed; a resume consumes
    /// events from `slot + 1` on.
    pub slot: u32,
    /// Name of the per-shard algorithm (validated on resume; all shards
    /// run the same algorithm).
    pub algorithm: String,
    /// The per-node shard assignment the run was partitioned under
    /// (index = global node index). A resume validates it against the
    /// coordinator's own partition — restoring shard-local state under
    /// a different cut would silently corrupt every id map.
    pub partition: Vec<u32>,
    /// One engine-state snapshot per shard, in shard order.
    pub engines: Vec<StateBlob>,
    /// One algorithm-state snapshot per shard, in shard order.
    pub algorithms: Vec<StateBlob>,
    /// The coordinator's cursors: merged stream stats, spanning
    /// counters, pending spanning bookkeeping and cut-link churn
    /// factors. Opaque at this layer.
    pub coordinator: StateBlob,
    /// The resumable observer state (owner-defined).
    pub observer_state: StateBlob,
}

impl ShardCheckpoint {
    /// Magic + version prefix of the standalone serialized form.
    pub const MAGIC: [u8; 8] = *b"VNESHRD1";

    /// Tag prefixed to the packed engine blob so a resume can tell a
    /// sharded composite from a monolithic engine snapshot.
    const ENGINE_TAG: &'static str = "SHRDENG1";

    /// Serializes the standalone file format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        for b in Self::MAGIC {
            w.write_u8(b);
        }
        w.write_u32(self.slot);
        w.write_str(&self.algorithm);
        let (engine, algorithm_state) = self.pack();
        w.write_blob(&engine);
        w.write_blob(&algorithm_state);
        w.write_blob(&self.observer_state);
        w.finish().into_bytes()
    }

    /// Parses a checkpoint serialized by [`ShardCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on bad magic or malformed content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::from_bytes(bytes);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.read_u8()?;
        }
        if magic != Self::MAGIC {
            return Err(StateError::Corrupt(format!(
                "bad shard checkpoint magic {magic:02x?}"
            )));
        }
        let slot = r.read_u32()?;
        let algorithm = r.read_str()?;
        let engine = r.read_blob()?;
        let algorithm_state = r.read_blob()?;
        let observer_state = r.read_blob()?;
        r.finish()?;
        Self::unpack(slot, &algorithm, &engine, &algorithm_state, observer_state)
    }

    /// Packs the per-shard state into the `(engine, algorithm_state)`
    /// blob pair of a monolithic engine checkpoint. The engine blob is
    /// tagged ([`ShardCheckpoint::is_packed`]) so resume paths can
    /// reject a monolithic blob with a descriptive error instead of a
    /// decode failure deep inside the shard loop.
    pub fn pack(&self) -> (StateBlob, StateBlob) {
        let mut w = StateWriter::new();
        w.write_str(Self::ENGINE_TAG);
        w.write(&self.partition);
        w.write_usize(self.engines.len());
        for e in &self.engines {
            w.write_blob(e);
        }
        w.write_blob(&self.coordinator);
        let engine = w.finish();
        let mut w = StateWriter::new();
        w.write_usize(self.algorithms.len());
        for a in &self.algorithms {
            w.write_blob(a);
        }
        (engine, w.finish())
    }

    /// Rebuilds a [`ShardCheckpoint`] from the blob pair produced by
    /// [`ShardCheckpoint::pack`] plus the surrounding checkpoint
    /// envelope fields.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] when the engine blob is not a packed
    /// shard composite (e.g. a monolithic engine snapshot) or the
    /// per-shard blob counts disagree.
    pub fn unpack(
        slot: u32,
        algorithm: &str,
        engine: &StateBlob,
        algorithm_state: &StateBlob,
        observer_state: StateBlob,
    ) -> Result<Self, StateError> {
        if !Self::is_packed(engine) {
            return Err(StateError::Mismatch {
                expected: "a packed sharded engine blob".into(),
                found: "a monolithic (or foreign) engine blob".into(),
            });
        }
        let mut r = StateReader::new(engine);
        let _tag = r.read_str()?;
        let partition: Vec<u32> = r.read()?;
        let shards = r.read_usize()?;
        let mut engines = Vec::with_capacity(shards);
        for _ in 0..shards {
            engines.push(r.read_blob()?);
        }
        let coordinator = r.read_blob()?;
        r.finish()?;
        let mut r = StateReader::new(algorithm_state);
        let count = r.read_usize()?;
        if count != shards {
            return Err(StateError::Mismatch {
                expected: format!("{shards} per-shard algorithm blobs"),
                found: format!("{count}"),
            });
        }
        let mut algorithms = Vec::with_capacity(shards);
        for _ in 0..shards {
            algorithms.push(r.read_blob()?);
        }
        r.finish()?;
        Ok(Self {
            slot,
            algorithm: algorithm.to_string(),
            partition,
            engines,
            algorithms,
            coordinator,
            observer_state,
        })
    }

    /// Whether `blob` is a packed sharded engine blob (the
    /// [`ShardCheckpoint::pack`] tag is present).
    pub fn is_packed(blob: &StateBlob) -> bool {
        let mut r = StateReader::new(blob);
        matches!(r.read_str(), Ok(tag) if tag == Self::ENGINE_TAG)
    }

    /// Number of shards in the checkpoint.
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{Embedding, Footprint};

    #[test]
    fn primitives_roundtrip() {
        let mut w = StateWriter::new();
        w.write_u8(7);
        w.write_u32(0xDEAD_BEEF);
        w.write_u64(u64::MAX);
        w.write_f64(-0.0);
        w.write_f64(f64::NAN);
        w.write_bool(true);
        w.write_str("hello κόσμε");
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX);
        assert_eq!(r.read_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.read_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_str().unwrap(), "hello κόσμε");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = StateWriter::new();
        w.write_u32(1);
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert!(matches!(
            r.read_u64(),
            Err(StateError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_error() {
        let mut w = StateWriter::new();
        w.write_u32(1);
        let blob = w.finish();
        let r = StateReader::new(&blob);
        assert_eq!(r.finish(), Err(StateError::TrailingBytes { remaining: 4 }));
    }

    #[test]
    fn invalid_bool_is_corrupt() {
        let blob = StateBlob::from_bytes(vec![9]);
        let mut r = StateReader::new(&blob);
        assert!(matches!(r.read_bool(), Err(StateError::Corrupt(_))));
    }

    #[test]
    fn ids_and_requests_roundtrip() {
        let req = Request {
            id: RequestId(42),
            arrival: 3,
            duration: 9,
            ingress: NodeId(4),
            app: AppId(1),
            demand: 2.75,
        };
        let mut w = StateWriter::new();
        w.write(&req);
        w.write(&req.class());
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert_eq!(r.read::<Request>().unwrap(), req);
        assert_eq!(r.read::<ClassId>().unwrap(), req.class());
        r.finish().unwrap();
    }

    #[test]
    fn oversized_id_is_corrupt() {
        let mut w = StateWriter::new();
        w.write_u64(u64::from(u32::MAX) + 1);
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert!(matches!(r.read::<NodeId>(), Err(StateError::Corrupt(_))));
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(RequestId, f64)> = vec![(RequestId(1), 0.5), (RequestId(2), -1.0)];
        let mut m: BTreeMap<ClassId, Vec<f64>> = BTreeMap::new();
        m.insert(ClassId::new(AppId(0), NodeId(1)), vec![1.0, 2.0]);
        m.insert(ClassId::new(AppId(2), NodeId(0)), vec![]);
        let opt: Option<u64> = Some(7);
        let mut w = StateWriter::new();
        w.write(&v);
        w.write(&m);
        w.write(&opt);
        w.write(&Option::<u64>::None);
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert_eq!(r.read::<Vec<(RequestId, f64)>>().unwrap(), v);
        assert_eq!(r.read::<BTreeMap<ClassId, Vec<f64>>>().unwrap(), m);
        assert_eq!(r.read::<Option<u64>>().unwrap(), opt);
        assert_eq!(r.read::<Option<u64>>().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn footprint_and_embedding_roundtrip() {
        let fp = Footprint::from_parts(
            vec![(NodeId(2), 1.5), (NodeId(0), 3.0)],
            vec![(LinkId(1), 0.25)],
        );
        let emb = Embedding::new(
            vec![NodeId(0), NodeId(2)],
            vec![vec![LinkId(0), LinkId(1)], vec![]],
        );
        let mut w = StateWriter::new();
        w.write(&fp);
        w.write(&emb);
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert_eq!(r.read::<Footprint>().unwrap(), fp);
        assert_eq!(r.read::<Embedding>().unwrap(), emb);
        r.finish().unwrap();
    }

    #[test]
    fn nested_blobs_roundtrip() {
        let mut inner = StateWriter::new();
        inner.write_u64(99);
        let inner = inner.finish();
        let mut w = StateWriter::new();
        w.write_blob(&inner);
        w.write_blob(&StateBlob::default());
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert_eq!(r.read_blob().unwrap(), inner);
        assert!(r.read_blob().unwrap().is_empty());
        r.finish().unwrap();
    }

    #[test]
    fn shard_checkpoint_roundtrips_both_forms() {
        let blob_of = |x: u64| {
            let mut w = StateWriter::new();
            w.write_u64(x);
            w.finish()
        };
        let ckpt = ShardCheckpoint {
            slot: 17,
            algorithm: "FULLG".into(),
            partition: vec![0, 1, 1, 0],
            engines: vec![blob_of(1), blob_of(2)],
            algorithms: vec![blob_of(3), blob_of(4)],
            coordinator: blob_of(5),
            observer_state: blob_of(6),
        };
        assert_eq!(ckpt.shard_count(), 2);
        // Standalone file format.
        let bytes = ckpt.to_bytes();
        assert_eq!(ShardCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
        // Engine-checkpoint embedding.
        let (engine, algorithm_state) = ckpt.pack();
        assert!(ShardCheckpoint::is_packed(&engine));
        assert!(!ShardCheckpoint::is_packed(&blob_of(9)));
        let back =
            ShardCheckpoint::unpack(17, "FULLG", &engine, &algorithm_state, blob_of(6)).unwrap();
        assert_eq!(back, ckpt);
        // A monolithic blob is refused with a Mismatch, not a decode
        // panic.
        assert!(matches!(
            ShardCheckpoint::unpack(0, "X", &blob_of(1), &algorithm_state, StateBlob::default()),
            Err(StateError::Mismatch { .. })
        ));
    }

    #[test]
    fn mut_ref_snapshot_forwards() {
        struct Counter(u64);
        impl Snapshot for Counter {
            fn snapshot(&self) -> StateBlob {
                let mut w = StateWriter::new();
                w.write_u64(self.0);
                w.finish()
            }
            fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
                let mut r = StateReader::new(blob);
                self.0 = r.read_u64()?;
                r.finish()
            }
        }
        let mut c = Counter(5);
        let blob = {
            let r: &mut Counter = &mut c;
            r.snapshot()
        };
        let mut d = Counter(0);
        let mut dref: &mut Counter = &mut d;
        // Call through the forwarding impl explicitly.
        Snapshot::restore(&mut dref, &blob).unwrap();
        assert_eq!(d.0, 5);
    }
}
