//! Applications: named virtual network topologies offered by the provider.
//!
//! An [`AppSet`] holds the catalogue `A` of applications that requests may
//! ask for. The paper's evaluation draws four application instances per
//! execution (two chains, one two-branch tree, one accelerator chain —
//! Table III), with VNF counts `U(3,5)` and element sizes `N(50, 30²)`;
//! those randomized instances are produced by `vne-workload::appgen`, on
//! top of the deterministic shape constructors here.

use serde::{Deserialize, Serialize};

use crate::error::ModelResult;
use crate::ids::AppId;
use crate::vnet::{VirtualNetwork, VnfKind};

/// The shape family of an application topology (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppShape {
    /// A linear chain of VNFs.
    Chain,
    /// A tree with two branches below the first VNF.
    Tree,
    /// A chain with a single accelerator VNF that reduces downstream
    /// virtual link sizes by 70%.
    Accelerator,
    /// A chain with a single GPU VNF restricted to GPU datacenters.
    Gpu,
}

impl AppShape {
    /// A short label used in experiment outputs (Fig. 9's x-axis).
    pub fn label(self) -> &'static str {
        match self {
            AppShape::Chain => "chain",
            AppShape::Tree => "tree",
            AppShape::Accelerator => "acc",
            AppShape::Gpu => "gpu",
        }
    }
}

impl std::fmt::Display for AppShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An application: a named virtual network topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Identifier within the [`AppSet`].
    pub id: AppId,
    /// Human-readable name (e.g. `"chain-1"`).
    pub name: String,
    /// Shape family, for reporting.
    pub shape: AppShape,
    /// The topology `Ga`.
    pub vnet: VirtualNetwork,
}

/// The catalogue of applications `A`.
///
/// # Examples
///
/// ```
/// use vne_model::app::{AppSet, AppShape};
/// use vne_model::vnet::VirtualNetwork;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut apps = AppSet::new();
/// let chain = VirtualNetwork::chain(&[50.0, 50.0, 50.0], &[50.0, 50.0, 50.0])?;
/// let id = apps.push("chain-1", AppShape::Chain, chain)?;
/// assert_eq!(apps.len(), 1);
/// assert_eq!(apps.app(id).name, "chain-1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AppSet {
    apps: Vec<Application>,
}

impl AppSet {
    /// Creates an empty application set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an application, validating its topology, and returns its id.
    ///
    /// # Errors
    ///
    /// Returns an error if the virtual network violates tree invariants.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        shape: AppShape,
        vnet: VirtualNetwork,
    ) -> ModelResult<AppId> {
        vnet.validate()?;
        let id = AppId::from_index(self.apps.len());
        self.apps.push(Application {
            id,
            name: name.into(),
            shape,
            vnet,
        });
        Ok(id)
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// The application with id `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn app(&self, a: AppId) -> &Application {
        &self.apps[a.index()]
    }

    /// The topology of application `a`.
    pub fn vnet(&self, a: AppId) -> &VirtualNetwork {
        &self.apps[a.index()].vnet
    }

    /// Iterates over the applications.
    pub fn iter(&self) -> impl Iterator<Item = &Application> {
        self.apps.iter()
    }

    /// All application ids.
    pub fn ids(&self) -> impl Iterator<Item = AppId> {
        (0..self.apps.len()).map(AppId::from_index)
    }

    /// The mean total VNF size over applications — `E[Σ_i β_i]`, used by
    /// the utilization calibration (§IV-A).
    pub fn mean_total_node_size(&self) -> f64 {
        if self.apps.is_empty() {
            return 0.0;
        }
        self.apps
            .iter()
            .map(|a| a.vnet.total_node_size())
            .sum::<f64>()
            / self.apps.len() as f64
    }
}

/// Deterministic shape constructors used by tests and the random
/// application generator.
pub mod shapes {
    use super::*;

    /// A chain of `n` VNFs with uniform node size `beta` and link size
    /// `link_beta`.
    ///
    /// # Errors
    ///
    /// Returns an error if a size is invalid.
    pub fn uniform_chain(n: usize, beta: f64, link_beta: f64) -> ModelResult<VirtualNetwork> {
        VirtualNetwork::chain(&vec![beta; n], &vec![link_beta; n])
    }

    /// A two-branch tree: `θ → f0`, then two branches under `f0` that
    /// split the remaining `n - 1` VNFs as evenly as possible.
    ///
    /// # Errors
    ///
    /// Returns an error if a size is invalid.
    pub fn two_branch_tree(n: usize, beta: f64, link_beta: f64) -> ModelResult<VirtualNetwork> {
        let mut vn = VirtualNetwork::with_root();
        if n == 0 {
            return Ok(vn);
        }
        let (head, _) = vn.add_vnf(VirtualNetwork::ROOT, VnfKind::Standard, beta, link_beta)?;
        let rest = n - 1;
        let left_len = rest.div_ceil(2);
        let mut left_parent = head;
        for _ in 0..left_len {
            let (v, _) = vn.add_vnf(left_parent, VnfKind::Standard, beta, link_beta)?;
            left_parent = v;
        }
        let mut right_parent = head;
        for _ in 0..(rest - left_len) {
            let (v, _) = vn.add_vnf(right_parent, VnfKind::Standard, beta, link_beta)?;
            right_parent = v;
        }
        Ok(vn)
    }

    /// An accelerator chain: like [`uniform_chain`] but the VNF at
    /// `acc_pos` (0-based among the VNFs) is an accelerator, and downstream
    /// link sizes are reduced by 70% (factor 0.3).
    ///
    /// # Errors
    ///
    /// Returns an error if `acc_pos ≥ n` (reported as unknown vnode) or a
    /// size is invalid.
    pub fn accelerator_chain(
        n: usize,
        beta: f64,
        link_beta: f64,
        acc_pos: usize,
    ) -> ModelResult<VirtualNetwork> {
        let mut vn = uniform_chain(n, beta, link_beta)?;
        let v = crate::ids::VnodeId::from_index(acc_pos + 1);
        if v.index() >= vn.node_count() {
            return Err(crate::error::ModelError::UnknownVnode(v));
        }
        vn.node_mut(v).kind = VnfKind::Accelerator;
        vn.apply_accelerator_discount(0.3);
        Ok(vn)
    }

    /// A GPU chain: like [`uniform_chain`] but the VNF at `gpu_pos` is a
    /// GPU VNF (restricted to GPU datacenters by the placement policy).
    ///
    /// # Errors
    ///
    /// Returns an error if `gpu_pos ≥ n` or a size is invalid.
    pub fn gpu_chain(
        n: usize,
        beta: f64,
        link_beta: f64,
        gpu_pos: usize,
    ) -> ModelResult<VirtualNetwork> {
        let mut vn = uniform_chain(n, beta, link_beta)?;
        let v = crate::ids::VnodeId::from_index(gpu_pos + 1);
        if v.index() >= vn.node_count() {
            return Err(crate::error::ModelError::UnknownVnode(v));
        }
        vn.node_mut(v).kind = VnfKind::Gpu;
        Ok(vn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_set_push_and_lookup() {
        let mut set = AppSet::new();
        let id = set
            .push(
                "c",
                AppShape::Chain,
                shapes::uniform_chain(3, 50.0, 50.0).unwrap(),
            )
            .unwrap();
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
        assert_eq!(set.app(id).shape, AppShape::Chain);
        assert_eq!(set.vnet(id).vnf_count(), 3);
        assert_eq!(set.ids().count(), 1);
    }

    #[test]
    fn push_validates_topology() {
        let mut set = AppSet::new();
        let mut bad = VirtualNetwork::with_root();
        bad.node_mut(VirtualNetwork::ROOT).beta = 5.0;
        assert!(set.push("bad", AppShape::Chain, bad).is_err());
    }

    #[test]
    fn mean_total_node_size() {
        let mut set = AppSet::new();
        assert_eq!(set.mean_total_node_size(), 0.0);
        set.push(
            "a",
            AppShape::Chain,
            shapes::uniform_chain(2, 10.0, 1.0).unwrap(),
        )
        .unwrap();
        set.push(
            "b",
            AppShape::Chain,
            shapes::uniform_chain(4, 10.0, 1.0).unwrap(),
        )
        .unwrap();
        assert_eq!(set.mean_total_node_size(), 30.0);
    }

    #[test]
    fn two_branch_tree_splits_evenly() {
        let vn = shapes::two_branch_tree(5, 10.0, 5.0).unwrap();
        assert_eq!(vn.vnf_count(), 5);
        assert!(!vn.is_chain());
        assert!(vn.validate().is_ok());
        // Head has two children: branches of length 2 and 2.
        let head = crate::ids::VnodeId(1);
        assert_eq!(vn.children(head).len(), 2);
    }

    #[test]
    fn two_branch_tree_small_counts() {
        assert_eq!(shapes::two_branch_tree(0, 1.0, 1.0).unwrap().vnf_count(), 0);
        assert_eq!(shapes::two_branch_tree(1, 1.0, 1.0).unwrap().vnf_count(), 1);
        let two = shapes::two_branch_tree(2, 1.0, 1.0).unwrap();
        assert_eq!(two.vnf_count(), 2);
        assert!(two.is_chain());
    }

    #[test]
    fn accelerator_chain_discounts_downstream() {
        let vn = shapes::accelerator_chain(4, 50.0, 10.0, 1).unwrap();
        // VNF at position 1 (vnode 2) is the accelerator.
        assert_eq!(vn.node(crate::ids::VnodeId(2)).kind, VnfKind::Accelerator);
        // Links: e0 (θ→f0)=10, e1 (f0→acc)=10, e2, e3 = 3.
        assert_eq!(vn.link(crate::ids::VlinkId(0)).beta, 10.0);
        assert_eq!(vn.link(crate::ids::VlinkId(1)).beta, 10.0);
        assert!((vn.link(crate::ids::VlinkId(2)).beta - 3.0).abs() < 1e-12);
        assert!((vn.link(crate::ids::VlinkId(3)).beta - 3.0).abs() < 1e-12);
    }

    #[test]
    fn accelerator_chain_rejects_bad_position() {
        assert!(shapes::accelerator_chain(3, 1.0, 1.0, 3).is_err());
    }

    #[test]
    fn gpu_chain_marks_gpu_vnf() {
        let vn = shapes::gpu_chain(3, 50.0, 10.0, 2).unwrap();
        assert!(vn.has_gpu_vnf());
        assert_eq!(vn.node(crate::ids::VnodeId(3)).kind, VnfKind::Gpu);
    }

    #[test]
    fn shape_labels() {
        assert_eq!(AppShape::Chain.to_string(), "chain");
        assert_eq!(AppShape::Accelerator.label(), "acc");
    }
}
