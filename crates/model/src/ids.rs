//! Strongly-typed identifiers for substrate and virtual network elements.
//!
//! Every entity in the model is referred to by a small copyable id newtype
//! ([`NodeId`], [`LinkId`], [`VnodeId`], [`VlinkId`], [`AppId`],
//! [`RequestId`]) rather than by raw integers, so that e.g. a virtual node
//! index can never be confused with a substrate node index at compile time.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw index wrapped by this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in the underlying representation.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(<$repr>::try_from(index).expect("id index out of range"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a substrate (physical) node — a datacenter.
    NodeId,
    u32,
    "n"
);
id_type!(
    /// Identifier of a substrate (physical) link between two datacenters.
    LinkId,
    u32,
    "l"
);
id_type!(
    /// Identifier of a virtual node (VNF) within one virtual network.
    VnodeId,
    u16,
    "v"
);
id_type!(
    /// Identifier of a virtual link within one virtual network.
    VlinkId,
    u16,
    "e"
);
id_type!(
    /// Identifier of an application (virtual network topology) in an [`crate::app::AppSet`].
    AppId,
    u32,
    "a"
);
id_type!(
    /// Identifier of an online embedding request.
    RequestId,
    u64,
    "r"
);

/// A substrate element: either a node or a link.
///
/// Capacities, costs and loads are defined uniformly over elements
/// (`s ∈ S` in the paper), so APIs that apply to both use this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ElementId {
    /// A substrate node (datacenter).
    Node(NodeId),
    /// A substrate link.
    Link(LinkId),
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElementId::Node(n) => write!(f, "{n}"),
            ElementId::Link(l) => write!(f, "{l}"),
        }
    }
}

/// A request class: all requests sharing an application and ingress location.
///
/// Classes are the aggregation unit of the offline plan (`r̃_{a,v}` in the
/// paper, Eq. 5): requests of the same class share placement constraints,
/// element sizes and inefficiency coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClassId {
    /// The application requested.
    pub app: AppId,
    /// The ingress substrate node (`v(r)`).
    pub ingress: NodeId,
}

impl ClassId {
    /// Creates the class of requests for application `app` arriving at `ingress`.
    pub fn new(app: AppId, ingress: NodeId) -> Self {
        Self { app, ingress }
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.app, self.ingress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_usize() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(usize::from(n), 42);
        assert_eq!(n, NodeId(42));
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(7).to_string(), "l7");
        assert_eq!(VnodeId(1).to_string(), "v1");
        assert_eq!(VlinkId(0).to_string(), "e0");
        assert_eq!(AppId(2).to_string(), "a2");
        assert_eq!(RequestId(9).to_string(), "r9");
    }

    #[test]
    fn element_display_delegates() {
        assert_eq!(ElementId::Node(NodeId(1)).to_string(), "n1");
        assert_eq!(ElementId::Link(LinkId(2)).to_string(), "l2");
    }

    #[test]
    fn class_id_orders_by_app_then_ingress() {
        let a = ClassId::new(AppId(0), NodeId(5));
        let b = ClassId::new(AppId(1), NodeId(0));
        assert!(a < b);
        assert_eq!(a.to_string(), "a0@n5");
    }

    #[test]
    #[should_panic(expected = "id index out of range")]
    fn vnode_id_rejects_oversized_index() {
        let _ = VnodeId::from_index(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn ids_are_hash_and_ord_usable() {
        use std::collections::{BTreeSet, HashSet};
        let mut h = HashSet::new();
        h.insert(ClassId::new(AppId(1), NodeId(2)));
        assert!(h.contains(&ClassId::new(AppId(1), NodeId(2))));
        let mut b = BTreeSet::new();
        b.insert(ElementId::Link(LinkId(1)));
        b.insert(ElementId::Node(NodeId(1)));
        assert_eq!(b.len(), 2);
    }
}
