//! Residual capacity tracking (`Res(S, t, x)`, Eq. 16).
//!
//! A [`LoadLedger`] tracks the residual capacity of every substrate
//! element as embeddings are applied and removed. It is the single source
//! of truth for feasibility checks (Eq. 18) in the online algorithms and
//! the simulator.

use serde::{Deserialize, Serialize};

use crate::embedding::Footprint;
use crate::ids::{ElementId, LinkId, NodeId};
use crate::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};
use crate::substrate::SubstrateNetwork;

/// Relative tolerance for capacity feasibility checks.
///
/// Floating-point accumulation over thousands of allocations can leave
/// residuals a hair below zero; anything above `-EPS · cap` is treated as
/// feasible/zero.
pub const CAPACITY_EPS: f64 = 1e-9;

/// Tracks residual capacities of all substrate elements.
///
/// # Examples
///
/// ```
/// use vne_model::load::LoadLedger;
/// use vne_model::substrate::{SubstrateNetwork, Tier};
/// use vne_model::embedding::Footprint;
/// use vne_model::ids::NodeId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut s = SubstrateNetwork::new("one");
/// let n = s.add_node("n", Tier::Edge, 100.0, 1.0)?;
/// let mut ledger = LoadLedger::new(&s);
/// let fp = Footprint::from_parts(vec![(n, 30.0)], vec![]);
/// assert!(ledger.fits(&fp, 2.0));   // 60 ≤ 100
/// ledger.apply(&fp, 2.0);
/// assert!(!ledger.fits(&fp, 2.0));  // 60 + 60 > 100
/// ledger.remove(&fp, 2.0);
/// assert_eq!(ledger.node_residual(n), 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadLedger {
    node_capacity: Vec<f64>,
    link_capacity: Vec<f64>,
    node_load: Vec<f64>,
    link_load: Vec<f64>,
}

impl LoadLedger {
    /// Creates a ledger with zero load over the given substrate.
    pub fn new(substrate: &SubstrateNetwork) -> Self {
        Self {
            node_capacity: substrate.nodes().map(|(_, n)| n.capacity).collect(),
            link_capacity: substrate.links().map(|(_, l)| l.capacity).collect(),
            node_load: vec![0.0; substrate.node_count()],
            link_load: vec![0.0; substrate.link_count()],
        }
    }

    /// Number of substrate nodes this ledger tracks.
    pub fn node_count(&self) -> usize {
        self.node_capacity.len()
    }

    /// Number of substrate links this ledger tracks.
    pub fn link_count(&self) -> usize {
        self.link_capacity.len()
    }

    /// Effective capacity of node `n` (after any churn updates).
    pub fn node_capacity_of(&self, n: NodeId) -> f64 {
        self.node_capacity[n.index()]
    }

    /// Effective capacity of link `l` (after any churn updates).
    pub fn link_capacity_of(&self, l: LinkId) -> f64 {
        self.link_capacity[l.index()]
    }

    /// Residual capacity of node `n` (clamped at 0).
    pub fn node_residual(&self, n: NodeId) -> f64 {
        (self.node_capacity[n.index()] - self.node_load[n.index()]).max(0.0)
    }

    /// Residual capacity of link `l` (clamped at 0).
    pub fn link_residual(&self, l: LinkId) -> f64 {
        (self.link_capacity[l.index()] - self.link_load[l.index()]).max(0.0)
    }

    /// Residual capacity of an arbitrary element.
    pub fn residual(&self, e: ElementId) -> f64 {
        match e {
            ElementId::Node(n) => self.node_residual(n),
            ElementId::Link(l) => self.link_residual(l),
        }
    }

    /// Current load on node `n`.
    pub fn node_load(&self, n: NodeId) -> f64 {
        self.node_load[n.index()]
    }

    /// Current load on link `l`.
    pub fn link_load(&self, l: LinkId) -> f64 {
        self.link_load[l.index()]
    }

    /// Replaces the capacity vectors with externally computed effective
    /// capacities (substrate churn: failures, drains, maintenance).
    ///
    /// Loads are left untouched — the engine evicts stranded requests
    /// separately — so loads may transiently exceed the new capacities.
    ///
    /// # Panics
    ///
    /// Panics when the vector dimensions do not match this ledger.
    pub fn set_capacities(&mut self, node: &[f64], link: &[f64]) {
        assert_eq!(
            (node.len(), link.len()),
            (self.node_capacity.len(), self.link_capacity.len()),
            "effective capacities do not match ledger dimensions"
        );
        self.node_capacity.copy_from_slice(node);
        self.link_capacity.copy_from_slice(link);
    }

    /// Whether a footprint scaled by `demand` fits in the residual
    /// capacities (Eq. 18).
    pub fn fits(&self, footprint: &Footprint, demand: f64) -> bool {
        let tol = |cap: f64| CAPACITY_EPS * cap.max(1.0);
        footprint.nodes().iter().all(|&(n, x)| {
            self.node_load[n.index()] + x * demand
                <= self.node_capacity[n.index()] + tol(self.node_capacity[n.index()])
        }) && footprint.links().iter().all(|&(l, x)| {
            self.link_load[l.index()] + x * demand
                <= self.link_capacity[l.index()] + tol(self.link_capacity[l.index()])
        })
    }

    /// Applies a footprint scaled by `demand` (allocation).
    ///
    /// The caller is responsible for checking [`LoadLedger::fits`] first;
    /// in debug builds over-allocation panics.
    pub fn apply(&mut self, footprint: &Footprint, demand: f64) {
        for &(n, x) in footprint.nodes() {
            self.node_load[n.index()] += x * demand;
            debug_assert!(
                self.node_load[n.index()]
                    <= self.node_capacity[n.index()]
                        + CAPACITY_EPS * self.node_capacity[n.index()].max(1.0),
                "node {n} over-allocated"
            );
        }
        for &(l, x) in footprint.links() {
            self.link_load[l.index()] += x * demand;
            debug_assert!(
                self.link_load[l.index()]
                    <= self.link_capacity[l.index()]
                        + CAPACITY_EPS * self.link_capacity[l.index()].max(1.0),
                "link {l} over-allocated"
            );
        }
    }

    /// Removes a previously applied footprint scaled by `demand`
    /// (departure or preemption). Loads are clamped at zero to absorb
    /// floating-point drift.
    pub fn remove(&mut self, footprint: &Footprint, demand: f64) {
        for &(n, x) in footprint.nodes() {
            self.node_load[n.index()] = (self.node_load[n.index()] - x * demand).max(0.0);
        }
        for &(l, x) in footprint.links() {
            self.link_load[l.index()] = (self.link_load[l.index()] - x * demand).max(0.0);
        }
    }

    /// Total load-weighted resource cost per slot under `substrate` costs
    /// (one term of Eq. 3).
    pub fn cost_per_slot(&self, substrate: &SubstrateNetwork) -> f64 {
        let n: f64 = substrate
            .nodes()
            .map(|(id, node)| self.node_load[id.index()] * node.cost)
            .sum();
        let l: f64 = substrate
            .links()
            .map(|(id, link)| self.link_load[id.index()] * link.cost)
            .sum();
        n + l
    }

    /// Whether every node in the substrate is saturated beyond `threshold`
    /// of its capacity (QUICKG's fast-reject path checks this with 1.0).
    pub fn all_nodes_loaded_above(&self, threshold: f64) -> bool {
        self.node_capacity
            .iter()
            .zip(&self.node_load)
            .all(|(&cap, &load)| load >= threshold * cap - CAPACITY_EPS * cap.max(1.0))
    }

    /// Fraction of total node capacity currently loaded.
    pub fn node_utilization(&self) -> f64 {
        let cap: f64 = self.node_capacity.iter().sum();
        if cap == 0.0 {
            return 0.0;
        }
        self.node_load.iter().sum::<f64>() / cap
    }

    /// Fraction of total link capacity currently loaded.
    pub fn link_utilization(&self) -> f64 {
        let cap: f64 = self.link_capacity.iter().sum();
        if cap == 0.0 {
            return 0.0;
        }
        self.link_load.iter().sum::<f64>() / cap
    }

    /// Asserts internal invariants (loads within `[0, cap]` up to
    /// tolerance). Intended for tests and debug checks.
    pub fn check_invariants(&self) -> bool {
        let ok = |cap: f64, load: f64| {
            let tol = CAPACITY_EPS * cap.max(1.0);
            load >= -tol && load <= cap + tol
        };
        self.node_capacity
            .iter()
            .zip(&self.node_load)
            .all(|(&c, &l)| ok(c, l))
            && self
                .link_capacity
                .iter()
                .zip(&self.link_load)
                .all(|(&c, &l)| ok(c, l))
    }
}

/// Checkpointing: the mutable state is the two load vectors; capacities
/// come from the substrate the ledger was constructed over, so
/// [`Snapshot::restore`] only validates their dimensions.
impl Snapshot for LoadLedger {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write(&self.node_load);
        w.write(&self.link_load);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let node_load: Vec<f64> = r.read()?;
        let link_load: Vec<f64> = r.read()?;
        r.finish()?;
        if node_load.len() != self.node_capacity.len()
            || link_load.len() != self.link_capacity.len()
        {
            return Err(StateError::Mismatch {
                expected: format!(
                    "ledger over {} nodes / {} links",
                    self.node_capacity.len(),
                    self.link_capacity.len()
                ),
                found: format!(
                    "loads for {} nodes / {} links",
                    node_load.len(),
                    link_load.len()
                ),
            });
        }
        self.node_load = node_load;
        self.link_load = link_load;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::Tier;

    fn two_nodes() -> (SubstrateNetwork, NodeId, NodeId, LinkId) {
        let mut s = SubstrateNetwork::new("pair");
        let a = s.add_node("a", Tier::Edge, 100.0, 1.0).unwrap();
        let b = s.add_node("b", Tier::Core, 200.0, 1.0).unwrap();
        let l = s.add_link(a, b, 50.0, 1.0).unwrap();
        (s, a, b, l)
    }

    #[test]
    fn apply_remove_roundtrip() {
        let (s, a, _b, l) = two_nodes();
        let mut ledger = LoadLedger::new(&s);
        let fp = Footprint::from_parts(vec![(a, 10.0)], vec![(l, 5.0)]);
        ledger.apply(&fp, 3.0);
        assert_eq!(ledger.node_load(a), 30.0);
        assert_eq!(ledger.link_load(l), 15.0);
        assert_eq!(ledger.node_residual(a), 70.0);
        assert_eq!(ledger.link_residual(l), 35.0);
        ledger.remove(&fp, 3.0);
        assert_eq!(ledger.node_load(a), 0.0);
        assert!(ledger.check_invariants());
    }

    #[test]
    fn fits_respects_both_nodes_and_links() {
        let (s, a, _b, l) = two_nodes();
        let mut ledger = LoadLedger::new(&s);
        let fp = Footprint::from_parts(vec![(a, 10.0)], vec![(l, 10.0)]);
        assert!(ledger.fits(&fp, 5.0)); // node 50 ≤ 100, link 50 ≤ 50
        assert!(!ledger.fits(&fp, 6.0)); // link 60 > 50
        ledger.apply(&fp, 5.0);
        assert!(!ledger.fits(&fp, 0.1));
    }

    #[test]
    fn fits_with_tolerance_at_boundary() {
        let (s, a, _b, _l) = two_nodes();
        let ledger = LoadLedger::new(&s);
        let fp = Footprint::from_parts(vec![(a, 100.0)], vec![]);
        assert!(ledger.fits(&fp, 1.0)); // exactly at capacity
    }

    #[test]
    fn element_residual_dispatch() {
        let (s, a, _b, l) = two_nodes();
        let ledger = LoadLedger::new(&s);
        assert_eq!(ledger.residual(ElementId::Node(a)), 100.0);
        assert_eq!(ledger.residual(ElementId::Link(l)), 50.0);
    }

    #[test]
    fn cost_per_slot_sums_loads() {
        let (s, a, b, l) = two_nodes();
        let mut ledger = LoadLedger::new(&s);
        let fp = Footprint::from_parts(vec![(a, 10.0), (b, 20.0)], vec![(l, 5.0)]);
        ledger.apply(&fp, 1.0);
        assert_eq!(ledger.cost_per_slot(&s), 35.0);
    }

    #[test]
    fn utilization_fractions() {
        let (s, a, _b, _l) = two_nodes();
        let mut ledger = LoadLedger::new(&s);
        assert_eq!(ledger.node_utilization(), 0.0);
        let fp = Footprint::from_parts(vec![(a, 100.0)], vec![]);
        ledger.apply(&fp, 1.0);
        assert!((ledger.node_utilization() - 100.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn all_nodes_loaded_above_threshold() {
        let (s, a, b, _l) = two_nodes();
        let mut ledger = LoadLedger::new(&s);
        assert!(!ledger.all_nodes_loaded_above(0.9));
        ledger.apply(
            &Footprint::from_parts(vec![(a, 95.0), (b, 190.0)], vec![]),
            1.0,
        );
        assert!(ledger.all_nodes_loaded_above(0.9));
        assert!(!ledger.all_nodes_loaded_above(1.0));
    }

    #[test]
    fn snapshot_roundtrips_and_validates_shape() {
        let (s, a, _b, l) = two_nodes();
        let mut ledger = LoadLedger::new(&s);
        ledger.apply(&Footprint::from_parts(vec![(a, 10.0)], vec![(l, 5.0)]), 3.0);
        let blob = ledger.snapshot();
        let mut fresh = LoadLedger::new(&s);
        fresh.restore(&blob).unwrap();
        assert_eq!(fresh, ledger);
        assert_eq!(fresh.snapshot(), blob);
        // A ledger over a different substrate rejects the blob.
        let mut tiny = SubstrateNetwork::new("tiny");
        tiny.add_node("x", Tier::Edge, 1.0, 1.0).unwrap();
        let mut wrong = LoadLedger::new(&tiny);
        assert!(matches!(
            wrong.restore(&blob),
            Err(StateError::Mismatch { .. })
        ));
    }

    #[test]
    fn remove_clamps_at_zero() {
        let (s, a, _b, _l) = two_nodes();
        let mut ledger = LoadLedger::new(&s);
        let fp = Footprint::from_parts(vec![(a, 10.0)], vec![]);
        ledger.remove(&fp, 1.0);
        assert_eq!(ledger.node_load(a), 0.0);
        assert!(ledger.check_invariants());
    }
}
