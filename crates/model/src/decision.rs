//! Admission decisions for embedding-as-a-service.
//!
//! When the engine runs inside a serving daemon (`vne-serve`), every
//! submitted request gets an explicit [`Decision`] back: admitted
//! ([`Decision::Accept`]), denied by the algorithm
//! ([`Decision::Reject`]), or never offered to the algorithm because
//! the ingest queue was beyond its high-watermark
//! ([`Decision::Shed`]). The type lives in the model crate so protocol
//! encoders, the daemon and benchmarks all share one vocabulary.

use std::fmt;
use std::str::FromStr;

use crate::state::{StateDecode, StateEncode, StateError, StateReader, StateWriter};

/// The outcome of one submitted embedding request, as reported to the
/// client that submitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// The request was admitted and holds resources until departure.
    Accept,
    /// The algorithm declined the request at decision time.
    Reject,
    /// The serving front end dropped the request before the algorithm
    /// ever saw it: the ingest queue was at its high-watermark
    /// (load shedding). Shed requests consume no request id and leave
    /// no trace in the engine.
    Shed,
}

impl Decision {
    /// Canonical wire label (`"ACCEPT"`, `"REJECT"`, `"SHED"`).
    pub fn label(self) -> &'static str {
        match self {
            Decision::Accept => "ACCEPT",
            Decision::Reject => "REJECT",
            Decision::Shed => "SHED",
        }
    }

    /// Whether the request holds resources after this decision.
    pub fn is_admitted(self) -> bool {
        matches!(self, Decision::Accept)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The error returned when a string is none of the decision labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDecisionError(pub String);

impl fmt::Display for ParseDecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown decision {:?}; expected ACCEPT, REJECT or SHED",
            self.0
        )
    }
}

impl std::error::Error for ParseDecisionError {}

impl FromStr for Decision {
    type Err = ParseDecisionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        [Decision::Accept, Decision::Reject, Decision::Shed]
            .into_iter()
            .find(|d| d.label().eq_ignore_ascii_case(trimmed))
            .ok_or_else(|| ParseDecisionError(s.to_string()))
    }
}

impl StateEncode for Decision {
    fn encode(&self, w: &mut StateWriter) {
        w.write_u8(match self {
            Decision::Accept => 0,
            Decision::Reject => 1,
            Decision::Shed => 2,
        });
    }
}

impl StateDecode for Decision {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        match r.read_u8()? {
            0 => Ok(Decision::Accept),
            1 => Ok(Decision::Reject),
            2 => Ok(Decision::Shed),
            tag => Err(StateError::Corrupt(format!("invalid decision tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{StateReader, StateWriter};

    #[test]
    fn labels_roundtrip_through_display_and_fromstr() {
        for d in [Decision::Accept, Decision::Reject, Decision::Shed] {
            assert_eq!(d.to_string().parse::<Decision>().unwrap(), d);
            assert_eq!(d.label().to_lowercase().parse::<Decision>().unwrap(), d);
        }
        assert_eq!(" shed ".parse::<Decision>().unwrap(), Decision::Shed);
        let err = "maybe".parse::<Decision>().unwrap_err();
        assert!(err.to_string().contains("maybe"));
    }

    #[test]
    fn only_accept_admits() {
        assert!(Decision::Accept.is_admitted());
        assert!(!Decision::Reject.is_admitted());
        assert!(!Decision::Shed.is_admitted());
    }

    #[test]
    fn state_codec_roundtrips_and_rejects_bad_tags() {
        for d in [Decision::Accept, Decision::Reject, Decision::Shed] {
            let mut w = StateWriter::new();
            w.write(&d);
            let blob = w.finish();
            let mut r = StateReader::new(&blob);
            assert_eq!(r.read::<Decision>().unwrap(), d);
        }
        let mut w = StateWriter::new();
        w.write_u8(9);
        let blob = w.finish();
        let mut r = StateReader::new(&blob);
        assert!(r.read::<Decision>().is_err());
    }
}
