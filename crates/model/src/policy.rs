//! Placement policy: the inefficiency coefficients `η_s^q`.
//!
//! The paper's `η_s^q` scales the footprint of virtual element `q` on
//! substrate element `s`; extremely high values forbid a placement (GPU,
//! privacy, compliance). We model "forbidden" as `None` rather than a huge
//! float, which keeps LP matrices well-conditioned, and expose finite
//! multipliers for everything else.

use serde::{Deserialize, Serialize};

use crate::substrate::{SubstrateLink, SubstrateNode, Tier};
use crate::vnet::{VirtualLink, Vnf, VnfKind};

/// The inefficiency coefficients `η` as a policy object.
///
/// The default policy implements the paper's evaluation rules:
///
/// * ordinary VNFs have `η = 1` on ordinary datacenters and are forbidden
///   on GPU datacenters;
/// * GPU VNFs are only placeable on GPU datacenters (`η = 1` there);
/// * accelerator VNFs behave as ordinary VNFs for placement (their effect
///   is on downstream link sizes, applied at application construction);
/// * the root `θ` is placeable anywhere with zero footprint;
/// * virtual links have `η = 1` on every substrate link.
///
/// Per-tier multipliers allow modeling energy or hardware-affinity
/// extensions (§VI "future work").
///
/// # Examples
///
/// ```
/// use vne_model::policy::PlacementPolicy;
/// use vne_model::substrate::{SubstrateNode, Tier};
/// use vne_model::vnet::{Vnf, VnfKind};
///
/// let policy = PlacementPolicy::default();
/// let vnf = Vnf { beta: 50.0, kind: VnfKind::Standard };
/// let gpu_dc = SubstrateNode {
///     name: "g".into(), tier: Tier::Core, capacity: 1.0, cost: 1.0, gpu: true,
/// };
/// assert_eq!(policy.node_eta(&vnf, &gpu_dc), None); // ordinary VNF barred from GPU DC
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPolicy {
    /// Multiplier applied to VNF footprints per tier `[edge, transport, core]`.
    pub tier_node_eta: [f64; 3],
    /// Multiplier applied to virtual link footprints on substrate links.
    pub link_eta: f64,
    /// Whether GPU datacenters reject non-GPU VNFs (paper Fig. 10: "these
    /// datacenters do not allow placement of non GPU VNFs").
    pub gpu_exclusive: bool,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        Self {
            tier_node_eta: [1.0, 1.0, 1.0],
            link_eta: 1.0,
            gpu_exclusive: true,
        }
    }
}

impl PlacementPolicy {
    /// Creates the default paper policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn tier_index(tier: Tier) -> usize {
        match tier {
            Tier::Edge => 0,
            Tier::Transport => 1,
            Tier::Core => 2,
        }
    }

    /// `η_s^q` for placing VNF `vnf` on datacenter `node`; `None` means the
    /// placement is forbidden.
    pub fn node_eta(&self, vnf: &Vnf, node: &SubstrateNode) -> Option<f64> {
        match (vnf.kind, node.gpu) {
            (VnfKind::Gpu, false) => None,
            (VnfKind::Gpu, true) => Some(self.tier_node_eta[Self::tier_index(node.tier)]),
            (_, true) if self.gpu_exclusive && vnf.beta > 0.0 => None,
            _ => Some(self.tier_node_eta[Self::tier_index(node.tier)]),
        }
    }

    /// `η_s^q` for routing virtual link `vlink` over substrate link `link`.
    pub fn link_eta(&self, _vlink: &VirtualLink, _link: &SubstrateLink) -> Option<f64> {
        Some(self.link_eta)
    }

    /// Whether VNF `vnf` may be placed on `node` at all.
    pub fn allows(&self, vnf: &Vnf, node: &SubstrateNode) -> bool {
        self.node_eta(vnf, node).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(tier: Tier, gpu: bool) -> SubstrateNode {
        SubstrateNode {
            name: "x".into(),
            tier,
            capacity: 100.0,
            cost: 1.0,
            gpu,
        }
    }

    fn vnf(kind: VnfKind) -> Vnf {
        Vnf { beta: 10.0, kind }
    }

    #[test]
    fn standard_vnf_on_ordinary_dc() {
        let p = PlacementPolicy::default();
        assert_eq!(
            p.node_eta(&vnf(VnfKind::Standard), &node(Tier::Edge, false)),
            Some(1.0)
        );
        assert!(p.allows(&vnf(VnfKind::Standard), &node(Tier::Core, false)));
    }

    #[test]
    fn gpu_vnf_requires_gpu_dc() {
        let p = PlacementPolicy::default();
        assert_eq!(
            p.node_eta(&vnf(VnfKind::Gpu), &node(Tier::Core, false)),
            None
        );
        assert_eq!(
            p.node_eta(&vnf(VnfKind::Gpu), &node(Tier::Core, true)),
            Some(1.0)
        );
    }

    #[test]
    fn gpu_dc_excludes_ordinary_vnfs() {
        let p = PlacementPolicy::default();
        assert_eq!(
            p.node_eta(&vnf(VnfKind::Standard), &node(Tier::Edge, true)),
            None
        );
        assert_eq!(
            p.node_eta(&vnf(VnfKind::Accelerator), &node(Tier::Edge, true)),
            None
        );
    }

    #[test]
    fn root_is_placeable_on_gpu_dc() {
        // The root has β = 0 and must be placeable at its ingress even if
        // that ingress is a GPU datacenter.
        let p = PlacementPolicy::default();
        let root = Vnf {
            beta: 0.0,
            kind: VnfKind::Standard,
        };
        assert_eq!(p.node_eta(&root, &node(Tier::Edge, true)), Some(1.0));
    }

    #[test]
    fn non_exclusive_policy_allows_mixing() {
        let p = PlacementPolicy {
            gpu_exclusive: false,
            ..PlacementPolicy::default()
        };
        assert_eq!(
            p.node_eta(&vnf(VnfKind::Standard), &node(Tier::Edge, true)),
            Some(1.0)
        );
    }

    #[test]
    fn tier_multipliers_scale_eta() {
        let p = PlacementPolicy {
            tier_node_eta: [2.0, 1.0, 0.5],
            ..PlacementPolicy::default()
        };
        assert_eq!(
            p.node_eta(&vnf(VnfKind::Standard), &node(Tier::Edge, false)),
            Some(2.0)
        );
        assert_eq!(
            p.node_eta(&vnf(VnfKind::Standard), &node(Tier::Core, false)),
            Some(0.5)
        );
    }

    #[test]
    fn link_eta_default_is_one() {
        let p = PlacementPolicy::default();
        let vl = VirtualLink {
            from: crate::ids::VnodeId(0),
            to: crate::ids::VnodeId(1),
            beta: 5.0,
        };
        let sl = SubstrateLink {
            a: crate::ids::NodeId(0),
            b: crate::ids::NodeId(1),
            capacity: 10.0,
            cost: 1.0,
        };
        assert_eq!(p.link_eta(&vl, &sl), Some(1.0));
    }
}
