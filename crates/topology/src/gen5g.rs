//! A 5GEN-style hierarchical 5G infrastructure topology.
//!
//! The paper's "5GEN" topology (78 nodes, 100 links) models a 5G
//! deployment in Madrid produced by the 5GEN tool: many gNB-site edge
//! datacenters aggregated over transport rings into a small meshed core.
//! This generator reproduces that hierarchical shape deterministically at
//! the published size (see DESIGN.md §6).

use vne_model::error::ModelResult;
use vne_model::substrate::{SubstrateNetwork, Tier};

use crate::builder::TopologySpec;
use crate::params::TierParams;
use crate::zoo::DEFAULT_COST_SEED;

/// The structural spec of the 5GEN Madrid replica (78 nodes, 100 links):
/// 4 meshed core sites, a 14-site transport ring dual-homed to the core,
/// and 60 gNB edge sites (6 of them double-homed).
pub fn five_gen_spec() -> TopologySpec {
    let mut spec = TopologySpec::new("5GEN");
    // 4 core sites, full mesh: 6 links.
    let cores: Vec<usize> = (0..4)
        .map(|i| spec.add_node(format!("Core-{i}"), Tier::Core))
        .collect();
    for i in 0..4 {
        for j in i + 1..4 {
            spec.add_edge(cores[i], cores[j]);
        }
    }
    // 14 transport sites in a ring (14 links), each homed to one core
    // (14 links).
    let transports: Vec<usize> = (0..14)
        .map(|i| spec.add_node(format!("Agg-{i}"), Tier::Transport))
        .collect();
    for i in 0..14 {
        spec.add_edge(transports[i], transports[(i + 1) % 14]);
        spec.add_edge(transports[i], cores[i % 4]);
    }
    // 60 gNB edge sites: one transport uplink each (60 links) plus 6
    // double-homes (6 links). Total: 6 + 28 + 66 = 100.
    let edges: Vec<usize> = (0..60)
        .map(|i| spec.add_node(format!("gNB-{i}"), Tier::Edge))
        .collect();
    for (i, &e) in edges.iter().enumerate() {
        spec.add_edge(e, transports[i % 14]);
    }
    for i in 0..6 {
        let e = edges[i * 10];
        spec.add_edge(e, transports[(i * 10 + 7) % 14]);
    }
    spec
}

/// The 5GEN replica priced with the paper's Table II parameters.
///
/// # Errors
///
/// Propagates construction errors (none occur for the fixed spec).
pub fn five_gen() -> ModelResult<SubstrateNetwork> {
    five_gen_spec().build(&TierParams::paper(), DEFAULT_COST_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_gen_matches_published_size() {
        let s = five_gen().unwrap();
        assert_eq!(s.node_count(), 78);
        assert_eq!(s.link_count(), 100);
        assert!(s.is_connected());
    }

    #[test]
    fn five_gen_tier_composition() {
        let s = five_gen().unwrap();
        assert_eq!(s.nodes_in_tier(Tier::Core).len(), 4);
        assert_eq!(s.nodes_in_tier(Tier::Transport).len(), 14);
        assert_eq!(s.edge_nodes().len(), 60);
    }

    #[test]
    fn core_mesh_is_complete() {
        let s = five_gen().unwrap();
        let cores = s.nodes_in_tier(Tier::Core);
        for (i, &a) in cores.iter().enumerate() {
            for &b in cores.iter().skip(i + 1) {
                assert!(s.link_between(a, b).is_some());
            }
        }
    }
}
