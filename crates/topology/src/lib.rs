#![warn(missing_docs)]
//! # vne-topology — evaluation topologies for online VNE
//!
//! The paper evaluates on four physical topologies (Table II):
//!
//! | topology    | nodes | links | source                        | here |
//! |-------------|-------|-------|-------------------------------|------|
//! | Iris        | 50    | 64    | Internet Topology Zoo         | [`zoo::iris`] (replica) |
//! | Citta Studi | 30    | 35    | mobile edge network           | [`zoo::citta_studi`] (replica) |
//! | 5GEN        | 78    | 100   | 5GEN tool, Madrid             | [`gen5g::five_gen`] (generator) |
//! | 100N150E    | 100   | 150   | connected Erdős–Rényi         | [`random::hundred_n_150e`] |
//!
//! All topologies are tiered (edge/transport/core) and priced with the
//! Table II parameters ([`params::TierParams`]); [`gpu::gpu_variant`]
//! produces the Fig. 10 GPU scenario.
//!
//! ## Example
//!
//! ```
//! use vne_topology::{zoo, stats::TopologyStats};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let iris = zoo::iris()?;
//! let stats = TopologyStats::of(&iris);
//! assert_eq!((stats.nodes, stats.links), (50, 64));
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod gen5g;
pub mod gpu;
pub mod params;
pub mod partition;
pub mod random;
pub mod stats;
pub mod zoo;

use vne_model::error::ModelResult;
use vne_model::substrate::SubstrateNetwork;

/// The four paper topologies by name, in the paper's order.
///
/// # Errors
///
/// Propagates construction errors (none occur for the fixed instances).
pub fn paper_topologies() -> ModelResult<Vec<SubstrateNetwork>> {
    Ok(vec![
        zoo::iris()?,
        zoo::citta_studi()?,
        gen5g::five_gen()?,
        random::hundred_n_150e()?,
    ])
}
