//! Random connected topologies (the paper's 100N150E instance).
//!
//! `100N150E` is "a large connected Erdős–Rényi random graph" with 100
//! nodes and 150 links. We generate a uniformly random spanning tree
//! (guaranteeing connectivity) and add uniformly random extra links, then
//! assign tiers by degree — the highest-degree nodes become the core, as
//! the paper's three-tier structure implies for random graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vne_model::error::ModelResult;
use vne_model::substrate::{SubstrateNetwork, Tier};

use crate::builder::TopologySpec;
use crate::params::TierParams;

/// Fractions of nodes assigned to each tier by descending degree.
#[derive(Debug, Clone, Copy)]
pub struct TierFractions {
    /// Fraction of nodes in the core tier.
    pub core: f64,
    /// Fraction of nodes in the transport tier.
    pub transport: f64,
}

impl Default for TierFractions {
    fn default() -> Self {
        // 10% core, 30% transport, 60% edge — the approximate composition
        // of the paper's tiered topologies.
        Self {
            core: 0.10,
            transport: 0.30,
        }
    }
}

/// Generates a connected Erdős–Rényi-style graph spec with exactly `n`
/// nodes and `m` links.
///
/// # Panics
///
/// Panics if `m < n − 1` (a connected graph needs a spanning tree) or if
/// `m` exceeds `n·(n−1)/2`.
pub fn erdos_renyi_spec(n: usize, m: usize, seed: u64, fractions: TierFractions) -> TopologySpec {
    assert!(m + 1 >= n, "need at least n-1 links for connectivity");
    assert!(m <= n * (n - 1) / 2, "too many links for a simple graph");
    let mut rng = StdRng::seed_from_u64(seed);

    // Random spanning tree: random attachment order.
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(m);
    let mut present = std::collections::HashSet::new();
    for v in 1..n {
        let u = rng.gen_range(0..v);
        edges.push((u, v));
        present.insert((u, v));
    }
    // Extra random links.
    while edges.len() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if present.insert(key) {
            edges.push(key);
        }
    }

    // Degree-based tier assignment.
    let mut degree = vec![0usize; n];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(degree[v]), v));
    let n_core = ((n as f64 * fractions.core).round() as usize).max(1);
    let n_transport = ((n as f64 * fractions.transport).round() as usize).max(1);
    let mut tier = vec![Tier::Edge; n];
    for (rank, &v) in order.iter().enumerate() {
        tier[v] = if rank < n_core {
            Tier::Core
        } else if rank < n_core + n_transport {
            Tier::Transport
        } else {
            Tier::Edge
        };
    }

    let mut spec = TopologySpec::new(format!("{n}N{m}E"));
    for (v, &t) in tier.iter().enumerate() {
        spec.add_node(format!("R{v}"), t);
    }
    for (a, b) in edges {
        spec.add_edge(a, b);
    }
    spec
}

/// The paper's `100N150E` instance (seeded deterministically).
///
/// # Errors
///
/// Propagates construction errors (none occur for valid parameters).
pub fn hundred_n_150e() -> ModelResult<SubstrateNetwork> {
    erdos_renyi_spec(100, 150, 0x0150, TierFractions::default())
        .build(&TierParams::paper(), crate::zoo::DEFAULT_COST_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_node_instance_matches_size() {
        let s = hundred_n_150e().unwrap();
        assert_eq!(s.node_count(), 100);
        assert_eq!(s.link_count(), 150);
        assert!(s.is_connected());
    }

    #[test]
    fn tier_fractions_are_respected() {
        let s = hundred_n_150e().unwrap();
        assert_eq!(s.nodes_in_tier(Tier::Core).len(), 10);
        assert_eq!(s.nodes_in_tier(Tier::Transport).len(), 30);
        assert_eq!(s.edge_nodes().len(), 60);
    }

    #[test]
    fn core_nodes_have_highest_degrees() {
        let s = hundred_n_150e().unwrap();
        let min_core_degree = s
            .nodes_in_tier(Tier::Core)
            .iter()
            .map(|&n| s.degree(n))
            .min()
            .unwrap();
        let max_edge_degree = s.edge_nodes().iter().map(|&n| s.degree(n)).max().unwrap();
        assert!(min_core_degree >= max_edge_degree);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = erdos_renyi_spec(30, 45, 5, TierFractions::default());
        let b = erdos_renyi_spec(30, 45, 5, TierFractions::default());
        assert_eq!(a.edges, b.edges);
        let c = erdos_renyi_spec(30, 45, 6, TierFractions::default());
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn minimal_tree_case() {
        let spec = erdos_renyi_spec(5, 4, 1, TierFractions::default());
        let s = spec.build(&TierParams::paper(), 0).unwrap();
        assert!(s.is_connected());
        assert_eq!(s.link_count(), 4);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn rejects_too_few_links() {
        erdos_renyi_spec(10, 5, 0, TierFractions::default());
    }
}
