//! Deterministic replicas of the paper's real-world topologies.
//!
//! The paper evaluates on *Iris* (Internet Topology Zoo, 50 nodes / 64
//! links) and *Citta Studi* (a mobile edge network, 30 nodes / 35 links).
//! The original GML files are not redistributable here, so these replicas
//! reproduce the published node/link counts and the three-tier mobile
//! access structure (edge/transport/core) the paper imposes on them; the
//! algorithms only see sizes, tiers and the capacity/cost tables, so ISP
//! geometry is immaterial (see DESIGN.md §6). The Iris replica includes
//! the `Franklin` edge node referenced by Fig. 12.

use vne_model::error::ModelResult;
use vne_model::substrate::{SubstrateNetwork, Tier};

use crate::builder::TopologySpec;
use crate::params::TierParams;

/// Seed used for node-cost jitter in the canonical instances.
pub const DEFAULT_COST_SEED: u64 = 0x1215;

/// Edge-node city names for the Iris replica (32 names, `Franklin` among
/// them, as in the paper's Fig. 12).
const IRIS_EDGE_NAMES: [&str; 32] = [
    "Franklin",
    "Aurora",
    "Bristol",
    "Clayton",
    "Dayton",
    "Easton",
    "Fairfield",
    "Georgetown",
    "Hamilton",
    "Irvine",
    "Jackson",
    "Kingston",
    "Lebanon",
    "Madison",
    "Newport",
    "Oakland",
    "Princeton",
    "Quincy",
    "Riverside",
    "Salem",
    "Trenton",
    "Union",
    "Vernon",
    "Warren",
    "Xenia",
    "York",
    "Zanesville",
    "Ashland",
    "Burlington",
    "Camden",
    "Dover",
    "Elgin",
];

/// The structural spec of the Iris replica (50 nodes, 64 links).
pub fn iris_spec() -> TopologySpec {
    let mut spec = TopologySpec::new("Iris");
    // 5 core datacenters: ring + 2 chords (7 links).
    let cores: Vec<usize> = (0..5)
        .map(|i| spec.add_node(format!("Core{i}"), Tier::Core))
        .collect();
    for i in 0..5 {
        spec.add_edge(cores[i], cores[(i + 1) % 5]);
    }
    spec.add_edge(cores[0], cores[2]);
    spec.add_edge(cores[1], cores[3]);
    // 13 transport datacenters: one core uplink each (13 links) and a
    // partial chain among even-indexed transports (6 links).
    let transports: Vec<usize> = (0..13)
        .map(|i| spec.add_node(format!("Transit{i}"), Tier::Transport))
        .collect();
    for (i, &t) in transports.iter().enumerate() {
        spec.add_edge(t, cores[i % 5]);
    }
    for i in (0..12).step_by(2) {
        spec.add_edge(transports[i], transports[i + 1]);
    }
    // 32 edge datacenters: one transport uplink each (32 links) and 6
    // double-homed edges (6 links). Total: 7 + 19 + 38 = 64.
    let edges: Vec<usize> = IRIS_EDGE_NAMES
        .iter()
        .map(|name| spec.add_node(*name, Tier::Edge))
        .collect();
    for (i, &e) in edges.iter().enumerate() {
        spec.add_edge(e, transports[i % 13]);
    }
    for i in 0..6 {
        // Double-home every fifth edge node to a second transport.
        let e = edges[i * 5];
        spec.add_edge(e, transports[(i * 5 + 6) % 13]);
    }
    spec
}

/// The Iris replica priced with the paper's Table II parameters.
///
/// # Errors
///
/// Propagates construction errors (none occur for the fixed spec).
pub fn iris() -> ModelResult<SubstrateNetwork> {
    iris_spec().build(&TierParams::paper(), DEFAULT_COST_SEED)
}

/// The structural spec of the Citta Studi replica (30 nodes, 35 links):
/// a small mobile edge network with 2 core sites, 6 aggregation sites and
/// 22 edge sites.
pub fn citta_studi_spec() -> TopologySpec {
    let mut spec = TopologySpec::new("CittaStudi");
    let c0 = spec.add_node("Core0", Tier::Core);
    let c1 = spec.add_node("Core1", Tier::Core);
    spec.add_edge(c0, c1);
    let transports: Vec<usize> = (0..6)
        .map(|i| spec.add_node(format!("Agg{i}"), Tier::Transport))
        .collect();
    for &t in &transports {
        spec.add_edge(t, c0);
        spec.add_edge(t, c1);
    }
    for i in 0..22 {
        let e = spec.add_node(format!("Edge{i}"), Tier::Edge);
        spec.add_edge(e, transports[i % 6]);
    }
    spec
}

/// The Citta Studi replica priced with the paper's parameters.
///
/// # Errors
///
/// Propagates construction errors (none occur for the fixed spec).
pub fn citta_studi() -> ModelResult<SubstrateNetwork> {
    citta_studi_spec().build(&TierParams::paper(), DEFAULT_COST_SEED)
}

/// The tiny 4-node "golden" world shared by the golden-fingerprint
/// regression suite and the adversarial scenario benchmark: two edge
/// nodes, one transport, one core, all at 300 CUs with the paper's
/// per-tier cost gradient, plus a 2-VNF chain and a 3-VNF two-branch
/// tree application.
///
/// Unlike the parity suite's world (whose 2700-CU core swallows any
/// edge-calibrated load), capacities here are uniform, so the
/// utilization axis genuinely bites and high-load scenarios actually
/// reject. The exact capacities, costs and app shapes are pinned by the
/// golden fingerprints — change them only together with a golden
/// re-capture.
pub fn golden_diamond() -> ModelResult<(SubstrateNetwork, vne_model::app::AppSet)> {
    use vne_model::app::{shapes, AppSet, AppShape};
    let mut s = SubstrateNetwork::new("golden");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0)?;
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0)?;
    let t = s.add_node("t", Tier::Transport, 300.0, 10.0)?;
    let c = s.add_node("c", Tier::Core, 300.0, 1.0)?;
    s.add_link(e0, t, 1500.0, 1.0)?;
    s.add_link(e1, t, 1500.0, 1.0)?;
    s.add_link(t, c, 4500.0, 1.0)?;
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0)?,
    )?;
    apps.push(
        "tree",
        AppShape::Tree,
        shapes::two_branch_tree(3, 6.0, 2.0)?,
    )?;
    Ok((s, apps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iris_matches_published_size() {
        let s = iris().unwrap();
        assert_eq!(s.node_count(), 50);
        assert_eq!(s.link_count(), 64);
        assert!(s.is_connected());
    }

    #[test]
    fn iris_has_franklin_edge_node() {
        let s = iris().unwrap();
        let franklin = s.node_by_name("Franklin").unwrap();
        assert_eq!(s.node(franklin).tier, Tier::Edge);
    }

    #[test]
    fn iris_tier_composition() {
        let s = iris().unwrap();
        assert_eq!(s.nodes_in_tier(Tier::Core).len(), 5);
        assert_eq!(s.nodes_in_tier(Tier::Transport).len(), 13);
        assert_eq!(s.edge_nodes().len(), 32);
        assert_eq!(s.total_edge_capacity(), 32.0 * 200_000.0);
    }

    #[test]
    fn citta_studi_matches_published_size() {
        let s = citta_studi().unwrap();
        assert_eq!(s.node_count(), 30);
        assert_eq!(s.link_count(), 35);
        assert!(s.is_connected());
        assert_eq!(s.edge_nodes().len(), 22);
    }

    #[test]
    fn replicas_are_deterministic() {
        let a = iris().unwrap();
        let b = iris().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn edge_nodes_have_degree_at_least_one() {
        let s = iris().unwrap();
        for e in s.edge_nodes() {
            assert!(s.degree(e) >= 1);
        }
    }
}
