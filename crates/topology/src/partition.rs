//! Substrate partitioners and the large synthetic substrate builder.
//!
//! The sharded execution path (`vne-shard`) needs two things from the
//! topology layer: a way to split a substrate into `k` connected
//! regions, and substrates large enough for sharding to matter.
//!
//! * [`Partitioner`] — the open partitioning seam, returning a
//!   [`PartitionAssignment`] consumed by
//!   [`vne_model::shard::ShardedSubstrate`]. Two built-in strategies:
//!   [`RegionGrow`] (balanced multi-source BFS regions — fast, shapes
//!   shards by hop distance) and [`GreedyEdgeCut`] (grows the smallest
//!   shard by the boundary node with the most neighbors already inside
//!   it, greedily minimizing the k-way edge cut).
//! * [`large_synthetic`] — an `O(n + m)` generator for substrates of
//!   10⁵–10⁶ nodes: a random spanning tree plus random chords under a
//!   hard degree cap ([`LARGE_SYNTHETIC_MAX_DEGREE`]), degree-sorted
//!   tiering, Table II pricing. Nothing is precomputed or cached — the
//!   substrate is generated on demand from `(nodes, seed)`.
//!
//! Both partitioners grow regions along substrate edges only, so every
//! shard's local substrate is connected — the invariant
//! `ShardedSubstrate::new` validates. Everything here is deterministic
//! in `(substrate, shards, seed)`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vne_model::error::{ModelError, ModelResult};
use vne_model::ids::NodeId;
use vne_model::shard::PartitionAssignment;
use vne_model::substrate::{SubstrateNetwork, Tier};

use crate::builder::TopologySpec;
use crate::params::TierParams;

/// Splits a substrate into `k` connected regions.
///
/// Implementations must be deterministic in `(substrate, shards)` plus
/// their own configuration, must cover every node exactly once with
/// dense shard ids, and must keep every region connected (so each
/// shard-local substrate is a valid [`SubstrateNetwork`]).
pub trait Partitioner {
    /// A short display name (e.g. `"region-grow"`).
    fn name(&self) -> &'static str;

    /// Assigns every node of `substrate` to one of `shards` shards.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] when `shards` is zero or
    /// exceeds the node count, and
    /// [`ModelError::DisconnectedSubstrate`] when the substrate cannot
    /// seed that many connected regions.
    fn partition(
        &self,
        substrate: &SubstrateNetwork,
        shards: usize,
    ) -> ModelResult<PartitionAssignment>;
}

/// Balanced multi-source BFS partitioning.
///
/// Seeds are spread by farthest-point hop distance (first seed from
/// `seed`), then regions grow breadth-first, always extending the
/// currently smallest region — shards come out balanced and compact in
/// hop distance, but the edge cut is whatever BFS frontiers collide on.
#[derive(Debug, Clone, Copy)]
pub struct RegionGrow {
    /// Selects the first BFS seed node (`seed % node_count`).
    pub seed: u64,
}

/// Greedy k-way edge-cut partitioning.
///
/// Same farthest-point seeds as [`RegionGrow`], but the smallest region
/// grows by the *boundary node with the most neighbors already inside
/// it* (ties: lowest node id) — each step adds the node that converts
/// the most would-be cut edges into internal edges, greedily minimizing
/// the k-way cut while keeping regions connected and balanced.
#[derive(Debug, Clone, Copy)]
pub struct GreedyEdgeCut {
    /// Selects the first seed node (`seed % node_count`).
    pub seed: u64,
}

impl Partitioner for RegionGrow {
    fn name(&self) -> &'static str {
        "region-grow"
    }

    fn partition(
        &self,
        substrate: &SubstrateNetwork,
        shards: usize,
    ) -> ModelResult<PartitionAssignment> {
        let seeds = spread_seeds(substrate, shards, self.seed)?;
        let n = substrate.node_count();
        let mut shard_of = vec![u32::MAX; n];
        let mut frontier: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); shards];
        let mut size = vec![0usize; shards];
        let mut alive: BTreeSet<usize> = (0..shards).collect();
        let mut assigned = 0usize;
        for (s, &node) in seeds.iter().enumerate() {
            shard_of[node.index()] = s as u32;
            size[s] += 1;
            assigned += 1;
            for &(nb, _) in substrate.neighbors(node) {
                frontier[s].push_back(nb);
            }
        }
        while assigned < n {
            // The smallest still-growing region extends first (ties:
            // lowest shard id) — keeps shards balanced.
            let Some(&s) = alive.iter().min_by_key(|&&s| (size[s], s)) else {
                return Err(ModelError::DisconnectedSubstrate);
            };
            let mut grew = false;
            while let Some(v) = frontier[s].pop_front() {
                if shard_of[v.index()] != u32::MAX {
                    continue;
                }
                shard_of[v.index()] = s as u32;
                size[s] += 1;
                assigned += 1;
                for &(nb, _) in substrate.neighbors(v) {
                    if shard_of[nb.index()] == u32::MAX {
                        frontier[s].push_back(nb);
                    }
                }
                grew = true;
                break;
            }
            if !grew {
                alive.remove(&s);
            }
        }
        PartitionAssignment::new(shard_of)
    }
}

impl Partitioner for GreedyEdgeCut {
    fn name(&self) -> &'static str {
        "greedy-edge-cut"
    }

    fn partition(
        &self,
        substrate: &SubstrateNetwork,
        shards: usize,
    ) -> ModelResult<PartitionAssignment> {
        let seeds = spread_seeds(substrate, shards, self.seed)?;
        let n = substrate.node_count();
        let mut shard_of = vec![u32::MAX; n];
        // Per shard: candidate boundary nodes bucketed by gain (number
        // of neighbors already inside the shard), highest bucket first,
        // lowest node id inside a bucket. Gains for nodes assigned
        // elsewhere go stale and are skipped lazily.
        let mut gain: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); shards];
        let mut buckets: Vec<BTreeMap<usize, BTreeSet<usize>>> = vec![BTreeMap::new(); shards];
        let mut size = vec![0usize; shards];
        let mut alive: BTreeSet<usize> = (0..shards).collect();
        let mut assigned = 0usize;

        let absorb = |v: NodeId,
                      s: usize,
                      shard_of: &mut Vec<u32>,
                      gain: &mut Vec<BTreeMap<usize, usize>>,
                      buckets: &mut Vec<BTreeMap<usize, BTreeSet<usize>>>,
                      size: &mut Vec<usize>,
                      assigned: &mut usize| {
            shard_of[v.index()] = s as u32;
            size[s] += 1;
            *assigned += 1;
            for &(nb, _) in substrate.neighbors(v) {
                if shard_of[nb.index()] != u32::MAX {
                    continue;
                }
                let g = gain[s].entry(nb.index()).or_insert(0);
                if *g > 0 {
                    if let Some(set) = buckets[s].get_mut(g) {
                        set.remove(&nb.index());
                        if set.is_empty() {
                            let stale = *g;
                            buckets[s].remove(&stale);
                        }
                    }
                }
                *g += 1;
                buckets[s].entry(*g).or_default().insert(nb.index());
            }
        };

        for (s, &node) in seeds.iter().enumerate() {
            absorb(
                node,
                s,
                &mut shard_of,
                &mut gain,
                &mut buckets,
                &mut size,
                &mut assigned,
            );
        }
        while assigned < n {
            let Some(&s) = alive.iter().min_by_key(|&&s| (size[s], s)) else {
                return Err(ModelError::DisconnectedSubstrate);
            };
            // Highest-gain unassigned candidate of shard s (lazy-clean
            // candidates that another shard absorbed meanwhile).
            let mut pick = None;
            while let Some((&g, set)) = buckets[s].iter_mut().next_back() {
                let mut stale = Vec::new();
                for &v in set.iter() {
                    if shard_of[v] == u32::MAX {
                        pick = Some(v);
                        break;
                    }
                    stale.push(v);
                }
                for v in &stale {
                    set.remove(v);
                    gain[s].remove(v);
                }
                if let Some(v) = pick {
                    set.remove(&v);
                    gain[s].remove(&v);
                    if set.is_empty() {
                        buckets[s].remove(&g);
                    }
                    break;
                }
                if set.is_empty() {
                    buckets[s].remove(&g);
                }
            }
            match pick {
                Some(v) => absorb(
                    NodeId::from_index(v),
                    s,
                    &mut shard_of,
                    &mut gain,
                    &mut buckets,
                    &mut size,
                    &mut assigned,
                ),
                None => {
                    alive.remove(&s);
                }
            }
        }
        PartitionAssignment::new(shard_of)
    }
}

/// Farthest-point seed spreading: the first seed is `seed % n`; each
/// further seed is the node with maximal hop distance to the seeds
/// chosen so far (ties: lowest node id).
fn spread_seeds(
    substrate: &SubstrateNetwork,
    shards: usize,
    seed: u64,
) -> ModelResult<Vec<NodeId>> {
    let n = substrate.node_count();
    if shards == 0 || shards > n {
        return Err(ModelError::InvalidQuantity {
            what: "shard count",
            value: shards as f64,
        });
    }
    let mut seeds = vec![NodeId::from_index((seed % n as u64) as usize)];
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    // Incremental multi-source BFS: each new seed only relaxes.
    let relax_from = |s: NodeId, dist: &mut Vec<usize>, queue: &mut VecDeque<NodeId>| {
        dist[s.index()] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            for &(nb, _) in substrate.neighbors(v) {
                if dist[nb.index()] > d + 1 {
                    dist[nb.index()] = d + 1;
                    queue.push_back(nb);
                }
            }
        }
    };
    relax_from(seeds[0], &mut dist, &mut queue);
    while seeds.len() < shards {
        let far = (0..n)
            .filter(|&v| dist[v] != 0)
            .max_by_key(|&v| (dist[v], std::cmp::Reverse(v)))
            .ok_or(ModelError::DisconnectedSubstrate)?;
        if dist[far] == usize::MAX {
            return Err(ModelError::DisconnectedSubstrate);
        }
        let s = NodeId::from_index(far);
        seeds.push(s);
        relax_from(s, &mut dist, &mut queue);
    }
    Ok(seeds)
}

/// Hard per-node degree cap of [`large_synthetic`] substrates.
pub const LARGE_SYNTHETIC_MAX_DEGREE: usize = 16;

/// Structural spec of a [`large_synthetic`] substrate: a random
/// spanning tree plus random chords up to `2·n` links total, every node
/// degree at most [`LARGE_SYNTHETIC_MAX_DEGREE`], tiers assigned by
/// descending degree (10% core, 30% transport, 60% edge).
///
/// # Panics
///
/// Panics when `nodes < 4` (the tier split needs all three tiers).
pub fn large_synthetic_spec(nodes: usize, seed: u64) -> TopologySpec {
    assert!(nodes >= 4, "large_synthetic needs at least 4 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = nodes;
    let target_links = 2 * n;
    let mut degree = vec![0usize; n];
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(target_links);
    let mut present = std::collections::HashSet::with_capacity(target_links);

    // Spanning tree by random attachment; a saturated parent falls
    // forward deterministically to the next node with headroom.
    for v in 1..n {
        let mut u = rng.gen_range(0..v);
        if degree[u] >= LARGE_SYNTHETIC_MAX_DEGREE {
            u = (1..v)
                .map(|step| (u + step) % v)
                .find(|&c| degree[c] < LARGE_SYNTHETIC_MAX_DEGREE)
                .expect("a tree prefix cannot saturate every node");
        }
        edges.push((u, v));
        present.insert((u, v));
        degree[u] += 1;
        degree[v] += 1;
    }
    // Random chords under the degree cap. The attempt budget bounds the
    // loop on adversarial parameters; dense-enough graphs fill up long
    // before it runs out.
    let mut attempts = 20 * target_links;
    while edges.len() < target_links && attempts > 0 {
        attempts -= 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b
            || degree[a] >= LARGE_SYNTHETIC_MAX_DEGREE
            || degree[b] >= LARGE_SYNTHETIC_MAX_DEGREE
        {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if present.insert(key) {
            edges.push(key);
            degree[a] += 1;
            degree[b] += 1;
        }
    }

    // Degree-sorted tiering, as in `erdos_renyi_spec`.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(degree[v]), v));
    let n_core = ((n as f64 * 0.10).round() as usize).max(1);
    let n_transport = ((n as f64 * 0.30).round() as usize).max(1);
    let mut tier = vec![Tier::Edge; n];
    for (rank, &v) in order.iter().enumerate() {
        tier[v] = if rank < n_core {
            Tier::Core
        } else if rank < n_core + n_transport {
            Tier::Transport
        } else {
            Tier::Edge
        };
    }

    let mut spec = TopologySpec::new(format!("LS{n}"));
    for (v, &t) in tier.iter().enumerate() {
        spec.add_node(format!("L{v}"), t);
    }
    for (a, b) in edges {
        spec.add_edge(a, b);
    }
    spec
}

/// Builds a large synthetic substrate (Table II pricing, paper tier
/// parameters) on demand from `(nodes, seed)` — the sharding
/// benchmark's 10⁵-node worlds come from here. `O(n + m)` time and
/// memory, deterministic per seed.
///
/// # Errors
///
/// Propagates construction errors (none occur for valid parameters).
///
/// # Panics
///
/// Panics when `nodes < 4`.
pub fn large_synthetic(nodes: usize, seed: u64) -> ModelResult<SubstrateNetwork> {
    large_synthetic_spec(nodes, seed)
        .build(&TierParams::paper(), crate::zoo::DEFAULT_COST_SEED ^ seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::shard::ShardedSubstrate;

    fn world(n: usize, m: usize, seed: u64) -> SubstrateNetwork {
        crate::random::erdos_renyi_spec(n, m, seed, crate::random::TierFractions::default())
            .build(&TierParams::paper(), 3)
            .unwrap()
    }

    #[test]
    fn both_partitioners_produce_valid_sharded_views() {
        let s = world(40, 80, 9);
        for k in [1usize, 2, 3, 5, 8] {
            for (name, assignment) in [
                ("region", RegionGrow { seed: 5 }.partition(&s, k).unwrap()),
                (
                    "greedy",
                    GreedyEdgeCut { seed: 5 }.partition(&s, k).unwrap(),
                ),
            ] {
                assert_eq!(assignment.shard_count(), k, "{name} k={k}");
                let sharded = ShardedSubstrate::new(&s, &assignment).unwrap();
                let total: usize = sharded.shards().map(|(_, s)| s.node_count()).sum();
                assert_eq!(total, s.node_count(), "{name} k={k}");
            }
        }
    }

    #[test]
    fn partitions_are_deterministic_per_seed() {
        let s = world(30, 60, 2);
        let a = GreedyEdgeCut { seed: 7 }.partition(&s, 4).unwrap();
        let b = GreedyEdgeCut { seed: 7 }.partition(&s, 4).unwrap();
        assert_eq!(a, b);
        let c = RegionGrow { seed: 7 }.partition(&s, 4).unwrap();
        let d = RegionGrow { seed: 7 }.partition(&s, 4).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn greedy_cut_is_no_worse_than_region_grow_on_average() {
        // Not a guarantee per instance, but across a few worlds the
        // greedy cut should not lose to plain BFS overall — it exists
        // to shrink the cut.
        let mut region = 0usize;
        let mut greedy = 0usize;
        for seed in 0..6u64 {
            let s = world(48, 110, seed);
            let a = RegionGrow { seed }.partition(&s, 4).unwrap();
            let b = GreedyEdgeCut { seed }.partition(&s, 4).unwrap();
            region += ShardedSubstrate::new(&s, &a).unwrap().cut_count();
            greedy += ShardedSubstrate::new(&s, &b).unwrap().cut_count();
        }
        assert!(
            greedy <= region,
            "greedy cut {greedy} worse than region-grow {region}"
        );
    }

    #[test]
    fn shard_count_bounds_are_enforced() {
        let s = world(10, 15, 1);
        for p in [
            &RegionGrow { seed: 0 } as &dyn Partitioner,
            &GreedyEdgeCut { seed: 0 },
        ] {
            assert!(p.partition(&s, 0).is_err(), "{}", p.name());
            assert!(p.partition(&s, 11).is_err(), "{}", p.name());
        }
    }

    #[test]
    fn regions_stay_balanced() {
        let s = world(60, 120, 4);
        for p in [
            &RegionGrow { seed: 1 } as &dyn Partitioner,
            &GreedyEdgeCut { seed: 1 },
        ] {
            let a = p.partition(&s, 4).unwrap();
            let sharded = ShardedSubstrate::new(&s, &a).unwrap();
            for (_, local) in sharded.shards() {
                // 60 nodes over 4 shards: every shard within 2× of even.
                assert!(
                    local.node_count() >= 7 && local.node_count() <= 30,
                    "{} ({}) sized {}",
                    p.name(),
                    local.name(),
                    local.node_count()
                );
            }
        }
    }

    #[test]
    fn large_synthetic_is_well_formed() {
        let s = large_synthetic(600, 42).unwrap();
        assert_eq!(s.node_count(), 600);
        assert!(s.is_connected());
        assert!(s.link_count() >= 599 && s.link_count() <= 1200);
        let max_degree = s.node_ids().map(|n| s.degree(n)).max().unwrap();
        assert!(max_degree <= LARGE_SYNTHETIC_MAX_DEGREE, "{max_degree}");
        assert!(!s.edge_nodes().is_empty());
        // Deterministic per seed.
        let t = large_synthetic(600, 42).unwrap();
        assert_eq!(s.link_count(), t.link_count());
        assert_eq!(
            s.node(NodeId(17)).cost.to_bits(),
            t.node(NodeId(17)).cost.to_bits()
        );
        let u = large_synthetic(600, 43).unwrap();
        assert!(
            s.node_ids().any(|n| s.node(n).cost != u.node(n).cost)
                || s.link_count() != u.link_count()
        );
    }

    #[test]
    fn large_synthetic_partitions_cleanly() {
        let s = large_synthetic(800, 7).unwrap();
        let a = GreedyEdgeCut { seed: 7 }.partition(&s, 16).unwrap();
        let sharded = ShardedSubstrate::new(&s, &a).unwrap();
        assert_eq!(sharded.shard_count(), 16);
        assert!(sharded.cut_count() > 0);
        // The cut is a small fraction of all links.
        assert!(
            sharded.cut_count() * 2 < s.link_count(),
            "cut {} of {}",
            sharded.cut_count(),
            s.link_count()
        );
    }
}
