//! Tier parameters from Table II of the paper.
//!
//! | parameter            | edge | transport | core |
//! |----------------------|------|-----------|------|
//! | node capacity \[CU\]   | 200K | 600K      | 1.8M |
//! | mean node cost (/CU) | 50   | 10        | 1    |
//! | link capacity \[CU\]   | 100K | 300K      | 900K |
//! | link cost (/CU)      | 1    | 1         | 1    |
//!
//! Datacenter costs are drawn uniformly between 50% and 150% of the tier
//! mean (§IV-A). Links take the parameters of the tier *closer to the
//! edge* among their endpoints (the 1:3 capacity ratio between successive
//! tiers).

use serde::{Deserialize, Serialize};
use vne_model::substrate::Tier;

/// Capacity/cost parameters for one tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Datacenter capacity in CU.
    pub node_capacity: f64,
    /// Mean datacenter cost per CU (actual cost jittered ±50%).
    pub mean_node_cost: f64,
    /// Link capacity in CU.
    pub link_capacity: f64,
    /// Link cost per CU.
    pub link_cost: f64,
}

/// The full tier parameter table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierParams {
    /// Edge tier parameters.
    pub edge: TierSpec,
    /// Transport tier parameters.
    pub transport: TierSpec,
    /// Core tier parameters.
    pub core: TierSpec,
    /// Relative half-width of the node-cost jitter (0.5 ⇒ U[50%,150%]).
    pub cost_jitter: f64,
}

impl Default for TierParams {
    fn default() -> Self {
        Self::paper()
    }
}

impl TierParams {
    /// The paper's Table II parameters.
    pub fn paper() -> Self {
        Self {
            edge: TierSpec {
                node_capacity: 200_000.0,
                mean_node_cost: 50.0,
                link_capacity: 100_000.0,
                link_cost: 1.0,
            },
            transport: TierSpec {
                node_capacity: 600_000.0,
                mean_node_cost: 10.0,
                link_capacity: 300_000.0,
                link_cost: 1.0,
            },
            core: TierSpec {
                node_capacity: 1_800_000.0,
                mean_node_cost: 1.0,
                link_capacity: 900_000.0,
                link_cost: 1.0,
            },
            cost_jitter: 0.5,
        }
    }

    /// A proportionally scaled-down parameter set for fast tests
    /// (capacities divided by `factor`, costs unchanged).
    pub fn scaled_down(factor: f64) -> Self {
        let mut p = Self::paper();
        for spec in [&mut p.edge, &mut p.transport, &mut p.core] {
            spec.node_capacity /= factor;
            spec.link_capacity /= factor;
        }
        p
    }

    /// The spec for a tier.
    pub fn spec(&self, tier: Tier) -> &TierSpec {
        match tier {
            Tier::Edge => &self.edge,
            Tier::Transport => &self.transport,
            Tier::Core => &self.core,
        }
    }

    /// The tier governing a link between nodes of tiers `a` and `b`: the
    /// one closer to the edge.
    pub fn link_tier(a: Tier, b: Tier) -> Tier {
        a.min(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_table2() {
        let p = TierParams::paper();
        assert_eq!(p.edge.node_capacity, 200_000.0);
        assert_eq!(p.transport.node_capacity, 600_000.0);
        assert_eq!(p.core.node_capacity, 1_800_000.0);
        assert_eq!(p.edge.mean_node_cost, 50.0);
        assert_eq!(p.core.mean_node_cost, 1.0);
        assert_eq!(p.edge.link_capacity, 100_000.0);
        // 1:3:9 capacity ratios.
        assert_eq!(p.transport.node_capacity / p.edge.node_capacity, 3.0);
        assert_eq!(p.core.link_capacity / p.transport.link_capacity, 3.0);
    }

    #[test]
    fn link_tier_takes_edge_most() {
        assert_eq!(TierParams::link_tier(Tier::Edge, Tier::Core), Tier::Edge);
        assert_eq!(
            TierParams::link_tier(Tier::Core, Tier::Transport),
            Tier::Transport
        );
        assert_eq!(TierParams::link_tier(Tier::Core, Tier::Core), Tier::Core);
    }

    #[test]
    fn scaled_down_divides_capacities_only() {
        let p = TierParams::scaled_down(1000.0);
        assert_eq!(p.edge.node_capacity, 200.0);
        assert_eq!(p.edge.mean_node_cost, 50.0);
    }

    #[test]
    fn spec_lookup() {
        let p = TierParams::paper();
        assert_eq!(p.spec(Tier::Transport).mean_node_cost, 10.0);
    }
}
