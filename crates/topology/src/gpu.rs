//! The GPU scenario transform (paper Fig. 10).
//!
//! The paper modifies Iris "to support this scenario by splitting the
//! core nodes and four random edge nodes into GPU and non-GPU ones.
//! Non-GPU datacenters were assigned capacity smaller by 25%." We
//! implement this as: half of the core datacenters (alternating) plus
//! four seeded-random edge datacenters become GPU sites; every non-GPU
//! datacenter loses 25% of its capacity.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use vne_model::substrate::{SubstrateNetwork, Tier};

/// Number of edge datacenters converted to GPU sites.
pub const GPU_EDGE_SITES: usize = 4;

/// Fractional capacity retained by non-GPU datacenters.
pub const NON_GPU_CAPACITY_FACTOR: f64 = 0.75;

/// Produces the GPU variant of a substrate.
///
/// Half of the core nodes (every other one, by id) and
/// [`GPU_EDGE_SITES`] seeded-random edge nodes are marked as GPU
/// datacenters; all remaining datacenters have their capacity reduced by
/// 25%.
pub fn gpu_variant(substrate: &SubstrateNetwork, seed: u64) -> SubstrateNetwork {
    let mut s = substrate.clone();
    let cores = s.nodes_in_tier(Tier::Core);
    for (i, &c) in cores.iter().enumerate() {
        if i % 2 == 0 {
            s.node_mut(c).gpu = true;
        }
    }
    let mut edges = s.edge_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);
    for &e in edges.iter().take(GPU_EDGE_SITES) {
        s.node_mut(e).gpu = true;
    }
    for id in s.node_ids().collect::<Vec<_>>() {
        if !s.node(id).gpu {
            s.node_mut(id).capacity *= NON_GPU_CAPACITY_FACTOR;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::iris;

    #[test]
    fn gpu_variant_marks_half_the_cores_and_four_edges() {
        let base = iris().unwrap();
        let s = gpu_variant(&base, 11);
        let gpu_cores = s
            .nodes_in_tier(Tier::Core)
            .iter()
            .filter(|&&c| s.node(c).gpu)
            .count();
        assert_eq!(gpu_cores, 3); // ⌈5/2⌉ with alternating marking
        let gpu_edges = s.edge_nodes().iter().filter(|&&e| s.node(e).gpu).count();
        assert_eq!(gpu_edges, GPU_EDGE_SITES);
    }

    #[test]
    fn non_gpu_capacity_reduced_by_quarter() {
        let base = iris().unwrap();
        let s = gpu_variant(&base, 11);
        for (id, n) in s.nodes() {
            let orig = base.node(id).capacity;
            if n.gpu {
                assert_eq!(n.capacity, orig);
            } else {
                assert!((n.capacity - orig * 0.75).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transform_is_deterministic_per_seed() {
        let base = iris().unwrap();
        assert_eq!(gpu_variant(&base, 3), gpu_variant(&base, 3));
    }

    #[test]
    fn original_is_untouched() {
        let base = iris().unwrap();
        let _ = gpu_variant(&base, 3);
        assert!(base.nodes().all(|(_, n)| !n.gpu));
    }
}
