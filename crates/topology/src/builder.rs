//! Assembles a tiered substrate network from a structural description.
//!
//! Topology sources (the zoo replicas, the 5G generator, random graphs)
//! produce a [`TopologySpec`] — named nodes with tiers plus an edge list —
//! and the builder prices it according to [`TierParams`]: capacities from
//! the tier table, node costs jittered uniformly in ±50% of the tier mean
//! (seeded, so every topology instance is reproducible).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vne_model::error::ModelResult;
use vne_model::substrate::{SubstrateNetwork, Tier};

use crate::params::TierParams;

/// Structural description of a topology before pricing.
#[derive(Debug, Clone, Default)]
pub struct TopologySpec {
    /// Topology name (e.g. `"Iris"`).
    pub name: String,
    /// `(name, tier)` per node; indices are node ids.
    pub nodes: Vec<(String, Tier)>,
    /// Undirected edges as index pairs into `nodes`.
    pub edges: Vec<(usize, usize)>,
}

impl TopologySpec {
    /// Creates an empty spec with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, name: impl Into<String>, tier: Tier) -> usize {
        self.nodes.push((name.into(), tier));
        self.nodes.len() - 1
    }

    /// Adds an undirected edge between node indices.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        self.edges.push((a, b));
    }

    /// Builds the priced substrate with the given parameters and cost seed.
    ///
    /// # Errors
    ///
    /// Propagates model construction errors (duplicate edges, self loops,
    /// unknown indices) and validates connectivity.
    pub fn build(&self, params: &TierParams, cost_seed: u64) -> ModelResult<SubstrateNetwork> {
        let mut rng = StdRng::seed_from_u64(cost_seed);
        let mut s = SubstrateNetwork::new(self.name.clone());
        let mut ids = Vec::with_capacity(self.nodes.len());
        for (name, tier) in &self.nodes {
            let spec = params.spec(*tier);
            let jitter = 1.0 + params.cost_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            let cost = spec.mean_node_cost * jitter;
            ids.push(s.add_node(name.clone(), *tier, spec.node_capacity, cost)?);
        }
        for &(a, b) in &self.edges {
            let tier = TierParams::link_tier(self.nodes[a].1, self.nodes[b].1);
            let spec = params.spec(tier);
            s.add_link(ids[a], ids[b], spec.link_capacity, spec.link_cost)?;
        }
        s.validate()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> TopologySpec {
        let mut spec = TopologySpec::new("toy");
        let e0 = spec.add_node("e0", Tier::Edge);
        let e1 = spec.add_node("e1", Tier::Edge);
        let t = spec.add_node("t", Tier::Transport);
        let c = spec.add_node("c", Tier::Core);
        spec.add_edge(e0, t);
        spec.add_edge(e1, t);
        spec.add_edge(t, c);
        spec
    }

    #[test]
    fn build_assigns_tier_parameters() {
        let s = toy_spec().build(&TierParams::paper(), 7).unwrap();
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.link_count(), 3);
        let e0 = s.node_by_name("e0").unwrap();
        assert_eq!(s.node(e0).capacity, 200_000.0);
        // Edge-transport links take edge-tier parameters.
        let t = s.node_by_name("t").unwrap();
        let l = s.link_between(e0, t).unwrap();
        assert_eq!(s.link(l).capacity, 100_000.0);
        let c = s.node_by_name("c").unwrap();
        let tc = s.link_between(t, c).unwrap();
        assert_eq!(s.link(tc).capacity, 300_000.0);
    }

    #[test]
    fn node_costs_jitter_within_bounds() {
        let s = toy_spec().build(&TierParams::paper(), 42).unwrap();
        for (_, n) in s.nodes() {
            let mean = TierParams::paper().spec(n.tier).mean_node_cost;
            assert!(
                n.cost >= 0.5 * mean && n.cost <= 1.5 * mean,
                "cost {}",
                n.cost
            );
        }
    }

    #[test]
    fn same_seed_reproduces_costs() {
        let a = toy_spec().build(&TierParams::paper(), 9).unwrap();
        let b = toy_spec().build(&TierParams::paper(), 9).unwrap();
        for (id, n) in a.nodes() {
            assert_eq!(n.cost, b.node(id).cost);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = toy_spec().build(&TierParams::paper(), 1).unwrap();
        let b = toy_spec().build(&TierParams::paper(), 2).unwrap();
        let differs = a.nodes().any(|(id, n)| n.cost != b.node(id).cost);
        assert!(differs);
    }

    #[test]
    fn disconnected_spec_fails() {
        let mut spec = TopologySpec::new("disc");
        spec.add_node("a", Tier::Edge);
        spec.add_node("b", Tier::Edge);
        assert!(spec.build(&TierParams::paper(), 0).is_err());
    }
}
