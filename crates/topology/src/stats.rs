//! Topology statistics (Table II rows and Fig. 5 summaries).

use std::fmt;

use vne_model::substrate::{SubstrateNetwork, Tier};

/// Summary statistics of a substrate topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStats {
    /// Topology name.
    pub name: String,
    /// Total nodes.
    pub nodes: usize,
    /// Total links.
    pub links: usize,
    /// Nodes per tier `[edge, transport, core]`.
    pub tier_counts: [usize; 3],
    /// Minimum node degree.
    pub min_degree: usize,
    /// Mean node degree.
    pub mean_degree: f64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Total node capacity (CU).
    pub total_node_capacity: f64,
    /// Total link capacity (CU).
    pub total_link_capacity: f64,
    /// Total edge-tier node capacity (the utilization denominator).
    pub edge_capacity: f64,
}

impl TopologyStats {
    /// Computes the statistics of a substrate.
    pub fn of(s: &SubstrateNetwork) -> Self {
        let degrees: Vec<usize> = s.node_ids().map(|n| s.degree(n)).collect();
        let tier_counts = [
            s.nodes_in_tier(Tier::Edge).len(),
            s.nodes_in_tier(Tier::Transport).len(),
            s.nodes_in_tier(Tier::Core).len(),
        ];
        Self {
            name: s.name().to_string(),
            nodes: s.node_count(),
            links: s.link_count(),
            tier_counts,
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            mean_degree: if degrees.is_empty() {
                0.0
            } else {
                degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
            },
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            total_node_capacity: s.nodes().map(|(_, n)| n.capacity).sum(),
            total_link_capacity: s.links().map(|(_, l)| l.capacity).sum(),
            edge_capacity: s.total_edge_capacity(),
        }
    }
}

impl fmt::Display for TopologyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>5} {:>5}   {:>4}/{:>4}/{:>4}   {:>2}..{:<5.2}..{:<2}  {:>12.0} {:>12.0}",
            self.name,
            self.nodes,
            self.links,
            self.tier_counts[0],
            self.tier_counts[1],
            self.tier_counts[2],
            self.min_degree,
            self.mean_degree,
            self.max_degree,
            self.total_node_capacity,
            self.edge_capacity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::citta_studi;

    #[test]
    fn stats_of_citta_studi() {
        let s = citta_studi().unwrap();
        let st = TopologyStats::of(&s);
        assert_eq!(st.nodes, 30);
        assert_eq!(st.links, 35);
        assert_eq!(st.tier_counts, [22, 6, 2]);
        assert!(st.mean_degree > 2.0 && st.mean_degree < 3.0);
        assert_eq!(st.edge_capacity, 22.0 * 200_000.0);
        let line = st.to_string();
        assert!(line.contains("CittaStudi"));
    }
}
