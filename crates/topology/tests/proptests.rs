//! Property battery for the partitioners and the large synthetic
//! builder (nightly CI runs this at `PROPTEST_CASES=1024`):
//!
//! * every node lands in exactly one shard, with dense ordered local
//!   ids (the `home_of`/`global_node` maps round-trip);
//! * the cut-edge set is symmetric and complete — every substrate link
//!   is internal to exactly one shard XOR recorded exactly once as a
//!   cut link with matching endpoints;
//! * `large_synthetic` worlds are well-formed: connected, exactly `n`
//!   nodes, degree-capped, with a non-empty edge tier.

use proptest::prelude::*;
use vne_model::shard::{LinkHome, ShardedSubstrate};
use vne_model::substrate::SubstrateNetwork;
use vne_topology::params::TierParams;
use vne_topology::partition::{
    large_synthetic, GreedyEdgeCut, Partitioner, RegionGrow, LARGE_SYNTHETIC_MAX_DEGREE,
};
use vne_topology::random::{erdos_renyi_spec, TierFractions};

/// A connected random world plus a shard count that fits it.
fn arb_world() -> impl Strategy<Value = (SubstrateNetwork, usize, u64)> {
    (8usize..60, 0u64..1000, 1usize..9).prop_map(|(n, seed, k)| {
        let m = n + n / 2;
        let s = erdos_renyi_spec(n, m, seed, TierFractions::default())
            .build(&TierParams::paper(), seed ^ 0x5eed)
            .unwrap();
        (s, k.min(n), seed)
    })
}

/// Checks every structural invariant of a partition of `s`.
fn check_partition(s: &SubstrateNetwork, partitioner: &dyn Partitioner, k: usize) {
    let assignment = partitioner.partition(s, k).unwrap();
    assert_eq!(assignment.len(), s.node_count(), "{}", partitioner.name());
    assert_eq!(assignment.shard_count(), k, "{}", partitioner.name());
    let sharded = ShardedSubstrate::new(s, &assignment).unwrap();

    // Every node in exactly one shard, local ids dense and ordered:
    // the global↔local maps must round-trip both ways.
    let mut seen = 0usize;
    for (sid, local) in sharded.shards() {
        for l in local.node_ids() {
            let g = sharded.global_node(sid, l);
            let home = sharded.home_of(g);
            assert_eq!((home.shard, home.local), (sid, l));
            seen += 1;
        }
    }
    assert_eq!(seen, s.node_count(), "{}", partitioner.name());

    // Cut-edge bookkeeping symmetric and complete: each global link is
    // internal to exactly one shard xor a cut link, and cut endpoints
    // map back to the link's own endpoints.
    let mut internal = 0usize;
    for (lid, link) in s.links() {
        match sharded.link_home(lid) {
            LinkHome::Internal { shard, local } => {
                assert_eq!(sharded.global_link(shard, local), lid);
                let a = sharded.home_of(link.a);
                let b = sharded.home_of(link.b);
                assert_eq!(a.shard, shard);
                assert_eq!(b.shard, shard);
                internal += 1;
            }
            LinkHome::Cut { index } => {
                let cut = &sharded.cut_links()[index];
                assert_eq!(cut.global, lid);
                let mut ends = [sharded.home_of(link.a), sharded.home_of(link.b)];
                ends.sort();
                assert_eq!([cut.a, cut.b], ends);
                assert_ne!(cut.a.shard, cut.b.shard);
                // Symmetric: both shards see the cut and each other.
                assert!(sharded.neighbors(cut.a.shard).contains(&cut.b.shard));
                assert!(sharded.neighbors(cut.b.shard).contains(&cut.a.shard));
                assert_eq!(cut.endpoint_in(cut.a.shard), Some(cut.a));
                assert_eq!(cut.endpoint_in(cut.b.shard), Some(cut.b));
            }
        }
    }
    assert_eq!(
        internal + sharded.cut_count(),
        s.link_count(),
        "{}: every link internal xor cut",
        partitioner.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn region_grow_partitions_are_structurally_sound((s, k, seed) in arb_world()) {
        check_partition(&s, &RegionGrow { seed }, k);
    }

    #[test]
    fn greedy_edge_cut_partitions_are_structurally_sound((s, k, seed) in arb_world()) {
        check_partition(&s, &GreedyEdgeCut { seed }, k);
    }

    #[test]
    fn large_synthetic_worlds_are_well_formed(n in 50usize..300, seed in 0u64..500) {
        let s = large_synthetic(n, seed).unwrap();
        prop_assert_eq!(s.node_count(), n);
        prop_assert!(s.is_connected());
        // Spanning tree at minimum, the 2·n link target at most.
        prop_assert!(s.link_count() >= n - 1);
        prop_assert!(s.link_count() <= 2 * n);
        for v in s.node_ids() {
            prop_assert!(s.degree(v) <= LARGE_SYNTHETIC_MAX_DEGREE);
        }
        prop_assert!(!s.edge_nodes().is_empty());
    }
}
