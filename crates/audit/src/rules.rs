//! The audit rule table and per-rule lexical checks.
//!
//! Each rule is a small heuristic over the token stream produced by
//! [`crate::lexer`]. The heuristics are deliberately conservative and
//! local (statement-level), tuned for this workspace's idioms; anything
//! they over-flag is silenced with an explicit, reasoned
//! `audit:allow` so the judgment call is recorded in the source.

use crate::lexer::{Tok, TokKind};
use crate::SourceFile;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; reported but intended to be fixed promptly.
    Warn,
    /// Gate-failing.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code (`D1`..`D6`, `A1`, `A2`).
    pub rule: &'static str,
    /// Severity of the rule.
    pub severity: Severity,
    /// Path of the offending file, relative to the audited root.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Static description of a rule, for `vne-audit explain` / `rules`.
pub struct RuleInfo {
    /// Short code (`D1`).
    pub code: &'static str,
    /// Mnemonic name (`hash-iter`).
    pub name: &'static str,
    /// Severity of findings from this rule.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Longer rationale + how to fix, for `explain`.
    pub explain: &'static str,
}

/// The rule table. `A1`/`A2` are meta-rules about the suppression
/// mechanism itself.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "D1",
        name: "hash-iter",
        severity: Severity::Error,
        summary: "no iteration over HashMap/HashSet in fingerprint-bearing crates",
        explain: "Fingerprints (Summary::fingerprint and the pipelined/sharded/resume \
parity batteries) require every drain of engine state to visit items in a \
deterministic order. std's HashMap/HashSet use RandomState, so keys()/values()/\
iter()/drain()/into_iter() visit in a per-process random order. In the crates \
that feed fingerprints (model, workload, lp, core, sim, shard) any iteration \
over a hash collection is flagged unless the same or the next statement sorts \
the result (an ident starting with `sort`) or collects into a BTreeMap/BTreeSet. \
Fix by switching the collection to BTreeMap/BTreeSet, by sorting right after \
collecting, or — when order provably cannot escape (e.g. building another map, \
or pure membership bookkeeping) — with an `audit:allow` and a reason.",
    },
    RuleInfo {
        code: "D2",
        name: "wall-clock",
        severity: Severity::Error,
        summary: "no Instant::now/SystemTime outside allowlisted timing seams",
        explain: "Wall-clock reads in simulation or embedding logic make runs \
non-reproducible. Instant::now and SystemTime are only allowed in the bench \
binaries (crates/bench/src/bin/) and at the explicit timing seams that feed \
EngineState::set_online_secs or the serve tick loop — each such seam carries an \
`audit:allow(D2, ...)` naming itself. Everywhere else, thread timing state \
through those seams instead of reading the clock.",
    },
    RuleInfo {
        code: "D3",
        name: "raw-f64-accum",
        severity: Severity::Error,
        summary: "no bare `f64 +=` accumulation in metrics/observe/summary code",
        explain: "Floating-point addition is not associative; naive `acc += x` \
loops make metric values depend on accumulation order, which breaks \
cross-mode parity (batch vs pipelined vs sharded). Files whose name contains \
`metrics`, `observe` or `summary` must route running sums through NeumaierSum \
(compensated summation). Plain `+= 1.0` counters are exempt (counting is \
exact), as is integer arithmetic. The two fields inside NeumaierSum itself are \
the canonical audit:allow sites.",
    },
    RuleInfo {
        code: "D4",
        name: "serve-panic",
        severity: Severity::Error,
        summary: "no unwrap()/expect()/panic! in serve connection-handler/actor paths",
        explain: "vne-serve is a daemon: a malformed peer or a transient OS error \
must never take the process down. In crates/serve/src/server.rs and \
crates/serve/src/actor.rs every unwrap(), expect() and panic! is flagged; \
replace them with typed errors (ServeError) or log-and-drop handling at the \
connection boundary.",
    },
    RuleInfo {
        code: "D5",
        name: "snapshot-pairing",
        severity: Severity::Error,
        summary: "every StateEncode impl must be named in a snapshot round-trip test",
        explain: "The checkpoint/resume guarantees are only as good as the codec \
coverage: a StateEncode impl with no round-trip test can silently drift from \
its StateDecode twin. For every `impl StateEncode for T` in the source tree \
(generic containers, tuples and primitive macro expansions excluded), some \
file under a tests/ directory that mentions `roundtrip`/`round_trip` must name \
T. Fix by adding the type to a state round-trip test.",
    },
    RuleInfo {
        code: "D6",
        name: "thread-spawn",
        severity: Severity::Error,
        summary: "no thread::spawn outside scoped/actor seams",
        explain: "Free-floating threads outlive the state they capture and are a \
determinism and shutdown hazard. Outside crates/serve/src/ (the actor seam) \
and the bench binaries, spawning is only allowed through std::thread::scope \
(receivers named `scope`/`s`), which joins deterministically. Flagged: \
`thread::spawn(..)` and `.spawn(..)` on other receivers.",
    },
    RuleInfo {
        code: "A1",
        name: "allow-syntax",
        severity: Severity::Error,
        summary: "audit:allow directives must name a known rule and carry a reason",
        explain: "Suppressions are part of the audit record: `audit:allow(D1, \
\"reason\")` must reference a rule that exists (by code or name) and must \
include a non-empty quoted reason. A bare allow with no reason, or one naming \
an unknown rule, is itself an error.",
    },
    RuleInfo {
        code: "A2",
        name: "unused-allow",
        severity: Severity::Warn,
        summary: "audit:allow that suppresses nothing",
        explain: "An allow that no longer matches any finding is stale — the code \
it excused was fixed or moved. Delete it so the remaining allows stay an \
accurate map of the judgment calls in the tree.",
    },
];

/// Looks a rule up by code (`D1`) or name (`hash-iter`).
pub fn rule_by_key(key: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.code.eq_ignore_ascii_case(key) || r.name == key)
}

/// Crates whose state feeds golden fingerprints (D1 scope). Names are
/// directory names under `crates/`.
const FINGERPRINT_CRATES: &[&str] = &["model", "workload", "lp", "core", "sim", "shard"];

/// Hash-collection methods whose iteration order is nondeterministic.
const HASH_ITER_METHODS: &[&str] = &[
    "keys",
    "values",
    "values_mut",
    "iter",
    "iter_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Splits a token stream into statement-ish ranges: boundaries at `;`,
/// `{` and `}`. Good enough for the local look-arounds the rules need.
fn statements(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct(b';') || t.is_punct(b'{') || t.is_punct(b'}') {
            if i > start {
                out.push((start, i));
            }
            start = i + 1;
        }
    }
    if toks.len() > start {
        out.push((start, toks.len()));
    }
    out
}

/// Whether a statement slice contains an exemption for D1: an ident
/// starting with `sort`, or an ordered-collection name (the drain is
/// being poured into a BTree).
fn stmt_sorts(toks: &[Tok]) -> bool {
    toks.iter().any(|t| {
        t.ident().is_some_and(|s| {
            s.starts_with("sort") || s == "BTreeMap" || s == "BTreeSet" || s == "BinaryHeap"
        })
    })
}

/// Runs the single-file rules (D1, D2, D3, D4, D6) over one source file.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.lexed.toks;
    let stmts = statements(toks);

    if FINGERPRINT_CRATES.contains(&file.crate_name.as_str()) {
        check_hash_iter(file, toks, &stmts, &mut out);
    }
    check_wall_clock(file, toks, &mut out);
    if is_metric_file(&file.rel) {
        check_raw_accum(file, toks, &stmts, &mut out);
    }
    if file.rel == "crates/serve/src/server.rs" || file.rel == "crates/serve/src/actor.rs" {
        check_serve_panic(file, toks, &mut out);
    }
    if !file.rel.starts_with("crates/serve/src/") && !file.rel.starts_with("crates/bench/src/bin/")
    {
        check_thread_spawn(file, toks, &mut out);
    }
    out
}

fn is_metric_file(rel: &str) -> bool {
    let stem = rel.rsplit('/').next().unwrap_or(rel);
    stem.contains("metrics") || stem.contains("observe") || stem.contains("summary")
}

fn finding(code: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
    let info = rule_by_key(code).expect("rule codes in this module are valid");
    Finding {
        rule: info.code,
        severity: info.severity,
        file: file.rel.clone(),
        line,
        message,
    }
}

/// D1: iteration over hash collections. Two passes — bind names whose
/// type or initializer mentions HashMap/HashSet, then flag iteration
/// methods on those receivers unless the statement (or the next one)
/// sorts.
fn check_hash_iter(
    file: &SourceFile,
    toks: &[Tok],
    stmts: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    let mut bound: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for &(s, e) in stmts {
        let st = &toks[s..e];
        let hash_positions: Vec<usize> = st
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("HashMap") || t.is_ident("HashSet"))
            .map(|(i, _)| i)
            .collect();
        if hash_positions.is_empty() {
            continue;
        }
        // Binder candidates within the statement: `name :` (single
        // colon, not part of a path) and `name =` (plain assignment).
        let mut binders: Vec<(usize, &str)> = Vec::new();
        if let Some(name) = let_binding_name(st) {
            binders.push((0, name));
        }
        for i in 0..st.len() {
            let Some(name) = st[i].ident() else { continue };
            let next = st.get(i + 1);
            let after = st.get(i + 2);
            let prev = i.checked_sub(1).map(|p| &st[p]);
            let single_colon = next.is_some_and(|t| t.is_punct(b':'))
                && !after.is_some_and(|t| t.is_punct(b':'))
                && !prev.is_some_and(|t| t.is_punct(b':'));
            let plain_eq = next.is_some_and(|t| t.is_punct(b'='))
                && !after.is_some_and(|t| t.is_punct(b'=') || t.is_punct(b'>'))
                && !prev.is_some_and(|t| {
                    matches!(t.kind, TokKind::Punct(c) if matches!(c, b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/'))
                });
            if single_colon || plain_eq {
                binders.push((i, name));
            }
        }
        // Attribute each HashMap/HashSet mention to the nearest binder
        // before it.
        for h in hash_positions {
            if let Some(&(_, name)) = binders.iter().rev().find(|&&(i, _)| i < h) {
                bound.insert(name.to_string());
            }
        }
    }

    for (si, &(s, e)) in stmts.iter().enumerate() {
        let st = &toks[s..e];
        for i in 0..st.len() {
            if !st[i].is_punct(b'.') {
                continue;
            }
            let Some(method) = st.get(i + 1).and_then(Tok::ident) else {
                continue;
            };
            if !HASH_ITER_METHODS.contains(&method) {
                continue;
            }
            if !st.get(i + 2).is_some_and(|t| t.is_punct(b'(')) {
                continue;
            }
            let Some(recv) = i.checked_sub(1).and_then(|p| st[p].ident()) else {
                continue;
            };
            if !bound.contains(recv) {
                continue;
            }
            let next_sorts = stmts
                .get(si + 1)
                .is_some_and(|&(ns, ne)| stmt_sorts(&toks[ns..ne]));
            if stmt_sorts(st) || next_sorts {
                continue;
            }
            out.push(finding(
                "D1",
                file,
                st[i + 1].line,
                format!(
                    "`{recv}.{method}()` iterates a hash collection in a fingerprint crate; \
use BTreeMap/BTreeSet or sort the drain"
                ),
            ));
        }
    }
}

/// Extracts the bound name from a statement starting with `let [mut] name`.
fn let_binding_name(st: &[Tok]) -> Option<&str> {
    if !st.first()?.is_ident("let") {
        return None;
    }
    let mut i = 1;
    if st.get(i)?.is_ident("mut") {
        i += 1;
    }
    st.get(i)?.ident()
}

/// D2: wall-clock reads.
fn check_wall_clock(file: &SourceFile, toks: &[Tok], out: &mut Vec<Finding>) {
    if file.rel.starts_with("crates/bench/src/bin/") {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(finding(
                "D2",
                file,
                t.line,
                "`Instant::now()` outside an allowlisted timing seam".to_string(),
            ));
        }
        if t.is_ident("SystemTime") && !toks.get(i + 1).is_some_and(|t| t.is_ident("Error")) {
            out.push(finding(
                "D2",
                file,
                t.line,
                "`SystemTime` outside an allowlisted timing seam".to_string(),
            ));
        }
    }
}

/// D3: bare `+=` accumulation in metric files. A target is suspicious
/// if it is f64-bound (via `name: f64` or `name = <float literal>`) or
/// the right-hand side mentions a float literal; `+= 1.0` / `+= 1`
/// counters are exact and exempt.
fn check_raw_accum(
    file: &SourceFile,
    toks: &[Tok],
    stmts: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    let mut f64_bound: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        // `name : f64` (single colon).
        if toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"))
        {
            f64_bound.insert(name.to_string());
        }
        // `name = 0.0` style initialization.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(b'='))
            && matches!(
                toks.get(i + 2).map(|t| &t.kind),
                Some(TokKind::Num { float: true, .. })
            )
        {
            f64_bound.insert(name.to_string());
        }
    }

    for &(s, e) in stmts {
        let st = &toks[s..e];
        for i in 0..st.len().saturating_sub(1) {
            if !(st[i].is_punct(b'+') && st[i + 1].is_punct(b'=')) {
                continue;
            }
            let target = i.checked_sub(1).and_then(|p| st[p].ident());
            let rhs = &st[i + 2..];
            // Exact-counting exemption: `+= 1.0` or `+= 1`.
            if rhs.len() == 1 {
                if let TokKind::Num { text, .. } = &rhs[0].kind {
                    if text == "1" || text == "1.0" {
                        continue;
                    }
                }
            }
            let rhs_float = rhs
                .iter()
                .any(|t| matches!(&t.kind, TokKind::Num { float: true, .. }));
            let target_f64 = target.is_some_and(|n| f64_bound.contains(n));
            if target_f64 || rhs_float {
                out.push(finding(
                    "D3",
                    file,
                    st[i].line,
                    format!(
                        "bare `{} += ..` float accumulation; route through NeumaierSum",
                        target.unwrap_or("_")
                    ),
                ));
            }
        }
    }
}

/// D4: panicking calls in the serve daemon paths.
fn check_serve_panic(file: &SourceFile, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct(b'.') {
            let Some(m) = toks.get(i + 1).and_then(Tok::ident) else {
                continue;
            };
            if (m == "unwrap" || m == "expect") && toks.get(i + 2).is_some_and(|t| t.is_punct(b'('))
            {
                out.push(finding(
                    "D4",
                    file,
                    toks[i + 1].line,
                    format!(
                        "`.{m}()` can panic in a daemon path; return a typed error or log-and-drop"
                    ),
                ));
            }
        }
        if t.is_ident("panic") && toks.get(i + 1).is_some_and(|t| t.is_punct(b'!')) {
            out.push(finding(
                "D4",
                file,
                t.line,
                "`panic!` in a daemon path; return a typed error or log-and-drop".to_string(),
            ));
        }
    }
}

/// D6: thread spawning outside scoped/actor seams.
fn check_thread_spawn(file: &SourceFile, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("spawn"))
        {
            out.push(finding(
                "D6",
                file,
                t.line,
                "`thread::spawn` outside the serve actor seam; use std::thread::scope".to_string(),
            ));
        }
        if t.is_punct(b'.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("spawn"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(b'('))
        {
            let recv = i.checked_sub(1).and_then(|p| toks[p].ident());
            if matches!(recv, Some("scope" | "s")) {
                continue;
            }
            out.push(finding(
                "D6",
                file,
                toks[i + 1].line,
                "`.spawn(..)` on a non-scope receiver outside the serve actor seam".to_string(),
            ));
        }
    }
}

/// Type names exempt from D5 pairing: generic containers, primitives
/// and codec plumbing whose round-trips are exercised transitively.
const D5_SKIP: &[&str] = &[
    "Vec", "Option", "BTreeMap", "BTreeSet", "String", "str", "bool", "char", "u8", "u16", "u32",
    "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32", "f64",
];

/// D5: every concrete `impl StateEncode for T` must have T named in a
/// round-trip test file. `code` is the walked source set, `tests` the
/// test-tree corpus.
pub fn check_pairing(code: &[SourceFile], tests: &[SourceFile]) -> Vec<Finding> {
    // Names mentioned in any test file that talks about round-trips.
    let mut covered: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for tf in tests {
        let is_roundtrip = tf.rel.contains("roundtrip")
            || tf.lexed.toks.iter().any(|t| {
                t.ident()
                    .is_some_and(|s| s.contains("roundtrip") || s.contains("round_trip"))
            });
        if !is_roundtrip {
            continue;
        }
        for t in &tf.lexed.toks {
            if let Some(s) = t.ident() {
                covered.insert(s);
            }
        }
    }

    let mut out = Vec::new();
    for file in code {
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("StateEncode") {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|t| t.is_ident("for")) {
                continue;
            }
            let Some(ty_tok) = toks.get(i + 2) else {
                continue;
            };
            if ty_tok.ident().is_none() {
                // Tuples `(A, B)`, references `&T`, macro `$t` — skip.
                continue;
            }
            // Resolve a path type (`crate::embedding::Footprint`) to
            // its final segment.
            let mut ty_tok = ty_tok;
            let mut j = i + 2;
            while toks.get(j + 1).is_some_and(|t| t.is_punct(b':'))
                && toks.get(j + 2).is_some_and(|t| t.is_punct(b':'))
                && toks.get(j + 3).is_some_and(|t| t.ident().is_some())
            {
                j += 3;
                ty_tok = &toks[j];
            }
            let ty = ty_tok.ident().unwrap_or_default();
            if D5_SKIP.contains(&ty) {
                continue;
            }
            if covered.contains(ty) {
                continue;
            }
            out.push(Finding {
                rule: "D5",
                severity: Severity::Error,
                file: file.rel.clone(),
                line: ty_tok.line,
                message: format!(
                    "`impl StateEncode for {ty}` has no snapshot round-trip test naming `{ty}`"
                ),
            });
        }
    }
    out
}
