//! CLI for the workspace determinism/robustness auditor.
//!
//! ```text
//! vne-audit check [--root PATH]   run every rule; exit 1 on findings
//! vne-audit explain <rule>        print a rule's rationale (code or name)
//! vne-audit rules                 list the rule table
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("rules") => {
            rules_table();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: vne-audit <check [--root PATH] | explain <rule> | rules>");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let report = match vne_audit::audit_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vne-audit: cannot read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!(
            "{}[{}] {}:{}: {}",
            f.severity, f.rule, f.file, f.line, f.message
        );
    }
    println!(
        "vne-audit: {} file(s), {} finding(s) ({} error(s), {} warning(s)), {} suppressed",
        report.files,
        report.findings.len(),
        report.errors(),
        report.warnings(),
        report.suppressed
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn explain(args: &[String]) -> ExitCode {
    let Some(key) = args.first() else {
        eprintln!("usage: vne-audit explain <rule>");
        return ExitCode::from(2);
    };
    match vne_audit::rules::rule_by_key(key) {
        Some(r) => {
            println!("{} ({}) — {} [{}]", r.code, r.name, r.summary, r.severity);
            println!();
            println!("{}", r.explain);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown rule `{key}`; try `vne-audit rules`");
            ExitCode::from(2)
        }
    }
}

fn rules_table() {
    for r in vne_audit::rules::RULES {
        println!(
            "{:3} {:18} {:7} {}",
            r.code,
            r.name,
            r.severity.to_string(),
            r.summary
        );
    }
}
