//! `vne-audit`: a dependency-free determinism/robustness lint pass for
//! the workspace, plus the machinery behind the `vne-audit` CI gate.
//!
//! The auditor walks `crates/*/src` and `src/`, lexes every Rust file
//! with a small comment/string/char-literal-aware lexer
//! ([`lexer`]) and applies the rule table in [`rules`]:
//!
//! | code | name             | what it guards                                   |
//! |------|------------------|--------------------------------------------------|
//! | D1   | hash-iter        | no hash-order iteration in fingerprint crates    |
//! | D2   | wall-clock       | no `Instant::now`/`SystemTime` off-seam          |
//! | D3   | raw-f64-accum    | metric sums go through `NeumaierSum`             |
//! | D4   | serve-panic      | no panics in daemon connection/actor paths       |
//! | D5   | snapshot-pairing | every `StateEncode` impl has a round-trip test   |
//! | D6   | thread-spawn     | threads only via scope or the serve actor seam   |
//!
//! Findings are suppressed with a plain line comment on the offending
//! line or the line above:
//!
//! ```text
//! // audit:allow(D1, "order cannot escape: building a membership set")
//! ```
//!
//! Doc comments (`///`, `//!`) are *not* scanned for directives, so
//! documentation like this file can mention the syntax freely. Every
//! allow must name a known rule and carry a reason (rule `A1`), and
//! allows that no longer suppress anything are reported stale (`A2`).

pub mod lexer;
pub mod rules;

use rules::{Finding, Severity};
use std::path::{Path, PathBuf};

/// One parsed `audit:allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the directive sits on.
    pub line: u32,
    /// The rule key as written (code or name).
    pub rule: String,
    /// The quoted justification, if present.
    pub reason: Option<String>,
}

/// A lexed source file plus its parsed suppressions.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the audited root, with `/` separators.
    pub rel: String,
    /// Directory name under `crates/` (or `"root"` for `src/`).
    pub crate_name: String,
    /// Token/comment streams.
    pub lexed: lexer::Lexed,
    /// Parsed `audit:allow` directives.
    pub allows: Vec<Allow>,
}

/// The outcome of auditing a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Un-suppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// How many findings were silenced by an `audit:allow`.
    pub suppressed: usize,
    /// How many files were audited.
    pub files: usize,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Whether the gate passes: zero findings of any severity.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Parses `audit:allow(rule)` / `audit:allow(rule, "reason")`
/// directives out of one comment. Doc comments are skipped so rule
/// documentation can show the syntax. Returns directives plus syntax
/// errors as `(line, message)`.
fn parse_allows(comment: &lexer::Comment) -> (Vec<Allow>, Vec<(u32, String)>) {
    let text = &comment.text;
    if text.starts_with("///") || text.starts_with("//!") || text.starts_with("/**") {
        return (Vec::new(), Vec::new());
    }
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    let mut search = 0usize;
    while let Some(found) = text[search..].find("audit:allow(") {
        let at = search + found;
        let line = comment.line + text[..at].bytes().filter(|&b| b == b'\n').count() as u32;
        let body_start = at + "audit:allow(".len();
        let Some(close) = text[body_start..].find(')') else {
            errors.push((line, "unterminated audit:allow directive".to_string()));
            break;
        };
        let body = &text[body_start..body_start + close];
        search = body_start + close + 1;
        let (rule, reason) = match body.split_once(',') {
            Some((r, rest)) => {
                let rest = rest.trim();
                let reason = rest.strip_prefix('"').and_then(|s| s.strip_suffix('"'));
                (r.trim(), reason.map(str::to_string))
            }
            None => (body.trim(), None),
        };
        match (&reason, rules::rule_by_key(rule)) {
            (_, None) => errors.push((line, format!("audit:allow names unknown rule `{rule}`"))),
            (None, _) => errors.push((
                line,
                format!("audit:allow({rule}) is missing a quoted reason"),
            )),
            (Some(r), _) if r.trim().is_empty() => {
                errors.push((line, format!("audit:allow({rule}) has an empty reason")));
            }
            _ => allows.push(Allow {
                line,
                rule: rule.to_string(),
                reason,
            }),
        }
    }
    (allows, errors)
}

/// Loads and lexes one file into a [`SourceFile`].
fn load_file(root: &Path, rel: PathBuf) -> std::io::Result<SourceFile> {
    let src = std::fs::read_to_string(root.join(&rel))?;
    let rel_str = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let crate_name = rel_str
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
        .to_string();
    let lexed = lexer::lex(&src);
    let mut allows = Vec::new();
    for c in &lexed.comments {
        let (mut a, _) = parse_allows(c);
        allows.append(&mut a);
    }
    Ok(SourceFile {
        rel: rel_str,
        crate_name,
        lexed,
        allows,
    })
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic reports. Paths returned are relative to `root`.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let abs = root.join(dir);
    if !abs.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(&abs)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        let rel = dir.join(p.file_name().unwrap_or_default());
        if p.is_dir() {
            collect_rs(root, &rel, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Lists the source set (`crates/*/src/**.rs` + `src/**.rs`) and the
/// test corpus (`crates/*/tests/**.rs` + `tests/**.rs`) under `root`.
fn discover(root: &Path) -> std::io::Result<(Vec<PathBuf>, Vec<PathBuf>)> {
    let mut code = Vec::new();
    let mut tests = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        members.sort();
        for m in members {
            let Some(name) = m.file_name() else { continue };
            let base = Path::new("crates").join(name);
            collect_rs(root, &base.join("src"), &mut code)?;
            collect_rs(root, &base.join("tests"), &mut tests)?;
        }
    }
    collect_rs(root, Path::new("src"), &mut code)?;
    collect_rs(root, Path::new("tests"), &mut tests)?;
    Ok((code, tests))
}

/// Audits the workspace rooted at `root`: walks the source set, runs
/// every rule, applies suppressions and returns the report.
pub fn audit_tree(root: &Path) -> std::io::Result<Report> {
    let (code_paths, test_paths) = discover(root)?;
    let mut code = Vec::new();
    let mut raw: Vec<Finding> = Vec::new();
    for p in code_paths {
        let file = load_file(root, p)?;
        // Re-run directive parsing for syntax errors (A1); the
        // successful parses are already attached to the file.
        for c in &file.lexed.comments {
            let (_, errs) = parse_allows(c);
            for (line, message) in errs {
                raw.push(Finding {
                    rule: "A1",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line,
                    message,
                });
            }
        }
        raw.extend(rules::check_file(&file));
        code.push(file);
    }
    let mut tests = Vec::new();
    for p in test_paths {
        tests.push(load_file(root, p)?);
    }
    raw.extend(rules::check_pairing(&code, &tests));

    // Apply suppressions: an allow matches a finding in the same file,
    // for the same rule (by code or name), on the same line or the
    // line directly below the comment. A1 findings are never
    // suppressible — the directive itself is malformed.
    let mut suppressed = 0usize;
    let mut used: std::collections::BTreeSet<(String, u32)> = std::collections::BTreeSet::new();
    let mut findings = Vec::new();
    for f in raw {
        let allow = code
            .iter()
            .find(|c| c.rel == f.file)
            .and_then(|c| {
                c.allows.iter().find(|a| {
                    (f.line == a.line || f.line == a.line + 1)
                        && rules::rule_by_key(&a.rule).is_some_and(|r| r.code == f.rule)
                })
            })
            .filter(|_| f.rule != "A1");
        match allow {
            Some(a) => {
                suppressed += 1;
                used.insert((f.file.clone(), a.line));
            }
            None => findings.push(f),
        }
    }
    // Stale allows (A2).
    for c in &code {
        for a in &c.allows {
            if !used.contains(&(c.rel.clone(), a.line)) {
                findings.push(Finding {
                    rule: "A2",
                    severity: Severity::Warn,
                    file: c.rel.clone(),
                    line: a.line,
                    message: format!("audit:allow({}) suppresses nothing; remove it", a.rule),
                });
            }
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        findings,
        suppressed,
        files: code.len() + tests.len(),
    })
}
