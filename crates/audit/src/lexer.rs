//! A minimal hand-rolled Rust lexer — just enough token structure for
//! the audit rules.
//!
//! The lexer is *comment-, string- and char-literal-aware*: `HashMap`
//! inside a doc comment, a raw string (any number of `#` guards), a
//! nested block comment or a `'c'` literal never reaches the token
//! stream, so the rules in [`crate::rules`] match real code only.
//! Lifetimes (`'a`) are distinguished from char literals by the
//! standard one-character lookahead. Everything is line-accurate so
//! findings and `audit:allow` suppressions anchor to source lines.
//!
//! This is deliberately *not* a full Rust lexer: floats, suffixes and
//! exotic literals are classified just precisely enough for the rules
//! that consume them (rule D3 needs "is this a float literal", nothing
//! more).

/// What a token is, with exactly the payload the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `let`, `for`, ...).
    Ident(String),
    /// A single punctuation byte (`.`, `:`, `=`, `+`, `{`, ...).
    /// Multi-byte operators appear as adjacent tokens (`::` is two
    /// `:`), which the rules match positionally.
    Punct(u8),
    /// A string literal (regular, raw, byte or byte-raw). The content
    /// is intentionally dropped: strings must never trip code rules.
    Str,
    /// A char or byte-char literal (content dropped, like [`TokKind::Str`]).
    Char,
    /// A numeric literal; `text` keeps the exact lexeme so rules can
    /// recognize counter idioms like `+= 1.0`.
    Num {
        /// Whether the literal is a float (`1.0`, `2e3`, `1f64`).
        float: bool,
        /// The raw lexeme, including any suffix.
        text: String,
    },
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line number.
    pub line: u32,
    /// The token itself.
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// Whether this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: u8) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment, kept out of the token stream but retained for
/// `audit:allow` directive parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The raw comment text, including the `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The code tokens, in source order.
    pub toks: Vec<Tok>,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: unrecognized
/// bytes are skipped (the auditor must not die on creative source).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..i.min(b.len())].to_string(),
                });
            }
            b'"' => {
                let tok_line = line;
                i = skip_plain_string(b, i + 1, &mut line);
                out.toks.push(Tok {
                    line: tok_line,
                    kind: TokKind::Str,
                });
            }
            b'r' | b'b' if is_string_start(b, i) => {
                let tok_line = line;
                i = skip_string_start(b, i, &mut line);
                out.toks.push(Tok {
                    line: tok_line,
                    kind: TokKind::Str,
                });
            }
            b'\'' => {
                // Char literal or lifetime. `'\...'` and `'X'` are
                // chars; `'ident` with no closing quote is a lifetime.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char: skip to the closing quote.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Char,
                    });
                } else {
                    // One (possibly multi-byte) char then a quote ⇒
                    // char literal; anything else ⇒ lifetime marker.
                    let w = utf8_width(*b.get(i + 1).unwrap_or(&b' '));
                    if b.get(i + 1 + w) == Some(&b'\'') {
                        i += 2 + w;
                        out.toks.push(Tok {
                            line,
                            kind: TokKind::Char,
                        });
                    } else {
                        // Lifetime: drop the quote, lex the name as an
                        // identifier on the next loop iteration.
                        i += 1;
                    }
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Ident(src[start..i].to_string()),
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut float = false;
                if c == b'0'
                    && matches!(b.get(i + 1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
                {
                    i += 2;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                } else {
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_digit()) {
                        i += 1;
                    }
                    if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        float = true;
                        i += 1;
                        while i < b.len() && (b[i] == b'_' || b[i].is_ascii_digit()) {
                            i += 1;
                        }
                    }
                    if matches!(b.get(i), Some(b'e' | b'E'))
                        && matches!(b.get(i + 1), Some(c) if c.is_ascii_digit() || *c == b'+' || *c == b'-')
                    {
                        float = true;
                        i += 2;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    // Suffix (`f64`, `u32`, ...).
                    let suffix_start = i;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    if src[suffix_start..i].starts_with('f') {
                        float = true;
                    }
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Num {
                        float,
                        text: src[start..i].to_string(),
                    },
                });
            }
            _ => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c),
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a string literal rather
/// than an identifier: `r"`, `r#`, `b"`, `b'`, `br"`, `br#`.
fn is_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'\'') || b.get(j) == Some(&b'"') {
            return true;
        }
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
        return b.get(j) == Some(&b'"');
    }
    false
}

/// Skips a string literal starting at `i` (at the `r`/`b` prefix or the
/// opening quote) and returns the index just past its end.
fn skip_string_start(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) == Some(&b'\'') {
        // Byte char `b'x'` / `b'\n'`.
        j += 1;
        if b.get(j) == Some(&b'\\') {
            j += 1;
        }
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return j + 1;
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
        loop {
            if j >= b.len() {
                return j;
            }
            if b[j] == b'\n' {
                *line += 1;
            }
            if b[j] == b'"' {
                let mut k = 0usize;
                while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return j + 1 + hashes;
                }
            }
            j += 1;
        }
    }
    // Plain (or byte) double-quoted string.
    skip_plain_string(b, j + 1, line)
}

/// Skips a plain `"..."` body starting *inside* the quotes at `i`.
fn skip_plain_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Width in bytes of the UTF-8 character starting with byte `c`.
fn utf8_width(c: u8) -> usize {
    match c {
        c if c < 0x80 => 1,
        c if c >= 0xF0 => 4,
        c if c >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_never_tokenize() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block comment */
            let s = "HashMap::new().iter()";
            let r = r#"HashMap "quoted" raw"#;
            let c = 'H';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"a".to_string()));
        assert!(!lex(src).toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn char_literals_including_escapes_and_unicode() {
        let src = "let a = 'x'; let b = '\\n'; let c = '→';";
        let chars = lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn floats_and_ints_classified() {
        let l = lex("let x = 1.0; let y = 10; let z = 2e3; let w = 1f64; let h = 0x1E; a[0..1]");
        let nums: Vec<(bool, String)> = l
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num { float, text } => Some((*float, text.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            nums,
            vec![
                (true, "1.0".into()),
                (false, "10".into()),
                (true, "2e3".into()),
                (true, "1f64".into()),
                (false, "0x1E".into()),
                (false, "0".into()),
                (false, "1".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nlet b = 1;";
        let l = lex(src);
        let b_tok = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 5);
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_strings() {
        let src = r###"let a = r##"has "# inside"##; let b = b"bytes"; let c = br#"raw bytes"#;"###;
        let l = lex(src);
        let strs = l.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 3);
        assert!(l.toks.iter().any(|t| t.is_ident("c")));
    }
}
