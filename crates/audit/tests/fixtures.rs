//! Fixture-driven self-tests for the audit pass: the `bad` tree trips
//! every rule exactly where expected, the `good` tree (the clean twins
//! of the same snippets) is silent, and `audit:allow` suppressions are
//! honored only when used and well-formed.

use std::path::{Path, PathBuf};

use vne_audit::rules::Severity;
use vne_audit::{audit_tree, Report};

fn fixture(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree)
}

fn rules_hit(report: &Report, file: &str) -> Vec<&'static str> {
    report
        .findings
        .iter()
        .filter(|f| f.file == file)
        .map(|f| f.rule)
        .collect()
}

#[test]
fn bad_tree_trips_every_rule() {
    let report = audit_tree(&fixture("bad")).unwrap();
    assert!(!report.clean());

    // One assertion per rule, pinned to the snippet that trips it.
    assert_eq!(
        rules_hit(&report, "crates/sim/src/metrics.rs"),
        vec!["D1", "D3"]
    );
    assert_eq!(
        rules_hit(&report, "crates/sim/src/engine.rs"),
        vec!["D5", "D2", "D6"]
    );
    assert_eq!(rules_hit(&report, "crates/serve/src/server.rs"), vec!["D4"]);
    assert_eq!(
        rules_hit(&report, "crates/sim/src/allows.rs"),
        vec!["A1", "A1", "A2"]
    );

    // Severities: everything is an error except the unused allow.
    for f in &report.findings {
        let expected = if f.rule == "A2" {
            Severity::Warn
        } else {
            Severity::Error
        };
        assert_eq!(f.severity, expected, "{f:?}");
    }
}

#[test]
fn good_tree_is_clean_with_one_used_allow() {
    let report = audit_tree(&fixture("good")).unwrap();
    assert!(report.clean(), "{:?}", report.findings);
    assert!(report.findings.is_empty());
    // The D2 suppression in metrics.rs is used, so it is counted as
    // suppressed rather than reported as unused (A2).
    assert_eq!(report.suppressed, 1);
}

#[test]
fn bad_findings_line_numbers_are_exact() {
    let report = audit_tree(&fixture("bad")).unwrap();
    let at = |rule: &str| {
        report
            .findings
            .iter()
            .find(|f| f.rule == rule)
            .map(|f| (f.file.as_str(), f.line))
            .unwrap()
    };
    assert_eq!(at("D1"), ("crates/sim/src/metrics.rs", 14));
    assert_eq!(at("D3"), ("crates/sim/src/metrics.rs", 15));
    assert_eq!(at("D2"), ("crates/sim/src/engine.rs", 13));
    assert_eq!(at("D6"), ("crates/sim/src/engine.rs", 14));
    assert_eq!(at("D4"), ("crates/serve/src/server.rs", 4));
}

/// The real tree stays clean: the same invocation CI gates on. Kept as
/// a test so `cargo test` alone catches a regression introduced
/// together with its violation.
#[test]
fn workspace_tree_is_clean() {
    // crates/audit/../.. = the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    // Only run when the full workspace layout is present (packaged
    // sources may ship the crate alone).
    if !root.join("Cargo.toml").exists() || !root.join("crates/sim/src").exists() {
        return;
    }
    let report = audit_tree(&root).unwrap();
    let unsuppressed: Vec<_> = report.findings.iter().collect();
    assert!(unsuppressed.is_empty(), "{unsuppressed:#?}");
}
