//! Bad fixture: trips D2 (wall-clock), D5 (snapshot-pairing — no test
//! names `Ghost` in a round-trip) and D6 (thread-spawn).

use std::time::Instant;

pub struct Ghost;

impl StateEncode for Ghost {
    fn encode(&self, _w: &mut StateWriter) {}
}

pub fn race() {
    let started = Instant::now();
    std::thread::spawn(move || {
        let _ = started.elapsed();
    });
}
