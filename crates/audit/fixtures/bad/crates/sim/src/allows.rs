//! Bad fixture: trips A1 (allow-syntax) twice — an unknown rule and a
//! missing reason — and A2 (unused-allow) once.

// audit:allow(D9, "no such rule")
// audit:allow(D2)
// audit:allow(D6, "nothing on the next line spawns a thread")
pub fn quiet() {}
