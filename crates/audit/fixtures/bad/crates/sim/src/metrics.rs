//! Bad fixture: trips D1 (hash-iter) and D3 (raw-f64-accum).
//! Never compiled — input for the vne-audit self-tests and the CI
//! must-fail assertion.

use std::collections::HashMap;

pub struct Meter {
    counts: HashMap<u32, f64>,
    total: f64,
}

impl Meter {
    pub fn fold(&mut self) {
        for (_k, v) in self.counts.iter() {
            self.total += 0.5 * v;
        }
    }
}
