//! Bad fixture: trips D4 (serve-panic) in the connection-handler path.

pub fn handle(input: Option<u32>) -> u32 {
    input.unwrap()
}
