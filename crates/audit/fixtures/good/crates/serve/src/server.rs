//! Good fixture: the connection handler sheds the error instead of
//! panicking.

pub fn handle(input: Option<u32>) -> u32 {
    match input {
        Some(v) => v,
        None => 0,
    }
}
