//! Good fixture test corpus: names `Ghost` in a round-trip test, which
//! is exactly what the D5 (snapshot-pairing) rule looks for.

#[test]
fn ghost_roundtrip() {
    roundtrip(&Ghost);
}
