//! Good fixture: a `StateEncode` impl whose type is named by the
//! round-trip test in this fixture tree, so D5 stays quiet.

pub struct Ghost;

impl StateEncode for Ghost {
    fn encode(&self, _w: &mut StateWriter) {}
}
