//! Good fixture: the clean twins of the bad-fixture snippets — sorted
//! iteration, compensated accumulation, and a reasoned suppression.
//! Never compiled — input for the vne-audit self-tests.

use std::collections::BTreeMap;
use std::time::Instant;

pub struct Meter {
    counts: BTreeMap<u32, f64>,
    total: NeumaierSum,
}

impl Meter {
    pub fn fold(&mut self) {
        for (_k, v) in self.counts.iter() {
            self.total.add(0.5 * v);
        }
    }

    pub fn probe(&self) -> f64 {
        // audit:allow(D2, "fixture timing seam: demonstrates a reasoned suppression")
        let started = Instant::now();
        started.elapsed().as_secs_f64()
    }
}
