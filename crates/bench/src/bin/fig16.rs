//! Fig. 16: runtime scalability.
//!
//! * (a) Iris at 100% utilization with the per-node arrival rate swept
//!   (mean request size rescaled to hold utilization constant): OLIVE
//!   and QUICKG runtimes grow linearly with the rate.
//! * (b–e) runtime vs utilization per topology: OLIVE is faster than
//!   QUICKG by 1.2–7.8× (the gap shrinking as utilization grows, since a
//!   depleted residual plan pushes OLIVE into the greedy search while
//!   QUICKG starts fast-rejecting).

use vne_sim::metrics::aggregate;
use vne_sim::runner::{default_apps, run_seeds};
use vne_sim::scenario::Algorithm;

use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();

    // (a) arrival-rate sweep on Iris @100%.
    let iris = vne_topology::zoo::iris().expect("iris");
    println!("# Fig. 16a — Iris @100%: online runtime vs arrival rate (per node per slot)");
    println!(
        "{:>6} {:>9} {:>12} {:>10} {:>14}",
        "rate", "alg", "runtime[s]", "±95ci", "req/s"
    );
    for rate in [2.0, 5.0, 10.0, 20.0, 40.0] {
        for alg in [Algorithm::Olive, Algorithm::Quickg] {
            let (summaries, _) = run_seeds(&iris, alg, &opts.seed_list(), default_apps, |seed| {
                let mut c = opts.config(1.0).with_seed(seed);
                c.trace.mean_rate_per_node = rate;
                c
            });
            let agg = aggregate(&summaries);
            // Requests processed per wall-clock second (arrivals over the
            // whole online phase / online seconds).
            let mean_arrivals: f64 =
                summaries.iter().map(|s| s.arrivals as f64).sum::<f64>() / summaries.len() as f64;
            // `arrivals` counts only the window; scale to the full phase.
            let phase_fraction = {
                let c = opts.config(1.0);
                f64::from(c.measure_window.1 - c.measure_window.0) / f64::from(c.test_slots)
            };
            let throughput = mean_arrivals / phase_fraction / agg.online_secs.0.max(1e-9);
            println!(
                "{:>6.0} {:>9} {:>12.4} {:>10.4} {:>14.0}",
                rate,
                alg.label(),
                agg.online_secs.0,
                agg.online_secs.1,
                throughput
            );
        }
    }
    println!();

    // (b–e) runtime vs utilization per topology.
    for substrate in opts.topologies() {
        println!(
            "# Fig. 16b–e — {}: online runtime vs utilization",
            substrate.name()
        );
        println!(
            "{:>6} {:>12} {:>12} {:>10}",
            "util", "OLIVE[s]", "QUICKG[s]", "speedup"
        );
        for &u in &opts.utils {
            let mut times = Vec::new();
            for alg in [Algorithm::Olive, Algorithm::Quickg] {
                let (summaries, _) =
                    run_seeds(&substrate, alg, &opts.seed_list(), default_apps, |seed| {
                        opts.config(u).with_seed(seed)
                    });
                times.push(aggregate(&summaries).online_secs.0);
            }
            println!(
                "{:>5.0}% {:>12.4} {:>12.4} {:>10.2}",
                u * 100.0,
                times[0],
                times[1],
                times[1] / times[0].max(1e-9)
            );
        }
        println!();
    }
}
