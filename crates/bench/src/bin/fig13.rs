//! Fig. 13: effect of deviation from the plan — online demand at 140%
//! utilization with plans built for 60%, 100% and 140% expected
//! utilization, against QUICKG and SLOTOFF.
//!
//! Expected shape (paper): OLIVE(60%) and OLIVE(100%) lose only a few
//! points versus OLIVE(140%) and stay below QUICKG.

use vne_sim::metrics::aggregate;
use vne_sim::runner::{default_apps, run_seeds};
use vne_sim::scenario::Algorithm;

use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let substrate = vne_topology::zoo::iris().expect("iris");

    println!("# Fig. 13 — Iris @140% online demand, plan built for lower utilization");
    println!("{:>14} {:>12} {:>10}", "variant", "rejection", "±95ci");

    for (label, plan_util) in [
        ("OLIVE(60%)", Some(0.6)),
        ("OLIVE(100%)", Some(1.0)),
        ("OLIVE(140%)", None),
    ] {
        let (summaries, _) = run_seeds(
            &substrate,
            Algorithm::Olive,
            &opts.seed_list(),
            default_apps,
            |seed| {
                let mut c = opts.config(1.4).with_seed(seed);
                c.plan_utilization = plan_util;
                c
            },
        );
        let agg = aggregate(&summaries);
        println!(
            "{:>14} {:>12.4} {:>10.4}",
            label, agg.rejection_rate.0, agg.rejection_rate.1
        );
    }
    for alg in [Algorithm::Quickg, Algorithm::SlotOff] {
        let (summaries, _) = run_seeds(&substrate, alg, &opts.seed_list(), default_apps, |seed| {
            opts.config(1.4).with_seed(seed)
        });
        let agg = aggregate(&summaries);
        println!(
            "{:>14} {:>12.4} {:>10.4}",
            alg.label(),
            agg.rejection_rate.0,
            agg.rejection_rate.1
        );
    }
}
