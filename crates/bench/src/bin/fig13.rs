//! Fig. 13: effect of deviation from the plan — online demand at 140%
//! utilization with plans built for 60%, 100% and 140% expected
//! utilization, against QUICKG and SLOTOFF.
//!
//! Expected shape (paper): OLIVE(60%) and OLIVE(100%) lose only a few
//! points versus OLIVE(140%) and stay below QUICKG.
//!
//! All variants run through the sweep driver and share one
//! [`SweepContext`], so per-seed application draws (and any coinciding
//! plans) are derived once across the five variants.
//! `--checkpoint-every N` checkpoints every per-seed run — the
//! `plan_utilization` tweak is recorded inside the file — and
//! `--resume-from FILE` finishes one such run faithfully against the
//! tweaked scenario.

use std::sync::Arc;

use vne_bench::experiments::{resume_from, sweep_shared};
use vne_bench::BenchOpts;
use vne_sim::runner::SweepContext;
use vne_sim::scenario::Algorithm;

fn main() {
    let opts = BenchOpts::parse();
    if resume_from(&opts) {
        return;
    }
    let substrate = vne_topology::zoo::iris().expect("iris");
    // Fig. 13 is a single-utilization figure: online demand at 140%.
    let at_140 = BenchOpts {
        utils: vec![1.4],
        ..opts.clone()
    };
    let ctx = Arc::new(SweepContext::new());

    println!("# Fig. 13 — Iris @140% online demand, plan built for lower utilization");
    println!("{:>14} {:>12} {:>10}", "variant", "rejection", "±95ci");

    for (label, plan_util) in [
        ("OLIVE(60%)", Some(0.6)),
        ("OLIVE(100%)", Some(1.0)),
        ("OLIVE(140%)", None),
    ] {
        let rows = sweep_shared(
            &ctx,
            &at_140.registry,
            &substrate,
            &[Algorithm::Olive],
            &at_140,
            |c| c.plan_utilization = plan_util,
        );
        println!(
            "{:>14} {:>12.4} {:>10.4}",
            label, rows[0].summary.rejection_rate.0, rows[0].summary.rejection_rate.1
        );
    }
    for alg in [Algorithm::Quickg, Algorithm::SlotOff] {
        let rows = sweep_shared(&ctx, &at_140.registry, &substrate, &[alg], &at_140, |_| {});
        println!(
            "{:>14} {:>12.4} {:>10.4}",
            alg.label(),
            rows[0].summary.rejection_rate.0,
            rows[0].summary.rejection_rate.1
        );
    }
}
