//! Shard-count scaling macro-harness: partitions one large synthetic
//! substrate into `k ∈ {1, 4, 16, 64}` shards, runs the same online
//! trace through a [`ShardCoordinator`] per `k`, and writes the scaling
//! curve to `BENCH_shard.json` — a machine-readable snapshot tracking
//! the sharding PR's perf trajectory across commits (diff with `jq`,
//! like `BENCH_pipeline.json`).
//!
//! Three legs:
//!
//! 1. **The unsharded reference** — the plain serial engine over the
//!    full substrate. The `k = 1` coordinator row must reproduce its
//!    window-summary fingerprint *byte-identically* (asserted in-bin:
//!    the single-shard path is a pass-through, not an approximation).
//!    The reference also replays through the pipelined engine with a
//!    [`PipelineConfig::autosized`] geometry derived from the `k = 1`
//!    coordinator's measured per-slot cost, asserting parity again.
//! 2. **The scaling sweep** — per `k`: greedy edge-cut partition
//!    (cut-link count and partition wall time recorded), QUICKG per
//!    shard, full trace replay, spanning counters, wall time.
//! 3. **The checkpoint leg** — the top-`k` run replayed under a
//!    [`Checkpointer`] firing every `--checkpoint-every N` slots
//!    (default 12, `0` disables): asserts the checkpointed run and the
//!    resumed tail are both fingerprint-identical to the plain run,
//!    records the checkpoint-overhead-per-slot, and optionally writes
//!    the checkpoint file (`--checkpoint PATH`) or resumes from an
//!    existing one (`--resume-from PATH`) for cross-process round
//!    trips.
//! 4. **The planning demo** — per-shard demand estimation and PLAN-VNE
//!    solves on a moderate world, recording how many demand classes
//!    each shard holds versus the unsharded total (the
//!    `O(classes per shard)` memory claim, measured).
//!
//! Run with: `cargo run --release --bin bench_shard [-- --tiny] [--out PATH]
//! [--checkpoint-every N] [--checkpoint PATH] [--resume-from PATH]`
//!
//! `--tiny` shrinks the world to CI-smoke size (seconds); the default
//! full mode runs the 100 000-node substrate in minutes.
//!
//! [`ShardCoordinator`]: vne_shard::ShardCoordinator
//! [`Checkpointer`]: vne_sim::observe::Checkpointer

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::cost::RejectionPenalty;
use vne_model::policy::PlacementPolicy;
use vne_model::request::SlotEvents;
use vne_model::shard::ShardedSubstrate;
use vne_model::substrate::SubstrateNetwork;
use vne_olive::aggregate::AggregateDemand;
use vne_olive::algorithm::OnlineAlgorithm;
use vne_olive::colgen::PlanVneConfig;
use vne_olive::olive::Olive;
use vne_shard::{shard_demands, shard_plans, ShardCoordinator};
use vne_sim::engine::{run_stream, run_stream_pipelined, EngineCheckpoint, PipelineConfig};
use vne_sim::observe::{Checkpointer, WindowSummary};
use vne_topology::partition::{large_synthetic, GreedyEdgeCut, Partitioner};
use vne_workload::estimator::{AggregationConfig, ExactEstimator};
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, ArrivalKind, TraceConfig};

const WORLD_SEED: u64 = 7;
const TRACE_SEED: u64 = 42;

fn shard_apps() -> AppSet {
    let mut apps = AppSet::new();
    for (name, len) in [("chain2", 2), ("chain3", 3)] {
        apps.push(
            name,
            AppShape::Chain,
            shapes::uniform_chain(len, 10.0, 1.0).unwrap(),
        )
        .unwrap();
    }
    apps
}

/// The online trace: a low per-node rate — arrivals scale with the edge
/// tier (~60% of a `large_synthetic` world), so the 100k-node full mode
/// still sees thousands of requests over the horizon.
fn trace_config(slots: u32, mean_rate_per_node: f64) -> TraceConfig {
    TraceConfig {
        slots,
        mean_rate_per_node,
        demand_mean: 1.0,
        demand_std: 0.2,
        duration_mean: 5.0,
        arrivals: ArrivalKind::Poisson,
        ..TraceConfig::default()
    }
}

struct ScalingRow {
    k: usize,
    cut_links: usize,
    partition_secs: f64,
    run_secs: f64,
    mean_step_us: f64,
    fingerprint: u64,
    arrivals: usize,
    rejected: usize,
    peak_active: usize,
    span_candidates: usize,
    span_granted: usize,
    span_denied: usize,
}

/// One coordinator run of `events` over `s` cut into `k` shards.
fn run_sharded(
    s: &SubstrateNetwork,
    apps: &AppSet,
    events: &[SlotEvents],
    window_bounds: (u32, u32),
    k: usize,
) -> (ScalingRow, Option<f64>) {
    let started = Instant::now();
    let assignment = GreedyEdgeCut { seed: WORLD_SEED }
        .partition(s, k)
        .expect("partition");
    let sharded = ShardedSubstrate::new(s, &assignment).expect("sharded view");
    let partition_secs = started.elapsed().as_secs_f64();

    let mut coordinator = ShardCoordinator::new(sharded, |_, local| {
        Box::new(Olive::quickg(
            local.clone(),
            apps.clone(),
            PlacementPolicy::default(),
        ))
    });
    let mut window = WindowSummary::new(window_bounds, RejectionPenalty::uniform(apps, 1.0));
    let started = Instant::now();
    let stats = coordinator.run(events.iter().cloned(), &mut window);
    let run_secs = started.elapsed().as_secs_f64();
    let mean_step = coordinator.mean_step_secs();
    let summary = window.finish(&stats);
    let span = coordinator.spanning_stats();
    let row = ScalingRow {
        k,
        cut_links: coordinator.sharded().cut_count(),
        partition_secs,
        run_secs,
        mean_step_us: mean_step.unwrap_or(0.0) * 1e6,
        fingerprint: summary.fingerprint(),
        arrivals: summary.arrivals,
        rejected: summary.rejected,
        peak_active: stats.peak_active,
        span_candidates: span.candidates,
        span_granted: span.granted,
        span_denied: span.denied,
    };
    (row, mean_step)
}

struct CheckpointLeg {
    every: u32,
    k: usize,
    slot: u32,
    bytes: usize,
    taken: usize,
    run_secs: f64,
    overhead_us_per_slot: f64,
    resumed_from_file: bool,
}

/// The checkpoint/resume leg: replays the top-`k` run under a
/// [`Checkpointer`], asserts the checkpointed run and the resumed tail
/// both reproduce `reference_fp`, and measures the per-slot
/// checkpointing overhead against the plain run's `plain_secs`.
#[allow(clippy::too_many_arguments)]
fn checkpoint_leg(
    s: &SubstrateNetwork,
    apps: &AppSet,
    events: &[SlotEvents],
    window_bounds: (u32, u32),
    k: usize,
    every: u32,
    plain_secs: f64,
    reference_fp: u64,
    checkpoint_path: Option<&str>,
    resume_from: Option<&str>,
) -> CheckpointLeg {
    let assignment = GreedyEdgeCut { seed: WORLD_SEED }
        .partition(s, k)
        .expect("partition");
    let sharded = ShardedSubstrate::new(s, &assignment).expect("sharded view");
    let build = || {
        let apps = apps.clone();
        move |_: vne_model::shard::ShardId, local: &SubstrateNetwork| {
            Box::new(Olive::quickg(
                local.clone(),
                apps.clone(),
                PlacementPolicy::default(),
            )) as Box<dyn OnlineAlgorithm>
        }
    };
    let window = || WindowSummary::new(window_bounds, RejectionPenalty::uniform(apps, 1.0));

    // The checkpointed replay must not perturb the run. The sink keeps
    // the first checkpoint past the horizon's midpoint, so the resume
    // below replays a real tail rather than an empty one.
    let midpoint = events.len() as u32 / 2;
    let kept = std::sync::Arc::new(std::sync::Mutex::new(None::<EngineCheckpoint>));
    let sink = std::sync::Arc::clone(&kept);
    let mut coordinator = ShardCoordinator::new(sharded.clone(), build());
    let mut cp = Checkpointer::every(every, window()).with_sink(move |checkpoint| {
        let mut kept = sink.lock().unwrap();
        if kept.is_none() && checkpoint.slot >= midpoint {
            *kept = Some(checkpoint.clone());
        }
    });
    let started = Instant::now();
    let stats = coordinator.run(events.iter().cloned(), &mut cp);
    let run_secs = started.elapsed().as_secs_f64();
    assert_eq!(
        cp.inner().finish(&stats).fingerprint(),
        reference_fp,
        "checkpointing perturbed the sharded run"
    );
    let taken = cp.checkpoints_taken();
    assert!(taken > 0, "no checkpoint fired: {:?}", cp.last_error());
    let latest = kept
        .lock()
        .unwrap()
        .take()
        .or_else(|| cp.into_latest())
        .expect("a checkpoint was taken");
    if let Some(path) = checkpoint_path {
        std::fs::write(path, latest.to_bytes()).expect("write checkpoint file");
        println!("checkpoint (slot {}) written to {path}", latest.slot);
    }

    // Resume — from the file when asked (cross-process round trip),
    // from the in-memory checkpoint otherwise.
    let checkpoint = match resume_from {
        Some(path) => {
            let bytes = std::fs::read(path).expect("read checkpoint file");
            EngineCheckpoint::from_bytes(&bytes).expect("parse checkpoint file")
        }
        None => latest,
    };
    let bytes = checkpoint.to_bytes().len();
    let mut w = window();
    let mut resumed = ShardCoordinator::resume_from(sharded, build(), &checkpoint, &mut w)
        .expect("resume from checkpoint");
    let next = resumed.next_slot();
    let stats = resumed.run(
        events.iter().filter(|e| u64::from(e.slot) >= next).cloned(),
        &mut w,
    );
    assert_eq!(
        w.finish(&stats).fingerprint(),
        reference_fp,
        "resumed run drifted from the uninterrupted one"
    );

    let slots = events.len().max(1) as f64;
    CheckpointLeg {
        every,
        k,
        slot: checkpoint.slot,
        bytes,
        taken,
        run_secs,
        overhead_us_per_slot: ((run_secs - plain_secs) / slots).max(0.0) * 1e6,
        resumed_from_file: resume_from.is_some(),
    }
}

/// The planning demo: per-shard exact estimation + PLAN-VNE solves.
/// Returns a JSON object string.
fn plan_leg(tiny: bool) -> String {
    let (n, k, history_slots) = if tiny { (120, 4, 80u32) } else { (400, 8, 200) };
    let s = large_synthetic(n, 21).expect("plan world");
    let apps = shard_apps();
    let tc = trace_config(history_slots, 0.3);
    let assignment = GreedyEdgeCut { seed: 21 }
        .partition(&s, k)
        .expect("plan partition");
    let sharded = ShardedSubstrate::new(&s, &assignment).expect("plan sharded view");

    let mut rng = SeededRng::new(9);
    let started = Instant::now();
    let demands = shard_demands(
        &sharded,
        tracegen::stream(&s, &apps, &tc, SeededRng::new(77)),
        || {
            Box::new(ExactEstimator::new(
                history_slots,
                AggregationConfig::default(),
            ))
        },
        &mut rng,
    );
    let plans = shard_plans(
        &sharded,
        &apps,
        &PlacementPolicy::default(),
        &demands,
        &PlanVneConfig::new(50.0),
    );
    let secs = started.elapsed().as_secs_f64();

    // Classes partition exactly by home shard, so the unsharded
    // estimator's footprint is the sum and the sharded peak is the max.
    let total_classes: usize = demands.iter().map(AggregateDemand::len).sum();
    let widest_shard = demands.iter().map(AggregateDemand::len).max().unwrap_or(0);
    let columns: usize = plans.iter().map(|(_, st)| st.columns).sum();
    let mut json = String::new();
    let _ = write!(
        json,
        "{{ \"nodes\": {n}, \"shards\": {k}, \"history_slots\": {history_slots}, \
         \"total_classes\": {total_classes}, \"widest_shard_classes\": {widest_shard}, \
         \"columns\": {columns}, \"secs\": {secs:.3} }}"
    );
    json
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_shard.json".to_string());
    let checkpoint_every: u32 = args
        .iter()
        .position(|a| a == "--checkpoint-every")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--checkpoint-every takes a slot count"))
        .unwrap_or(12);
    let checkpoint_path = args
        .iter()
        .position(|a| a == "--checkpoint")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let resume_from = args
        .iter()
        .position(|a| a == "--resume-from")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (nodes, slots, rate, ks): (usize, u32, f64, &[usize]) = if tiny {
        (400, 36, 0.05, &[1, 4])
    } else {
        (100_000, 60, 0.002, &[1, 4, 16, 64])
    };
    let window_bounds = (slots / 10, slots - slots / 10);

    let started = Instant::now();
    let s = large_synthetic(nodes, WORLD_SEED).expect("large synthetic world");
    let build_secs = started.elapsed().as_secs_f64();
    let apps = shard_apps();
    let tc = trace_config(slots, rate);
    let events: Vec<SlotEvents> =
        tracegen::stream(&s, &apps, &tc, SeededRng::new(TRACE_SEED)).collect();
    let total_arrivals: usize = events.iter().map(|e| e.arrivals.len()).sum();
    println!(
        "world    {nodes} nodes / {} links (built in {build_secs:.2}s), \
         {total_arrivals} arrivals over {slots} slots",
        s.link_count()
    );

    // --- 1. The unsharded serial reference.
    let mut alg = Olive::quickg(s.clone(), apps.clone(), PlacementPolicy::default());
    let mut window = WindowSummary::new(window_bounds, RejectionPenalty::uniform(&apps, 1.0));
    let started = Instant::now();
    let stats = run_stream(&mut alg, &s, events.iter().cloned(), &mut window);
    let reference_secs = started.elapsed().as_secs_f64();
    let reference_fp = window.finish(&stats).fingerprint();
    println!("unsharded serial reference: {reference_secs:.2}s, fingerprint {reference_fp:#018x}");

    // --- 2. The scaling sweep.
    let mut rows = Vec::new();
    let mut k1_step_secs = None;
    for &k in ks {
        let (row, mean_step) = run_sharded(&s, &apps, &events, window_bounds, k);
        if k == 1 {
            k1_step_secs = mean_step;
            assert_eq!(
                row.fingerprint, reference_fp,
                "k=1 sharded run drifted from the unsharded engine"
            );
        }
        println!(
            "k={:<3} cut {:>6} links, partition {:.2}s, run {:.2}s \
             ({:.0}µs/slot), span {}/{} granted, fingerprint {:#018x}",
            row.k,
            row.cut_links,
            row.partition_secs,
            row.run_secs,
            row.mean_step_us,
            row.span_granted,
            row.span_candidates,
            row.fingerprint,
        );
        rows.push(row);
    }
    let monotone = rows.windows(2).all(|w| w[1].run_secs <= w[0].run_secs);

    // --- 3. The checkpoint/resume leg on the top-k run.
    let checkpoint = (checkpoint_every > 0).then(|| {
        let top = rows.last().expect("at least one k ran");
        let leg = checkpoint_leg(
            &s,
            &apps,
            &events,
            window_bounds,
            top.k,
            checkpoint_every,
            top.run_secs,
            top.fingerprint,
            checkpoint_path.as_deref(),
            resume_from.as_deref(),
        );
        println!(
            "checkpoint k={} every {} slots: {} taken ({} bytes at slot {}), \
             {:.1}µs/slot overhead, resume identical",
            leg.k, leg.every, leg.taken, leg.bytes, leg.slot, leg.overhead_us_per_slot,
        );
        leg
    });

    // --- 4. The autosized pipelined reference, geometry from the k=1
    // coordinator's measured per-slot cost (the sizing probe).
    let per_slot = Duration::from_secs_f64(k1_step_secs.expect("k=1 ran").max(1e-9));
    let idle = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(1);
    let pipe = PipelineConfig::autosized(per_slot, idle);
    let mut alg = Olive::quickg(s.clone(), apps.clone(), PlacementPolicy::default());
    let mut window = WindowSummary::new(window_bounds, RejectionPenalty::uniform(&apps, 1.0));
    let started = Instant::now();
    let stats = run_stream_pipelined(&mut alg, &s, events.iter().cloned(), &mut window, &pipe);
    let pipelined_secs = started.elapsed().as_secs_f64();
    let pipelined_fp = window.finish(&stats).fingerprint();
    assert_eq!(
        pipelined_fp, reference_fp,
        "autosized pipelined engine drifted from the serial reference"
    );
    println!(
        "autosized pipeline (buffer {}, batch {}): {pipelined_secs:.2}s, identical",
        pipe.buffer, pipe.batch
    );

    // --- 5. The planning demo.
    let plan_json = plan_leg(tiny);

    let mut json = String::from("{\n  \"bench\": \"shard\",\n");
    let _ = writeln!(json, "  \"tiny\": {tiny},");
    let _ = writeln!(
        json,
        "  \"world\": {{ \"nodes\": {nodes}, \"links\": {}, \"slots\": {slots}, \
         \"arrivals\": {total_arrivals}, \"build_secs\": {build_secs:.3} }},",
        s.link_count()
    );
    let _ = writeln!(
        json,
        "  \"reference\": {{ \"serial_secs\": {reference_secs:.3}, \
         \"autosized_secs\": {pipelined_secs:.3}, \"buffer\": {}, \"batch\": {}, \
         \"fingerprint\": \"{reference_fp:#018x}\", \"identical\": true }},",
        pipe.buffer, pipe.batch
    );
    let _ = writeln!(json, "  \"scaling\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"k\": {}, \"cut_links\": {}, \"partition_secs\": {:.3}, \
             \"run_secs\": {:.3}, \"mean_step_us\": {:.1}, \"arrivals\": {}, \
             \"rejected\": {}, \"peak_active\": {}, \
             \"spanning\": {{ \"candidates\": {}, \"granted\": {}, \"denied\": {} }}, \
             \"fingerprint\": \"{:#018x}\" }}{comma}",
            r.k,
            r.cut_links,
            r.partition_secs,
            r.run_secs,
            r.mean_step_us,
            r.arrivals,
            r.rejected,
            r.peak_active,
            r.span_candidates,
            r.span_granted,
            r.span_denied,
            r.fingerprint,
        );
    }
    let _ = writeln!(json, "  ],");
    match &checkpoint {
        Some(leg) => {
            let _ = writeln!(
                json,
                "  \"checkpoint\": {{ \"every\": {}, \"k\": {}, \"slot\": {}, \
                 \"bytes\": {}, \"taken\": {}, \"run_secs\": {:.3}, \
                 \"overhead_us_per_slot\": {:.1}, \"resumed_from_file\": {}, \
                 \"resume_identical\": true }},",
                leg.every,
                leg.k,
                leg.slot,
                leg.bytes,
                leg.taken,
                leg.run_secs,
                leg.overhead_us_per_slot,
                leg.resumed_from_file,
            );
        }
        None => {
            let _ = writeln!(json, "  \"checkpoint\": null,");
        }
    }
    let _ = writeln!(json, "  \"monotone_decreasing_run_secs\": {monotone},");
    let _ = writeln!(json, "  \"k1_matches_unsharded\": true,");
    let _ = writeln!(json, "  \"plan\": {plan_json}\n}}");
    std::fs::write(&out, &json).expect("write BENCH_shard.json");
    println!("wrote {out}");
}
