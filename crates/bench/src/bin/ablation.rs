//! Ablation study (beyond the paper): which of OLIVE's mechanisms —
//! borrowing, preemption, the greedy fallback — contribute how much to
//! the rejection rate, on Iris at 100% and 140% utilization.
//!
//! The full OLIVE row and the "no plan" row bracket the design space:
//! "no plan" with the greedy fallback only *is* QUICKG.
//!
//! All five OLIVE variants share one [`SweepContext`]: the ablation
//! switches do not change the plan inputs, so the offline plan for each
//! (utilization, seed) cell is derived **once** and reused across the
//! variants — the sweep costs one planning pass instead of five.

use std::sync::Arc;

use vne_olive::olive::OliveConfig;
use vne_sim::metrics::aggregate;
use vne_sim::registry::AlgorithmRegistry;
use vne_sim::runner::{default_apps, run_seeds_with, SweepContext};
use vne_sim::scenario::Algorithm;

use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let substrate = vne_topology::zoo::iris().expect("iris");
    let ctx = Arc::new(SweepContext::new());
    let registry = AlgorithmRegistry::builtins();

    let variants: Vec<(&str, OliveConfig)> = vec![
        ("full", OliveConfig::default()),
        (
            "no-borrowing",
            OliveConfig {
                borrowing: false,
                ..OliveConfig::default()
            },
        ),
        (
            "no-preemption",
            OliveConfig {
                preemption: false,
                ..OliveConfig::default()
            },
        ),
        (
            "no-greedy",
            OliveConfig {
                greedy_fallback: false,
                ..OliveConfig::default()
            },
        ),
        (
            "plan-only",
            OliveConfig {
                borrowing: false,
                preemption: false,
                greedy_fallback: false,
                quickg_fast_reject: false,
            },
        ),
    ];

    println!("# Ablation — Iris: OLIVE mechanism contributions");
    println!(
        "{:>5} {:>14} {:>12} {:>10} {:>14}",
        "util", "variant", "rejection", "±95ci", "total-cost"
    );
    for util in [1.0, 1.4] {
        for (label, config) in &variants {
            let (summaries, _) = run_seeds_with(
                &ctx,
                &registry,
                &substrate,
                &Algorithm::Olive.into(),
                &opts.seed_list(),
                default_apps,
                |seed| {
                    let mut c = opts.config(util).with_seed(seed);
                    c.olive = *config;
                    c
                },
            );
            let agg = aggregate(&summaries);
            println!(
                "{:>4.0}% {:>14} {:>12.4} {:>10.4} {:>14.4e}",
                util * 100.0,
                label,
                agg.rejection_rate.0,
                agg.rejection_rate.1,
                agg.total_cost.0
            );
        }
        // QUICKG reference.
        let (summaries, _) = run_seeds_with(
            &ctx,
            &registry,
            &substrate,
            &Algorithm::Quickg.into(),
            &opts.seed_list(),
            default_apps,
            |seed| opts.config(util).with_seed(seed),
        );
        let agg = aggregate(&summaries);
        println!(
            "{:>4.0}% {:>14} {:>12.4} {:>10.4} {:>14.4e}",
            util * 100.0,
            "QUICKG",
            agg.rejection_rate.0,
            agg.rejection_rate.1,
            agg.total_cost.0
        );
    }
}
