//! Fig. 9: rejection rate by application type in Iris at 100%
//! utilization: four applications of a single type per run (chain, tree,
//! accelerator) plus the standard mix, for OLIVE, QUICKG, FULLG and
//! SLOTOFF.
//!
//! Expected shape (paper): QUICKG is insensitive to the type; FULLG ≈
//! QUICKG statistically but far slower; OLIVE is significantly lower and
//! close to SLOTOFF; the accelerator lowers rejection ('Acc'/'Mix').

use vne_model::app::AppShape;
use vne_sim::metrics::aggregate;
use vne_sim::runner::run_seeds;
use vne_sim::scenario::Algorithm;
use vne_workload::appgen::{paper_mix, uniform_shape_set, AppGenConfig};
use vne_workload::rng::SeededRng;

use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let substrate = vne_topology::zoo::iris().expect("iris");
    let algorithms = [
        Algorithm::Olive,
        Algorithm::Quickg,
        Algorithm::Fullg,
        Algorithm::SlotOff,
    ];
    let app_sets: Vec<(&str, Option<AppShape>)> = vec![
        ("chain", Some(AppShape::Chain)),
        ("tree", Some(AppShape::Tree)),
        ("acc", Some(AppShape::Accelerator)),
        ("mix", None),
    ];

    println!("# Fig. 9 — Iris @100%, rejection rate by application type");
    println!(
        "{:>6} {:>9} {:>12} {:>10} {:>14}",
        "apps", "alg", "rejection", "±95ci", "runtime[s]"
    );
    for (label, shape) in &app_sets {
        for &alg in &algorithms {
            let (summaries, _) = run_seeds(
                &substrate,
                alg,
                &opts.seed_list(),
                |seed| {
                    let mut rng = SeededRng::new(seed).derive(0xF19);
                    match shape {
                        Some(s) => uniform_shape_set(*s, &AppGenConfig::default(), &mut rng),
                        None => paper_mix(&AppGenConfig::default(), &mut rng),
                    }
                },
                |seed| opts.config(1.0).with_seed(seed),
            );
            let agg = aggregate(&summaries);
            println!(
                "{:>6} {:>9} {:>12.4} {:>10.4} {:>14.3}",
                label,
                alg.label(),
                agg.rejection_rate.0,
                agg.rejection_rate.1,
                agg.online_secs.0,
            );
        }
    }
}
